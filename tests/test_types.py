"""Tests for shared type helpers and the storage report."""

from __future__ import annotations

import numpy as np

from repro.types import (
    FLOAT_DTYPE,
    LayerSignature,
    StorageReport,
    as_float_array,
    as_shape,
)


class TestAsShape:
    def test_converts_list(self):
        assert as_shape([1, 2, 3]) == (1, 2, 3)

    def test_converts_numpy_ints(self):
        assert as_shape(np.array([4, 5])) == (4, 5)

    def test_empty(self):
        assert as_shape([]) == ()


class TestAsFloatArray:
    def test_dtype(self):
        assert as_float_array([1, 2, 3]).dtype == FLOAT_DTYPE

    def test_contiguous(self):
        array = np.arange(12, dtype=np.float64).reshape(3, 4).T
        assert as_float_array(array).flags["C_CONTIGUOUS"]

    def test_scalar_becomes_single_element_array(self):
        result = as_float_array(2.5)
        assert result.size == 1
        assert result.dtype == FLOAT_DTYPE


class TestStorageReport:
    def test_add_accumulates_total(self):
        report = StorageReport(weights_bytes=100)
        report.add("a", 10)
        report.add("b", 20)
        report.add("a", 5)
        assert report.total_bytes == 35
        assert report.breakdown == {"a": 15, "b": 20}

    def test_megabytes_are_decimal(self):
        report = StorageReport()
        report.add("x", 2_000_000)
        assert report.total_megabytes == 2.0

    def test_fraction_of_weights(self):
        report = StorageReport(weights_bytes=200)
        report.add("x", 100)
        assert report.fraction_of_weights() == 0.5

    def test_fraction_of_weights_zero_weights(self):
        report = StorageReport()
        report.add("x", 100)
        assert report.fraction_of_weights() == 0.0

    def test_weights_megabytes(self):
        assert StorageReport(weights_bytes=4_000_000).weights_megabytes == 4.0


class TestLayerSignature:
    def test_frozen_fields(self):
        signature = LayerSignature("c1", "Conv2D", (8, 8, 3), (6, 6, 4), 112)
        assert signature.name == "c1"
        assert signature.parameter_count == 112
