"""Tests for the experiment command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments.campaign import FAULT_MODES
from repro.memory import fault_model_names


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["summary", "--network", "nope"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["rber"])
        assert args.network == "mnist_reduced"
        assert args.trials == 3

    def test_error_rates_parsed_as_floats(self):
        args = build_parser().parse_args(["whole-weight", "--error-rates", "1e-4", "1e-3"])
        assert args.error_rates == [1e-4, 1e-3]

    def test_soak_defaults(self):
        args = build_parser().parse_args(["soak"])
        assert args.network == "mnist_reduced"
        assert args.scrub_period == 0.25
        assert args.fault_interval == 0.2
        assert args.max_faults is None
        assert not args.trained

    def test_serve_arguments(self):
        args = build_parser().parse_args(
            ["serve", "--network", "cifar_reduced", "--duration", "1.5"]
        )
        assert args.network == "cifar_reduced"
        assert args.duration == 1.5

    def test_campaign_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_campaign_run_defaults(self):
        args = build_parser().parse_args(["campaign", "run", "--store", "x.jsonl"])
        assert args.campaign_command == "run"
        assert args.networks == ["mnist_reduced"]
        assert args.fault_modes == ["rber"]
        assert args.schemes == ["none", "ecc", "milr", "ecc+milr"]
        assert args.repetitions == 3
        assert args.workers is None
        assert args.max_trials is None

    def test_campaign_run_rejects_unknown_network_and_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "run", "--store", "x.jsonl", "--networks", "nope"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "run", "--store", "x.jsonl", "--fault-modes", "nope"]
            )

    def test_every_fault_mode_is_a_valid_choice(self):
        # The zoo modes are auto-populated from FAULT_MODES; a new registry
        # entry must never silently miss the CLI.
        for mode in FAULT_MODES:
            args = build_parser().parse_args(
                ["campaign", "run", "--store", "x.jsonl", "--fault-modes", mode]
            )
            assert args.fault_modes == [mode]

    def test_campaign_fault_events_default(self):
        args = build_parser().parse_args(["campaign", "run", "--store", "x.jsonl"])
        assert args.fault_events == 3
        args = build_parser().parse_args(
            ["campaign", "run", "--store", "x.jsonl", "--fault-events", "5"]
        )
        assert args.fault_events == 5

    def test_soak_fault_model_arguments(self):
        args = build_parser().parse_args(["soak"])
        assert args.fault_models is None
        assert args.reassert_interval == 0.2
        args = build_parser().parse_args(
            ["soak", "--fault-models", "stuck_at", "row_hammer", "--reassert-interval", "0.5"]
        )
        assert args.fault_models == ["stuck_at", "row_hammer"]
        assert args.reassert_interval == 0.5

    def test_soak_fault_models_cover_the_registry(self):
        # choices= comes from fault_model_names(): every registered model
        # parses, anything else exits.
        for name in fault_model_names():
            args = build_parser().parse_args(["soak", "--fault-models", name])
            assert args.fault_models == [name]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["soak", "--fault-models", "no_such_model"])

    def test_campaign_report_arguments(self):
        args = build_parser().parse_args(
            ["campaign", "report", "--store", "x.jsonl", "--no-timing"]
        )
        assert args.campaign_command == "report"
        assert args.no_timing
        assert args.confidence == 0.95


class TestCommands:
    def test_summary_prints_architecture(self, capsys):
        assert main(["summary", "--network", "mnist"]) == 0
        output = capsys.readouterr().out
        assert "Conv2D" in output
        assert "1,669,290" in output

    def test_storage_reduced_network(self, capsys):
        assert main(["storage", "--networks", "mnist_reduced"]) == 0
        output = capsys.readouterr().out
        assert "milr_mb" in output

    def test_whole_layer_command(self, capsys):
        assert main(["whole-layer", "--network", "mnist_reduced"]) == 0
        output = capsys.readouterr().out
        assert "block1_conv" in output

    def test_recovery_time_command(self, capsys):
        assert main(["recovery-time", "--network", "mnist_reduced", "--error-counts", "10", "50"]) == 0
        output = capsys.readouterr().out
        assert "recovery_s" in output

    def test_timing_command_reduced(self, capsys):
        assert main(["timing", "--networks", "mnist_reduced", "--batch-size", "8"]) == 0
        output = capsys.readouterr().out
        assert "identification_s" in output

    def test_whole_weight_command(self, capsys):
        assert (
            main(
                [
                    "whole-weight",
                    "--network",
                    "mnist_reduced",
                    "--trials",
                    "1",
                    "--error-rates",
                    "1e-4",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "milr" in output

    def test_availability_command(self, capsys):
        assert main(["availability", "--networks", "mnist_reduced", "--points", "5"]) == 0
        output = capsys.readouterr().out
        assert "availability@99.999%acc" in output

    def test_serve_command(self, capsys):
        assert (
            main(["serve", "--duration", "0.5", "--request-interval", "0.005"]) == 0
        )
        output = capsys.readouterr().out
        assert "Serving mnist_reduced" in output
        assert "availability" in output

    def test_campaign_run_status_report(self, capsys, tmp_path):
        store = str(tmp_path / "campaign.jsonl")
        grid = [
            "--store",
            store,
            "--networks",
            "mnist_reduced",
            "--error-rates",
            "1e-4",
            "--schemes",
            "none",
            "milr",
            "--repetitions",
            "1",
            "--train-samples-per-class",
            "8",
            "--train-epochs",
            "1",
        ]
        assert main(["campaign", "run", *grid, "--workers", "1"]) == 0
        output = capsys.readouterr().out
        assert "executed" in output

        # Re-running the finished campaign is a no-op.
        assert main(["campaign", "run", *grid, "--workers", "1"]) == 0
        output = capsys.readouterr().out
        assert "executed" in output and "0" in output

        assert main(["campaign", "status", *grid]) == 0
        output = capsys.readouterr().out
        assert "mnist_reduced" in output and "pending" in output

        assert main(["campaign", "report", "--store", store, "--no-timing"]) == 0
        output = capsys.readouterr().out
        assert "detection_rate" in output
        assert "mean_td_ms" not in output

    def test_soak_command(self, capsys):
        assert (
            main(
                [
                    "soak",
                    "--duration",
                    "2.0",
                    "--fault-interval",
                    "0.1",
                    "--max-faults",
                    "4",
                    "--scrub-period",
                    "0.1",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Soak scenario on mnist_reduced" in output
        assert "bit_exact" in output
        assert "min_accuracy" in output

    def test_soak_trace_flags_default_off(self):
        args = build_parser().parse_args(["soak"])
        assert args.trace_out is None
        assert args.metrics_out is None

    def test_telemetry_requires_metrics_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry"])
        args = build_parser().parse_args(["telemetry", "--metrics", "m.jsonl"])
        assert args.metrics == "m.jsonl"
        assert not args.raw

    def test_soak_exports_and_telemetry_reads_them(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        assert (
            main(
                [
                    "soak",
                    "--duration",
                    "1.0",
                    "--fault-interval",
                    "0.1",
                    "--max-faults",
                    "2",
                    "--scrub-period",
                    "0.1",
                    "--seed",
                    "3",
                    "--trace-out",
                    str(trace),
                    "--metrics-out",
                    str(metrics),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "fault chains" in output or "fault-00001" in output
        assert trace.exists() and metrics.exists()

        assert main(["telemetry", "--metrics", str(metrics)]) == 0
        output = capsys.readouterr().out
        assert "repro_serve_requests_total" in output

        assert main(["telemetry", "--metrics", str(metrics), "--raw"]) == 0
        assert "counters" in capsys.readouterr().out


class TestChaosAndOverloadCli:
    def test_chaos_parser_defaults(self):
        args = build_parser().parse_args(["chaos", "burst-storm"])
        assert args.scenario == "burst-storm"
        assert args.duration == 4.0
        assert args.capacity is None
        assert not args.json

    def test_chaos_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "not-a-scenario"])

    def test_serve_overload_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--request-timeout",
                "2.5",
                "--max-queue-depth",
                "64",
                "--deadline",
                "0.5",
            ]
        )
        assert args.request_timeout == 2.5
        assert args.max_queue_depth == 64
        assert args.deadline == 0.5
        # Defaults: the old hardcoded 30 s timeout, unbounded, no deadline.
        defaults = build_parser().parse_args(["serve"])
        assert defaults.request_timeout == 30.0
        assert defaults.max_queue_depth == 0
        assert defaults.deadline is None

    def test_campaign_shard_parsing(self):
        args = build_parser().parse_args(
            ["campaign", "run", "--store", "x.jsonl", "--shard", "2/4"]
        )
        assert args.shard == "2/4"
        with pytest.raises(SystemExit):
            main(["campaign", "run", "--store", "x.jsonl", "--shard", "nope"])
        with pytest.raises(SystemExit):
            main(["campaign", "run", "--store", "x.jsonl", "--shard", "0/4"])

    def test_campaign_merge_parser(self):
        args = build_parser().parse_args(
            ["campaign", "merge", "a.jsonl", "b.jsonl", "--into", "m.jsonl"]
        )
        assert args.campaign_command == "merge"
        assert args.sources == ["a.jsonl", "b.jsonl"]
        assert args.into == "m.jsonl"
        assert not args.with_timing

    def test_chaos_command_passes_and_reports(self, capsys):
        # A generous capacity estimate keeps the run tiny; the fixed seed
        # makes the trace deterministic.
        assert (
            main(
                [
                    "chaos",
                    "burst-storm",
                    "--duration",
                    "1.0",
                    "--capacity",
                    "400",
                    "--seed",
                    "1",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "SLO PASS: burst-storm" in output

    def test_chaos_command_json_payload(self, capsys):
        import json

        assert (
            main(
                [
                    "chaos",
                    "straggler-flood",
                    "--duration",
                    "1.0",
                    "--capacity",
                    "300",
                    "--seed",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "straggler-flood"
        assert payload["passed"] is True
        assert payload["uncertified_fused_served"] == 0
        assert "admitted_availability" in payload["slo"]

    def test_serve_command_reports_overload_columns(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--duration",
                    "0.5",
                    "--request-interval",
                    "0.005",
                    "--request-timeout",
                    "5.0",
                    "--max-queue-depth",
                    "32",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "overloaded" in output
        assert "timed_out" in output

    def test_campaign_shard_and_merge_round_trip(self, capsys, tmp_path):
        grid = [
            "--networks",
            "mnist_reduced",
            "--error-rates",
            "1e-4",
            "--schemes",
            "none",
            "milr",
            "--repetitions",
            "1",
            "--train-samples-per-class",
            "8",
            "--train-epochs",
            "1",
        ]
        serial = str(tmp_path / "serial.jsonl")
        assert main(["campaign", "run", "--store", serial, *grid, "--workers", "1"]) == 0
        capsys.readouterr()
        shards = []
        for k in (1, 2):
            shard = str(tmp_path / f"shard{k}.jsonl")
            shards.append(shard)
            assert (
                main(
                    [
                        "campaign",
                        "run",
                        "--store",
                        shard,
                        *grid,
                        "--workers",
                        "1",
                        "--shard",
                        f"{k}/2",
                    ]
                )
                == 0
            )
            capsys.readouterr()

        merged = str(tmp_path / "merged.jsonl")
        assert main(["campaign", "merge", *shards, "--into", merged]) == 0
        merged_digest = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("store digest:")
        ]
        assert merged_digest

        # Digest of the serial store, via a single-source merge into a copy.
        serial_copy = str(tmp_path / "serial_copy.jsonl")
        assert main(["campaign", "merge", serial, "--into", serial_copy]) == 0
        serial_digest = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("store digest:")
        ]
        assert serial_digest == merged_digest
