"""Tests for the experiment command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments.campaign import FAULT_MODES
from repro.memory import fault_model_names


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["summary", "--network", "nope"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["rber"])
        assert args.network == "mnist_reduced"
        assert args.trials == 3

    def test_error_rates_parsed_as_floats(self):
        args = build_parser().parse_args(["whole-weight", "--error-rates", "1e-4", "1e-3"])
        assert args.error_rates == [1e-4, 1e-3]

    def test_soak_defaults(self):
        args = build_parser().parse_args(["soak"])
        assert args.network == "mnist_reduced"
        assert args.scrub_period == 0.25
        assert args.fault_interval == 0.2
        assert args.max_faults is None
        assert not args.trained

    def test_serve_arguments(self):
        args = build_parser().parse_args(
            ["serve", "--network", "cifar_reduced", "--duration", "1.5"]
        )
        assert args.network == "cifar_reduced"
        assert args.duration == 1.5

    def test_campaign_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_campaign_run_defaults(self):
        args = build_parser().parse_args(["campaign", "run", "--store", "x.jsonl"])
        assert args.campaign_command == "run"
        assert args.networks == ["mnist_reduced"]
        assert args.fault_modes == ["rber"]
        assert args.schemes == ["none", "ecc", "milr", "ecc+milr"]
        assert args.repetitions == 3
        assert args.workers is None
        assert args.max_trials is None

    def test_campaign_run_rejects_unknown_network_and_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "run", "--store", "x.jsonl", "--networks", "nope"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "run", "--store", "x.jsonl", "--fault-modes", "nope"]
            )

    def test_every_fault_mode_is_a_valid_choice(self):
        # The zoo modes are auto-populated from FAULT_MODES; a new registry
        # entry must never silently miss the CLI.
        for mode in FAULT_MODES:
            args = build_parser().parse_args(
                ["campaign", "run", "--store", "x.jsonl", "--fault-modes", mode]
            )
            assert args.fault_modes == [mode]

    def test_campaign_fault_events_default(self):
        args = build_parser().parse_args(["campaign", "run", "--store", "x.jsonl"])
        assert args.fault_events == 3
        args = build_parser().parse_args(
            ["campaign", "run", "--store", "x.jsonl", "--fault-events", "5"]
        )
        assert args.fault_events == 5

    def test_soak_fault_model_arguments(self):
        args = build_parser().parse_args(["soak"])
        assert args.fault_models is None
        assert args.reassert_interval == 0.2
        args = build_parser().parse_args(
            ["soak", "--fault-models", "stuck_at", "row_hammer", "--reassert-interval", "0.5"]
        )
        assert args.fault_models == ["stuck_at", "row_hammer"]
        assert args.reassert_interval == 0.5

    def test_soak_fault_models_cover_the_registry(self):
        # choices= comes from fault_model_names(): every registered model
        # parses, anything else exits.
        for name in fault_model_names():
            args = build_parser().parse_args(["soak", "--fault-models", name])
            assert args.fault_models == [name]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["soak", "--fault-models", "no_such_model"])

    def test_campaign_report_arguments(self):
        args = build_parser().parse_args(
            ["campaign", "report", "--store", "x.jsonl", "--no-timing"]
        )
        assert args.campaign_command == "report"
        assert args.no_timing
        assert args.confidence == 0.95


class TestCommands:
    def test_summary_prints_architecture(self, capsys):
        assert main(["summary", "--network", "mnist"]) == 0
        output = capsys.readouterr().out
        assert "Conv2D" in output
        assert "1,669,290" in output

    def test_storage_reduced_network(self, capsys):
        assert main(["storage", "--networks", "mnist_reduced"]) == 0
        output = capsys.readouterr().out
        assert "milr_mb" in output

    def test_whole_layer_command(self, capsys):
        assert main(["whole-layer", "--network", "mnist_reduced"]) == 0
        output = capsys.readouterr().out
        assert "block1_conv" in output

    def test_recovery_time_command(self, capsys):
        assert main(["recovery-time", "--network", "mnist_reduced", "--error-counts", "10", "50"]) == 0
        output = capsys.readouterr().out
        assert "recovery_s" in output

    def test_timing_command_reduced(self, capsys):
        assert main(["timing", "--networks", "mnist_reduced", "--batch-size", "8"]) == 0
        output = capsys.readouterr().out
        assert "identification_s" in output

    def test_whole_weight_command(self, capsys):
        assert (
            main(
                [
                    "whole-weight",
                    "--network",
                    "mnist_reduced",
                    "--trials",
                    "1",
                    "--error-rates",
                    "1e-4",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "milr" in output

    def test_availability_command(self, capsys):
        assert main(["availability", "--networks", "mnist_reduced", "--points", "5"]) == 0
        output = capsys.readouterr().out
        assert "availability@99.999%acc" in output

    def test_serve_command(self, capsys):
        assert (
            main(["serve", "--duration", "0.5", "--request-interval", "0.005"]) == 0
        )
        output = capsys.readouterr().out
        assert "Serving mnist_reduced" in output
        assert "availability" in output

    def test_campaign_run_status_report(self, capsys, tmp_path):
        store = str(tmp_path / "campaign.jsonl")
        grid = [
            "--store",
            store,
            "--networks",
            "mnist_reduced",
            "--error-rates",
            "1e-4",
            "--schemes",
            "none",
            "milr",
            "--repetitions",
            "1",
            "--train-samples-per-class",
            "8",
            "--train-epochs",
            "1",
        ]
        assert main(["campaign", "run", *grid, "--workers", "1"]) == 0
        output = capsys.readouterr().out
        assert "executed" in output

        # Re-running the finished campaign is a no-op.
        assert main(["campaign", "run", *grid, "--workers", "1"]) == 0
        output = capsys.readouterr().out
        assert "executed" in output and "0" in output

        assert main(["campaign", "status", *grid]) == 0
        output = capsys.readouterr().out
        assert "mnist_reduced" in output and "pending" in output

        assert main(["campaign", "report", "--store", store, "--no-timing"]) == 0
        output = capsys.readouterr().out
        assert "detection_rate" in output
        assert "mean_td_ms" not in output

    def test_soak_command(self, capsys):
        assert (
            main(
                [
                    "soak",
                    "--duration",
                    "2.0",
                    "--fault-interval",
                    "0.1",
                    "--max-faults",
                    "4",
                    "--scrub-period",
                    "0.1",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Soak scenario on mnist_reduced" in output
        assert "bit_exact" in output
        assert "min_accuracy" in output

    def test_soak_trace_flags_default_off(self):
        args = build_parser().parse_args(["soak"])
        assert args.trace_out is None
        assert args.metrics_out is None

    def test_telemetry_requires_metrics_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry"])
        args = build_parser().parse_args(["telemetry", "--metrics", "m.jsonl"])
        assert args.metrics == "m.jsonl"
        assert not args.raw

    def test_soak_exports_and_telemetry_reads_them(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        assert (
            main(
                [
                    "soak",
                    "--duration",
                    "1.0",
                    "--fault-interval",
                    "0.1",
                    "--max-faults",
                    "2",
                    "--scrub-period",
                    "0.1",
                    "--seed",
                    "3",
                    "--trace-out",
                    str(trace),
                    "--metrics-out",
                    str(metrics),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "fault chains" in output or "fault-00001" in output
        assert trace.exists() and metrics.exists()

        assert main(["telemetry", "--metrics", str(metrics)]) == 0
        output = capsys.readouterr().out
        assert "repro_serve_requests_total" in output

        assert main(["telemetry", "--metrics", str(metrics), "--raw"]) == 0
        assert "counters" in capsys.readouterr().out
