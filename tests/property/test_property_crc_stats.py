"""Property-based tests for the 2-D CRC scheme and box-plot statistics."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import BoxPlotStats
from repro.crc import TwoDimensionalCRC


class TestTwoDimensionalCRCProperties:
    @given(
        st.integers(min_value=5, max_value=12),
        st.integers(min_value=5, max_value=12),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_corrupted_weight_is_always_a_suspect(self, rows, cols, data):
        # CRC-8 group codes can collide (an 8-bit code over a 2^32 value
        # space), so the scheme's guarantee is conditional: a corrupted weight
        # is never missed *when both its group CRCs changed*.  The
        # unconditional variant below uses CRC-32, where a collision is
        # practically impossible.
        seed = data.draw(st.integers(min_value=0, max_value=1000))
        matrix = np.random.default_rng(seed).standard_normal((rows, cols)).astype(np.float32)
        scheme = TwoDimensionalCRC(group_size=4, crc_bits=8)
        codes = scheme.encode_matrix(matrix)
        row = data.draw(st.integers(min_value=0, max_value=rows - 1))
        col = data.draw(st.integers(min_value=0, max_value=cols - 1))
        delta = data.draw(st.floats(min_value=0.5, max_value=10.0))
        corrupted = matrix.copy()
        corrupted[row, col] += np.float32(delta)
        current = scheme.encode_matrix(corrupted)
        row_group = col // scheme.group_size
        col_group = row // scheme.group_size
        crcs_changed = (
            current.row_codes[row, row_group] != codes.row_codes[row, row_group]
            and current.col_codes[col_group, col] != codes.col_codes[col_group, col]
        )
        result = scheme.localize_matrix(corrupted, codes)
        if crcs_changed:
            assert result.suspect_mask[row, col]

    @given(
        st.integers(min_value=5, max_value=12),
        st.integers(min_value=5, max_value=12),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_corrupted_weight_is_always_a_suspect_crc32(self, rows, cols, data):
        seed = data.draw(st.integers(min_value=0, max_value=1000))
        matrix = np.random.default_rng(seed).standard_normal((rows, cols)).astype(np.float32)
        scheme = TwoDimensionalCRC(group_size=4, crc_bits=32)
        codes = scheme.encode_matrix(matrix)
        row = data.draw(st.integers(min_value=0, max_value=rows - 1))
        col = data.draw(st.integers(min_value=0, max_value=cols - 1))
        delta = data.draw(st.floats(min_value=0.5, max_value=10.0))
        corrupted = matrix.copy()
        corrupted[row, col] += np.float32(delta)
        result = scheme.localize_matrix(corrupted, codes)
        assert result.suspect_mask[row, col]

    @given(st.integers(min_value=5, max_value=16), st.integers(min_value=5, max_value=16), st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_clean_matrix_never_flags_suspects(self, rows, cols, seed):
        matrix = np.random.default_rng(seed).standard_normal((rows, cols)).astype(np.float32)
        scheme = TwoDimensionalCRC(group_size=4, crc_bits=8)
        codes = scheme.encode_matrix(matrix)
        result = scheme.localize_matrix(matrix.copy(), codes)
        assert result.suspect_count == 0

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_suspects_bounded_by_group_intersection(self, group_size, seed):
        matrix = np.random.default_rng(seed).standard_normal((12, 12)).astype(np.float32)
        scheme = TwoDimensionalCRC(group_size=group_size, crc_bits=8)
        codes = scheme.encode_matrix(matrix)
        corrupted = matrix.copy()
        corrupted[3, 5] += 2.0
        result = scheme.localize_matrix(corrupted, codes)
        assert result.suspect_count <= group_size * group_size


class TestBoxPlotStatsProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=100
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_ordering_invariants(self, samples):
        stats = BoxPlotStats.from_samples(samples)
        assert stats.minimum <= stats.first_quartile <= stats.median
        assert stats.median <= stats.third_quartile <= stats.maximum
        assert stats.minimum <= stats.lower_whisker <= stats.upper_whisker <= stats.maximum
        assert stats.count == len(samples)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=50
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_outliers_lie_outside_whiskers(self, samples):
        stats = BoxPlotStats.from_samples(samples)
        for outlier in stats.outliers:
            assert outlier < stats.lower_whisker or outlier > stats.upper_whisker

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), st.integers(min_value=1, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_constant_samples_have_degenerate_box(self, value, count):
        stats = BoxPlotStats.from_samples([value] * count)
        assert stats.minimum == stats.maximum == stats.median
        assert stats.outliers == ()
