"""Property-based tests for layer algebra and MILR recovery invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MILRConfig, MILRProtector, RecoveryStrategy, plan_model
from repro.core.planner import InversionStrategy
from repro.exceptions import UnsupportedLayerError
from repro.memory import inject_whole_weight
from repro.nn import BatchNorm, Bias, Conv2D, Dense, Flatten, ReLU, Sequential
from repro.nn.layers.base import Layer
from repro.nn.tensor_utils import col2im, im2col


class TestLayerAlgebraProperties:
    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_dense_forward_is_linear(self, features_in, units, batch, seed):
        layer = Dense(units, seed=seed, name="d")
        layer.build((features_in,))
        rng = np.random.default_rng(seed)
        a = rng.random((batch, features_in)).astype(np.float32)
        b = rng.random((batch, features_in)).astype(np.float32)
        combined = layer.forward((a + b).astype(np.float32))
        separate = layer.forward(a) + layer.forward(b)
        np.testing.assert_allclose(combined, separate, rtol=1e-4, atol=1e-4)

    @given(
        st.integers(min_value=4, max_value=9),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_im2col_col2im_roundtrip(self, size, channels, kernel, seed):
        inputs = np.random.default_rng(seed).random((1, size, size, channels)).astype(np.float32)
        patches = im2col(inputs, (kernel, kernel), (1, 1))
        reconstructed = col2im(patches, inputs.shape, (kernel, kernel), (1, 1), reduce="mean")
        np.testing.assert_allclose(reconstructed, inputs, rtol=1e-4, atol=1e-5)

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_bias_forward_inverse(self, channels, batch, seed):
        layer = Bias(seed=seed, name="b")
        layer.build((channels,))
        x = np.random.default_rng(seed).random((batch, channels)).astype(np.float32)
        y = layer.forward(x)
        np.testing.assert_allclose(y - layer.get_weights(), x, rtol=1e-5, atol=1e-6)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_relu_is_idempotent(self, seed):
        layer = ReLU()
        layer.build((16,))
        x = (np.random.default_rng(seed).random((3, 16)).astype(np.float32) - 0.5) * 4
        once = layer.forward(x)
        twice = layer.forward(once)
        np.testing.assert_array_equal(once, twice)


class TestRecoveryProperties:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.02, max_value=0.5),
    )
    @settings(max_examples=10, deadline=None)
    def test_dense_layer_always_recovers_from_whole_weight_errors(self, seed, rate):
        model = Sequential(
            [Dense(12, seed=3, name="d1"), Bias(name="b1", seed=4), ReLU(), Dense(6, seed=5, name="d2")]
        )
        model.build((9,))
        protector = MILRProtector(model, MILRConfig(master_seed=41))
        protector.initialize()
        layer = model.get_layer("d1")
        original = layer.get_weights()
        corrupted, report = inject_whole_weight(original, rate, np.random.default_rng(seed))
        layer.set_weights(corrupted)
        detection, recovery = protector.detect_and_recover()
        if report.affected_weights == 0:
            assert not detection.any_errors
            return
        np.testing.assert_allclose(layer.get_weights(), original, rtol=1e-3, atol=1e-3)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_conv_layer_recovery_independent_of_error_pattern(self, seed):
        model = Sequential([Conv2D(8, 3, padding="valid", seed=7, name="c"), Bias(name="b", seed=8)])
        model.build((8, 8, 1))
        protector = MILRProtector(model, MILRConfig(master_seed=43))
        protector.initialize()
        layer = model.get_layer("c")
        original = layer.get_weights()
        corrupted, report = inject_whole_weight(original, 0.3, np.random.default_rng(seed))
        layer.set_weights(corrupted)
        _, recovery = protector.detect_and_recover()
        if report.affected_weights == 0:
            return
        assert recovery is not None
        np.testing.assert_allclose(layer.get_weights(), original, rtol=1e-3, atol=1e-3)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.05, max_value=0.5),
    )
    @settings(max_examples=8, deadline=None)
    def test_batchnorm_layer_always_recovers_from_whole_weight_errors(self, seed, rate):
        model = Sequential(
            [
                Dense(10, seed=1, name="d"),
                BatchNorm(name="bn", seed=2),
                ReLU(),
                Dense(4, seed=3, name="d2"),
            ]
        )
        model.build((7,))
        protector = MILRProtector(model, MILRConfig(master_seed=53))
        protector.initialize()
        layer = model.get_layer("bn")
        original = layer.get_weights()
        corrupted, report = inject_whole_weight(original, rate, np.random.default_rng(seed))
        layer.set_weights(corrupted)
        detection, _ = protector.detect_and_recover()
        if report.affected_weights == 0:
            assert not detection.any_errors
            return
        # The BatchNorm solve is self-contained (stored dummy rows), so it
        # recovers regardless of the corruption pattern.
        np.testing.assert_allclose(layer.get_weights(), original, rtol=1e-3, atol=1e-3)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_recovery_never_corrupts_clean_layers(self, seed):
        model = Sequential(
            [
                Conv2D(8, 3, padding="valid", seed=9, name="c"),
                Bias(name="cb", seed=10),
                ReLU(),
                Flatten(),
                Dense(5, seed=11, name="d"),
            ]
        )
        model.build((8, 8, 1))
        protector = MILRProtector(model, MILRConfig(master_seed=47))
        protector.initialize()
        dense_original = model.get_layer("d").get_weights()
        conv = model.get_layer("c")
        corrupted, report = inject_whole_weight(
            conv.get_weights(), 0.2, np.random.default_rng(seed)
        )
        conv.set_weights(corrupted)
        protector.detect_and_recover()
        # The dense layer was never corrupted; recovery must not have touched it.
        np.testing.assert_array_equal(model.get_layer("d").get_weights(), dense_original)


class _RogueParameterized(Layer):
    """A parameterized layer type the protection registry does not know."""

    has_parameters = True

    def __init__(self, width: int, name=None):
        super().__init__(name=name)
        self.width = width

    def compute_output_shape(self, input_shape):
        return input_shape

    def forward(self, inputs, training=False):
        return inputs

    def get_weights(self):
        return np.ones((self.width,), dtype=np.float32)

    def set_weights(self, weights):
        pass


class _OptInPassthrough(Layer):
    """A parameter-free layer that opts into protection via the pass-through flag."""

    has_parameters = False
    is_passthrough = True

    def compute_output_shape(self, input_shape):
        return input_shape

    def forward(self, inputs, training=False):
        return inputs


class TestRegistryErrorProperties:
    @given(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=25, deadline=None)
    def test_unregistered_parameterized_layer_raises_with_name_and_index(
        self, prefix_blocks, width, features
    ):
        """Planning any model containing an unknown parameterized layer fails
        with an UnsupportedLayerError naming the layer and its index."""
        layers: list[Layer] = []
        for block in range(prefix_blocks):
            layers.append(Dense(features, seed=block, name=f"d{block}"))
            layers.append(ReLU(name=f"r{block}"))
        rogue_index = len(layers)
        layers.append(_RogueParameterized(width, name="rogue_layer"))
        model = Sequential(layers)
        model.build((features,))
        with pytest.raises(UnsupportedLayerError) as excinfo:
            plan_model(model, MILRConfig())
        message = str(excinfo.value)
        assert "rogue_layer" in message
        assert f"index {rogue_index}" in message
        assert "_RogueParameterized" in message

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_registered_passthrough_layer_plans_as_identity(
        self, passthrough_count, features, seed
    ):
        """Pass-through layers plan as identity: no parameters, no checkpoint,
        no effect on detection or the recovery of their neighbours."""
        layers: list[Layer] = [Dense(features, seed=seed, name="d")]
        for i in range(passthrough_count):
            layers.append(_OptInPassthrough(name=f"skip{i}"))
        model = Sequential(layers)
        model.build((features,))
        protector = MILRProtector(model, MILRConfig(master_seed=seed))
        plan = protector.initialize()
        for i in range(1, 1 + passthrough_count):
            passthrough_plan = plan.plan_for(i)
            assert passthrough_plan.recovery_strategy is RecoveryStrategy.NONE
            assert passthrough_plan.inversion_strategy is InversionStrategy.IDENTITY
            assert passthrough_plan.parameter_count == 0
            assert not passthrough_plan.needs_input_checkpoint
            assert passthrough_plan.extra_storage_bytes == 0
        # The pass-through layers are invisible to detection and recovery.
        assert [p.index for p in plan.parameterized_layers()] == [0]
        dense = model.get_layer("d")
        original = dense.get_weights()
        corrupted, report = inject_whole_weight(
            original, 0.3, np.random.default_rng(seed)
        )
        dense.set_weights(corrupted)
        detection, _ = protector.detect_and_recover()
        if report.affected_weights == 0:
            assert not detection.any_errors
            return
        np.testing.assert_allclose(dense.get_weights(), original, rtol=1e-3, atol=1e-3)
