"""Property-based tests for bit manipulation and the SECDED codec."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.bitops import bits_to_floats, count_bit_differences, flip_bits, floats_to_bits
from repro.memory.ecc import SECDEDCodec, SECDEDWordStatus

_WORDS = st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=64)
_FLOATS = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32), min_size=1, max_size=64
)


class TestBitopsProperties:
    @given(_FLOATS)
    @settings(max_examples=50, deadline=None)
    def test_float_bit_roundtrip(self, values):
        array = np.asarray(values, dtype=np.float32)
        np.testing.assert_array_equal(bits_to_floats(floats_to_bits(array)), array)

    @given(_FLOATS, st.data())
    @settings(max_examples=50, deadline=None)
    def test_double_flip_is_identity(self, values, data):
        array = np.asarray(values, dtype=np.float32)
        index = data.draw(st.integers(min_value=0, max_value=array.size - 1))
        bit = data.draw(st.integers(min_value=0, max_value=31))
        once = flip_bits(array, np.array([index]), np.array([bit]))
        twice = flip_bits(once, np.array([index]), np.array([bit]))
        np.testing.assert_array_equal(twice, array)

    @given(_FLOATS, st.data())
    @settings(max_examples=50, deadline=None)
    def test_single_flip_changes_exactly_one_bit(self, values, data):
        array = np.asarray(values, dtype=np.float32)
        index = data.draw(st.integers(min_value=0, max_value=array.size - 1))
        bit = data.draw(st.integers(min_value=0, max_value=31))
        flipped = flip_bits(array, np.array([index]), np.array([bit]))
        assert count_bit_differences(array, flipped) == 1


class TestSECDEDProperties:
    @given(_WORDS)
    @settings(max_examples=50, deadline=None)
    def test_clean_words_decode_to_themselves(self, words):
        words = np.asarray(words, dtype=np.uint32)
        codec = SECDEDCodec()
        check = codec.encode_words(words)
        decoded, statuses = codec.decode_words(words, check)
        np.testing.assert_array_equal(decoded, words)
        assert all(status is SECDEDWordStatus.CLEAN for status in statuses)

    @given(_WORDS, st.data())
    @settings(max_examples=50, deadline=None)
    def test_any_single_data_bit_error_is_corrected(self, words, data):
        words = np.asarray(words, dtype=np.uint32)
        codec = SECDEDCodec()
        check = codec.encode_words(words)
        index = data.draw(st.integers(min_value=0, max_value=words.size - 1))
        bit = data.draw(st.integers(min_value=0, max_value=31))
        corrupted = words.copy()
        corrupted[index] ^= np.uint32(1) << np.uint32(bit)
        decoded, statuses = codec.decode_words(corrupted, check)
        np.testing.assert_array_equal(decoded, words)
        assert statuses[index] is SECDEDWordStatus.CORRECTED

    @given(_WORDS, st.data())
    @settings(max_examples=50, deadline=None)
    def test_any_double_bit_error_is_detected_not_miscorrected(self, words, data):
        words = np.asarray(words, dtype=np.uint32)
        codec = SECDEDCodec()
        check = codec.encode_words(words)
        index = data.draw(st.integers(min_value=0, max_value=words.size - 1))
        bit_a = data.draw(st.integers(min_value=0, max_value=31))
        bit_b = data.draw(st.integers(min_value=0, max_value=31).filter(lambda b: b != bit_a))
        corrupted = words.copy()
        corrupted[index] ^= (np.uint32(1) << np.uint32(bit_a)) | (np.uint32(1) << np.uint32(bit_b))
        decoded, statuses = codec.decode_words(corrupted, check)
        assert statuses[index] is SECDEDWordStatus.DETECTED_UNCORRECTABLE
        # No silent mis-correction into a third, wrong value.
        assert decoded[index] == corrupted[index]
