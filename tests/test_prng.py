"""Tests for the seeded pseudo-random tensor generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prng import SeededTensorGenerator, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "foo") == derive_seed(42, "foo")

    def test_different_purposes_differ(self):
        assert derive_seed(42, "foo") != derive_seed(42, "bar")

    def test_different_master_seeds_differ(self):
        assert derive_seed(1, "foo") != derive_seed(2, "foo")

    def test_seed_is_non_negative(self):
        assert derive_seed(0, "") >= 0

    def test_stable_value(self):
        # Guards against accidental changes in the derivation: regenerated
        # tensors must be identical across versions for stored checkpoints to
        # remain valid.
        assert derive_seed(0, "detection-input") == derive_seed(0, "detection-input")


class TestSeededTensorGenerator:
    def test_uniform_reproducible(self):
        generator = SeededTensorGenerator(7)
        a = generator.uniform("x", (4, 5))
        b = generator.uniform("x", (4, 5))
        np.testing.assert_array_equal(a, b)

    def test_uniform_respects_bounds(self):
        generator = SeededTensorGenerator(7, low=-2.0, high=3.0)
        values = generator.uniform("x", (1000,))
        assert values.min() >= -2.0
        assert values.max() < 3.0

    def test_uniform_dtype_and_shape(self):
        generator = SeededTensorGenerator(0)
        values = generator.uniform("x", (2, 3, 4))
        assert values.shape == (2, 3, 4)
        assert values.dtype == np.float32

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            SeededTensorGenerator(0, low=1.0, high=1.0)

    def test_different_purposes_give_different_tensors(self):
        generator = SeededTensorGenerator(3)
        a = generator.uniform("a", (16,))
        b = generator.uniform("b", (16,))
        assert not np.array_equal(a, b)

    def test_standard_normal_reproducible(self):
        generator = SeededTensorGenerator(9)
        a = generator.standard_normal("n", (8, 8))
        b = generator.standard_normal("n", (8, 8))
        np.testing.assert_array_equal(a, b)

    def test_detection_input_shape_includes_batch(self):
        generator = SeededTensorGenerator(5)
        tensor = generator.detection_input((28, 28, 1), batch=2)
        assert tensor.shape == (2, 28, 28, 1)

    def test_dummy_parameters_layer_scoped(self):
        generator = SeededTensorGenerator(5)
        a = generator.dummy_parameters("layer1", (3, 3))
        b = generator.dummy_parameters("layer2", (3, 3))
        assert not np.array_equal(a, b)

    def test_dummy_inputs_reproducible_across_instances(self):
        a = SeededTensorGenerator(11).dummy_inputs("dense", (4, 6))
        b = SeededTensorGenerator(11).dummy_inputs("dense", (4, 6))
        np.testing.assert_array_equal(a, b)

    def test_master_seed_property(self):
        assert SeededTensorGenerator(123).master_seed == 123

    def test_seed_for_matches_derive_seed(self):
        generator = SeededTensorGenerator(55)
        assert generator.seed_for("p") == derive_seed(55, "p")
