"""Tests for the AES-XTS ciphertext/plaintext error-amplification model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FaultInjectionError
from repro.memory import XTSMemoryModel
from repro.memory.encryption import WEIGHTS_PER_BLOCK


class TestXTSMemoryModel:
    def test_block_count(self):
        assert XTSMemoryModel.block_count(0) == 0
        assert XTSMemoryModel.block_count(4) == 1
        assert XTSMemoryModel.block_count(5) == 2

    def test_zero_rate_changes_nothing(self, rng):
        weights = np.random.default_rng(0).standard_normal(64).astype(np.float32)
        model = XTSMemoryModel()
        corrupted, report = model.corrupt_plaintext(weights, 0.0, rng)
        np.testing.assert_array_equal(corrupted, weights)
        assert report.affected_blocks == 0

    def test_invalid_rate(self, rng):
        model = XTSMemoryModel()
        with pytest.raises(FaultInjectionError):
            model.corrupt_plaintext(np.zeros(4, dtype=np.float32), 1.5, rng)

    def test_one_ciphertext_error_corrupts_whole_block(self):
        weights = np.random.default_rng(1).standard_normal(64).astype(np.float32)
        model = XTSMemoryModel(seed=0)
        # Use a high enough rate to guarantee at least one affected block.
        corrupted, report = model.corrupt_plaintext(weights, 5e-3, np.random.default_rng(2))
        assert report.affected_blocks >= 1
        for block_start in range(0, 64, WEIGHTS_PER_BLOCK):
            block_changed = np.any(
                corrupted[block_start : block_start + WEIGHTS_PER_BLOCK]
                != weights[block_start : block_start + WEIGHTS_PER_BLOCK]
            )
            if block_changed:
                # The paper's point: the whole encryption block is garbage, so
                # typically all four weights of the block change, far more than
                # the single ciphertext bit that was hit.
                changed = np.sum(
                    corrupted[block_start : block_start + WEIGHTS_PER_BLOCK]
                    != weights[block_start : block_start + WEIGHTS_PER_BLOCK]
                )
                assert changed >= 3

    def test_affected_weight_indices_reported(self):
        weights = np.random.default_rng(1).standard_normal(32).astype(np.float32)
        model = XTSMemoryModel(seed=0)
        corrupted, report = model.corrupt_plaintext(weights, 1e-2, np.random.default_rng(3))
        changed = np.flatnonzero(corrupted != weights)
        assert set(changed).issubset(set(report.affected_weight_indices.tolist()))

    def test_unaffected_blocks_preserved(self):
        weights = np.random.default_rng(4).standard_normal(400).astype(np.float32)
        model = XTSMemoryModel(seed=1)
        corrupted, report = model.corrupt_plaintext(weights, 1e-3, np.random.default_rng(5))
        untouched = np.setdiff1d(np.arange(weights.size), report.affected_weight_indices)
        np.testing.assert_array_equal(corrupted[untouched], weights[untouched])

    def test_block_error_rate(self):
        weights = np.zeros(40, dtype=np.float32)
        model = XTSMemoryModel()
        _, report = model.corrupt_plaintext(weights, 0.5, np.random.default_rng(0))
        assert report.block_error_rate == report.affected_blocks / report.total_blocks

    def test_shape_preserved(self):
        weights = np.zeros((3, 5, 2), dtype=np.float32)
        model = XTSMemoryModel()
        corrupted, _ = model.corrupt_plaintext(weights, 0.01, np.random.default_rng(0))
        assert corrupted.shape == weights.shape

    def test_empty_weights(self, rng):
        model = XTSMemoryModel()
        corrupted, report = model.corrupt_plaintext(np.zeros(0, dtype=np.float32), 0.5, rng)
        assert corrupted.size == 0
        assert report.total_blocks == 0
