"""Tests for the three fault-injection workloads."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FaultInjectionError
from repro.memory import inject_rber, inject_whole_layer, inject_whole_weight
from repro.memory import fault_injection
from repro.memory.bitops import count_bit_differences


@pytest.fixture
def weights():
    return np.random.default_rng(0).standard_normal(5000).astype(np.float32)


class TestInjectRBER:
    def test_zero_rate_changes_nothing(self, weights, rng):
        corrupted, report = inject_rber(weights, 0.0, rng)
        np.testing.assert_array_equal(corrupted, weights)
        assert report.flipped_bits == 0
        assert report.affected_weights == 0

    def test_invalid_rate(self, weights, rng):
        with pytest.raises(FaultInjectionError):
            inject_rber(weights, 1.5, rng)

    def test_flip_count_matches_report(self, weights, rng):
        corrupted, report = inject_rber(weights, 1e-3, rng)
        assert count_bit_differences(weights, corrupted) == report.flipped_bits

    def test_flip_count_close_to_expectation(self, weights, rng):
        _, report = inject_rber(weights, 1e-2, rng)
        expected = weights.size * 32 * 1e-2
        assert expected * 0.7 < report.flipped_bits < expected * 1.3

    def test_affected_indices_are_valid(self, weights, rng):
        corrupted, report = inject_rber(weights, 1e-3, rng)
        changed = np.flatnonzero(corrupted != weights)
        # Every changed weight must be reported (the reverse need not hold:
        # e.g. a mantissa flip on an inf stays inf).
        assert set(changed).issubset(set(report.affected_indices.tolist()))

    def test_original_untouched(self, weights, rng):
        snapshot = weights.copy()
        inject_rber(weights, 1e-2, rng)
        np.testing.assert_array_equal(weights, snapshot)

    def test_weight_error_rate_property(self, weights, rng):
        _, report = inject_rber(weights, 1e-3, rng)
        assert report.weight_error_rate == report.affected_weights / weights.size

    def test_empty_array(self, rng):
        corrupted, report = inject_rber(np.zeros(0, dtype=np.float32), 0.5, rng)
        assert corrupted.size == 0
        assert report.total_weights == 0

    def test_rate_one_flips_every_bit(self, rng):
        weights = np.ones(16, dtype=np.float32)
        corrupted, report = inject_rber(weights, 1.0, rng)
        assert report.flipped_bits == 16 * 32
        assert count_bit_differences(weights, corrupted) == 16 * 32

    def test_multidimensional_shape_preserved(self, rng):
        weights = np.ones((3, 3, 2, 4), dtype=np.float32)
        corrupted, _ = inject_rber(weights, 0.01, rng)
        assert corrupted.shape == weights.shape

    def test_small_arrays_stay_bit_identical_with_dense_reference(self, weights):
        # The dense path below _DENSE_SAMPLE_LIMIT is the historical draw
        # order; a seeded run must reproduce it exactly (stored campaign
        # results and seeded experiments depend on it).
        assert weights.size * 32 <= fault_injection._DENSE_SAMPLE_LIMIT
        corrupted, report = inject_rber(weights, 1e-3, np.random.default_rng(42))
        reference_rng = np.random.default_rng(42)
        flip_count = int(reference_rng.binomial(weights.size * 32, 1e-3))
        bit_indices = reference_rng.choice(weights.size * 32, size=flip_count, replace=False)
        expected = weights.copy().view(np.uint32)
        np.bitwise_xor.at(
            expected,
            bit_indices // 32,
            (np.uint32(1) << (bit_indices % 32).astype(np.uint32)).astype(np.uint32),
        )
        np.testing.assert_array_equal(corrupted.view(np.uint32), expected)
        assert report.flipped_bits == flip_count


class TestInjectRBERSparsePath:
    """The O(flips)-memory draw used above ``_DENSE_SAMPLE_LIMIT``."""

    @pytest.fixture(autouse=True)
    def force_sparse(self, monkeypatch):
        monkeypatch.setattr(fault_injection, "_DENSE_SAMPLE_LIMIT", 0)

    def test_exact_flip_count_and_distinct_bits(self, weights):
        corrupted, report = inject_rber(weights, 1e-2, np.random.default_rng(7))
        assert report.flipped_bits == count_bit_differences(weights, corrupted)
        expected = int(np.random.default_rng(7).binomial(weights.size * 32, 1e-2))
        # Every drawn (weight, bit) pair is distinct, so nothing cancels out.
        assert report.flipped_bits == expected

    def test_same_seed_same_corruption(self, weights):
        a, report_a = inject_rber(weights, 5e-3, np.random.default_rng(3))
        b, report_b = inject_rber(weights, 5e-3, np.random.default_rng(3))
        np.testing.assert_array_equal(a.view(np.uint32), b.view(np.uint32))
        np.testing.assert_array_equal(report_a.affected_indices, report_b.affected_indices)

    def test_helper_draws_distinct_indices(self):
        rng = np.random.default_rng(1)
        picked = fault_injection._sparse_distinct_bit_indices(100, 1500, rng)
        assert picked.size == 1500
        assert np.unique(picked).size == 1500
        assert picked.min() >= 0 and picked.max() < 100 * 32

    def test_rate_one_flips_every_bit(self):
        weights = np.ones(16, dtype=np.float32)
        corrupted, report = inject_rber(weights, 1.0, np.random.default_rng(0))
        assert report.flipped_bits == 16 * 32
        assert count_bit_differences(weights, corrupted) == 16 * 32

    def test_flip_count_close_to_expectation(self, weights):
        _, report = inject_rber(weights, 1e-2, np.random.default_rng(9))
        expected = weights.size * 32 * 1e-2
        assert expected * 0.7 < report.flipped_bits < expected * 1.3


class TestInjectWholeWeight:
    def test_all_bits_of_selected_weights_flip(self, weights, rng):
        corrupted, report = inject_whole_weight(weights, 0.01, rng)
        assert report.flipped_bits == report.affected_weights * 32
        for index in report.affected_indices[:10]:
            assert count_bit_differences(weights[index : index + 1], corrupted[index : index + 1]) == 32

    def test_unselected_weights_untouched(self, weights, rng):
        corrupted, report = inject_whole_weight(weights, 0.01, rng)
        untouched = np.setdiff1d(np.arange(weights.size), report.affected_indices)
        np.testing.assert_array_equal(corrupted[untouched], weights[untouched])

    def test_selection_rate_close_to_q(self, weights, rng):
        _, report = inject_whole_weight(weights, 0.05, rng)
        assert 0.02 < report.weight_error_rate < 0.09

    def test_zero_rate(self, weights, rng):
        corrupted, report = inject_whole_weight(weights, 0.0, rng)
        np.testing.assert_array_equal(corrupted, weights)
        assert report.affected_weights == 0

    def test_invalid_rate(self, weights, rng):
        with pytest.raises(FaultInjectionError):
            inject_whole_weight(weights, -0.1, rng)


class TestInjectWholeLayer:
    def test_every_value_changes(self, weights, rng):
        corrupted, report = inject_whole_layer(weights, rng)
        assert np.all(corrupted != weights)
        assert report.affected_weights == weights.size

    def test_values_within_scale(self, weights, rng):
        corrupted, _ = inject_whole_layer(weights, rng, scale=0.5)
        assert np.max(np.abs(corrupted)) <= 0.6

    def test_shape_preserved(self, rng):
        weights = np.ones((4, 4, 3, 8), dtype=np.float32)
        corrupted, _ = inject_whole_layer(weights, rng)
        assert corrupted.shape == weights.shape

    def test_empty_layer(self, rng):
        corrupted, report = inject_whole_layer(np.zeros(0, dtype=np.float32), rng)
        assert corrupted.size == 0
        assert report.total_weights == 0

    def test_deterministic_given_rng(self, weights):
        a, _ = inject_whole_layer(weights, np.random.default_rng(5))
        b, _ = inject_whole_layer(weights, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_scale_zero_still_changes_every_value(self, rng):
        # scale=0 degenerates every draw to 0.0; zero originals must still be
        # replaced (with the smallest positive float32, inside [-0, 0]...the
        # documented fallback) and nonzero originals become 0.0.
        weights = np.array([0.0, 0.5, -0.25, 0.0], dtype=np.float32)
        corrupted, report = inject_whole_layer(weights, rng, scale=0.0)
        assert np.all(corrupted != weights)
        assert report.affected_weights == weights.size

    def test_collisions_resolved_by_redraw(self, rng):
        # An all-zeros layer guarantees the first uniform draw collides with
        # probability ~0 but the zero *original* values stress the fallback.
        weights = np.zeros(64, dtype=np.float32)
        corrupted, _ = inject_whole_layer(weights, rng, scale=1.0)
        assert np.all(corrupted != 0.0)
        assert np.max(np.abs(corrupted)) <= 1.0

    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.sampled_from([0.0, 1e-30, 0.5, 1.0, 100.0]),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_no_value_ever_survives(self, seed, scale, size):
        rng = np.random.default_rng(seed)
        weights = (rng.standard_normal(size) * scale).astype(np.float32)
        # Mix in exact zeros and values on the draw boundary.
        weights[:: max(1, size // 7)] = 0.0
        corrupted, report = inject_whole_layer(weights, rng, scale=scale)
        assert np.all(corrupted != weights)
        assert corrupted.shape == weights.shape
        assert report.affected_weights == size
        assert np.all(np.abs(corrupted) <= max(scale, np.finfo(np.float32).tiny))
