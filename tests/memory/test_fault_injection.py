"""Tests for the three fault-injection workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FaultInjectionError
from repro.memory import inject_rber, inject_whole_layer, inject_whole_weight
from repro.memory.bitops import count_bit_differences


@pytest.fixture
def weights():
    return np.random.default_rng(0).standard_normal(5000).astype(np.float32)


class TestInjectRBER:
    def test_zero_rate_changes_nothing(self, weights, rng):
        corrupted, report = inject_rber(weights, 0.0, rng)
        np.testing.assert_array_equal(corrupted, weights)
        assert report.flipped_bits == 0
        assert report.affected_weights == 0

    def test_invalid_rate(self, weights, rng):
        with pytest.raises(FaultInjectionError):
            inject_rber(weights, 1.5, rng)

    def test_flip_count_matches_report(self, weights, rng):
        corrupted, report = inject_rber(weights, 1e-3, rng)
        assert count_bit_differences(weights, corrupted) == report.flipped_bits

    def test_flip_count_close_to_expectation(self, weights, rng):
        _, report = inject_rber(weights, 1e-2, rng)
        expected = weights.size * 32 * 1e-2
        assert expected * 0.7 < report.flipped_bits < expected * 1.3

    def test_affected_indices_are_valid(self, weights, rng):
        corrupted, report = inject_rber(weights, 1e-3, rng)
        changed = np.flatnonzero(corrupted != weights)
        # Every changed weight must be reported (the reverse need not hold:
        # e.g. a mantissa flip on an inf stays inf).
        assert set(changed).issubset(set(report.affected_indices.tolist()))

    def test_original_untouched(self, weights, rng):
        snapshot = weights.copy()
        inject_rber(weights, 1e-2, rng)
        np.testing.assert_array_equal(weights, snapshot)

    def test_weight_error_rate_property(self, weights, rng):
        _, report = inject_rber(weights, 1e-3, rng)
        assert report.weight_error_rate == report.affected_weights / weights.size

    def test_empty_array(self, rng):
        corrupted, report = inject_rber(np.zeros(0, dtype=np.float32), 0.5, rng)
        assert corrupted.size == 0
        assert report.total_weights == 0

    def test_rate_one_flips_every_bit(self, rng):
        weights = np.ones(16, dtype=np.float32)
        corrupted, report = inject_rber(weights, 1.0, rng)
        assert report.flipped_bits == 16 * 32
        assert count_bit_differences(weights, corrupted) == 16 * 32

    def test_multidimensional_shape_preserved(self, rng):
        weights = np.ones((3, 3, 2, 4), dtype=np.float32)
        corrupted, _ = inject_rber(weights, 0.01, rng)
        assert corrupted.shape == weights.shape


class TestInjectWholeWeight:
    def test_all_bits_of_selected_weights_flip(self, weights, rng):
        corrupted, report = inject_whole_weight(weights, 0.01, rng)
        assert report.flipped_bits == report.affected_weights * 32
        for index in report.affected_indices[:10]:
            assert count_bit_differences(weights[index : index + 1], corrupted[index : index + 1]) == 32

    def test_unselected_weights_untouched(self, weights, rng):
        corrupted, report = inject_whole_weight(weights, 0.01, rng)
        untouched = np.setdiff1d(np.arange(weights.size), report.affected_indices)
        np.testing.assert_array_equal(corrupted[untouched], weights[untouched])

    def test_selection_rate_close_to_q(self, weights, rng):
        _, report = inject_whole_weight(weights, 0.05, rng)
        assert 0.02 < report.weight_error_rate < 0.09

    def test_zero_rate(self, weights, rng):
        corrupted, report = inject_whole_weight(weights, 0.0, rng)
        np.testing.assert_array_equal(corrupted, weights)
        assert report.affected_weights == 0

    def test_invalid_rate(self, weights, rng):
        with pytest.raises(FaultInjectionError):
            inject_whole_weight(weights, -0.1, rng)


class TestInjectWholeLayer:
    def test_every_value_changes(self, weights, rng):
        corrupted, report = inject_whole_layer(weights, rng)
        assert np.all(corrupted != weights)
        assert report.affected_weights == weights.size

    def test_values_within_scale(self, weights, rng):
        corrupted, _ = inject_whole_layer(weights, rng, scale=0.5)
        assert np.max(np.abs(corrupted)) <= 0.6

    def test_shape_preserved(self, rng):
        weights = np.ones((4, 4, 3, 8), dtype=np.float32)
        corrupted, _ = inject_whole_layer(weights, rng)
        assert corrupted.shape == weights.shape

    def test_empty_layer(self, rng):
        corrupted, report = inject_whole_layer(np.zeros(0, dtype=np.float32), rng)
        assert corrupted.size == 0
        assert report.total_weights == 0

    def test_deterministic_given_rng(self, weights):
        a, _ = inject_whole_layer(weights, np.random.default_rng(5))
        b, _ = inject_whole_layer(weights, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)
