"""Tests for float32 <-> bit manipulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FaultInjectionError
from repro.memory.bitops import (
    bits_to_floats,
    count_bit_differences,
    flip_bit_positions,
    flip_bits,
    floats_to_bits,
)


class TestFloatBitConversion:
    def test_roundtrip(self):
        values = np.random.default_rng(0).standard_normal(100).astype(np.float32)
        np.testing.assert_array_equal(bits_to_floats(floats_to_bits(values)), values)

    def test_known_value(self):
        assert floats_to_bits(np.array([1.0], dtype=np.float32))[0] == 0x3F800000

    def test_zero(self):
        assert floats_to_bits(np.array([0.0], dtype=np.float32))[0] == 0

    def test_shape_preserved(self):
        values = np.zeros((3, 4, 5), dtype=np.float32)
        assert floats_to_bits(values).shape == (3, 4, 5)

    def test_returns_copy(self):
        values = np.ones(4, dtype=np.float32)
        bits = floats_to_bits(values)
        bits[0] = 0
        assert values[0] == 1.0


class TestFlipBitPositions:
    def test_single_flip(self):
        assert flip_bit_positions(0, [0]) == 1

    def test_double_flip_cancels(self):
        assert flip_bit_positions(0b1010, [1, 1]) == 0b1010

    def test_sign_bit(self):
        word = int(floats_to_bits(np.array([1.0], dtype=np.float32))[0])
        flipped = flip_bit_positions(word, [31])
        assert bits_to_floats(np.array([flipped], dtype=np.uint32))[0] == -1.0

    def test_out_of_range(self):
        with pytest.raises(FaultInjectionError):
            flip_bit_positions(0, [32])


class TestFlipBits:
    def test_flips_requested_bits(self):
        values = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        flipped = flip_bits(values, np.array([0]), np.array([31]))
        assert flipped[0] == -1.0
        assert flipped[1] == 2.0

    def test_repeated_index_flips_cumulatively(self):
        values = np.array([1.0], dtype=np.float32)
        flipped = flip_bits(values, np.array([0, 0]), np.array([31, 31]))
        assert flipped[0] == 1.0

    def test_mismatched_lengths(self):
        with pytest.raises(FaultInjectionError):
            flip_bits(np.ones(2, dtype=np.float32), np.array([0]), np.array([0, 1]))

    def test_index_out_of_range(self):
        with pytest.raises(FaultInjectionError):
            flip_bits(np.ones(2, dtype=np.float32), np.array([2]), np.array([0]))

    def test_bit_position_out_of_range(self):
        with pytest.raises(FaultInjectionError):
            flip_bits(np.ones(2, dtype=np.float32), np.array([0]), np.array([32]))

    def test_original_untouched(self):
        values = np.ones(3, dtype=np.float32)
        flip_bits(values, np.array([1]), np.array([5]))
        np.testing.assert_array_equal(values, np.ones(3, dtype=np.float32))

    def test_multidimensional_input(self):
        values = np.ones((2, 2), dtype=np.float32)
        flipped = flip_bits(values, np.array([3]), np.array([31]))
        assert flipped[1, 1] == -1.0


class TestCountBitDifferences:
    def test_zero_for_identical(self):
        values = np.random.default_rng(0).standard_normal(10).astype(np.float32)
        assert count_bit_differences(values, values.copy()) == 0

    def test_counts_single_flip(self):
        values = np.ones(4, dtype=np.float32)
        flipped = flip_bits(values, np.array([2]), np.array([7]))
        assert count_bit_differences(values, flipped) == 1

    def test_counts_full_inversion(self):
        values = np.zeros(2, dtype=np.float32)
        inverted = bits_to_floats(~floats_to_bits(values))
        assert count_bit_differences(values, inverted) == 64

    def test_shape_mismatch(self):
        with pytest.raises(FaultInjectionError):
            count_bit_differences(np.zeros(2, dtype=np.float32), np.zeros(3, dtype=np.float32))
