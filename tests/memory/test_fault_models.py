"""Tests for the composable fault-model zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FaultInjectionError
from repro.memory import (
    ActivationScratchCorruption,
    AdversarialTargeted,
    ECCEscapeTriple,
    FaultModel,
    FaultTarget,
    RowHammerBurst,
    StuckAtCells,
    create_fault_model,
    fault_model_names,
    fault_model_registry,
    register_fault_model,
    secded_escape_pattern,
)
from repro.memory.bitops import floats_to_bits
from repro.memory.ecc import SECDEDCodec, SECDEDWordStatus
from repro.nn import Bias, Conv2D, Dense, Flatten, ReLU, Sequential

ZOO = ("activation", "adversarial", "ecc_escape", "row_hammer", "stuck_at")


@pytest.fixture
def dense_target(tiny_dense_model) -> FaultTarget:
    index = next(
        i for i, layer in enumerate(tiny_dense_model.layers) if layer.has_parameters
    )
    return FaultTarget(tiny_dense_model, index)


@pytest.fixture
def padded_conv_model() -> Sequential:
    """A conv net with same padding: its plans pin scratch pad buffers."""
    model = Sequential(
        [
            Conv2D(3, 3, padding="same", seed=1, name="c1"),
            Bias(name="b1", seed=2),
            ReLU(name="r1"),
            Flatten(name="f1"),
            Dense(4, seed=3, name="d1"),
            Bias(name="b2", seed=4),
        ],
        name="padded_conv",
    )
    model.build((6, 6, 2))
    return model


def layer_bits(target: FaultTarget) -> np.ndarray:
    return floats_to_bits(target.layer.get_weights()).ravel()


class TestRegistry:
    def test_all_zoo_models_registered(self):
        assert set(ZOO) <= set(fault_model_names())

    def test_create_unknown_name_rejected(self):
        with pytest.raises(FaultInjectionError):
            create_fault_model("no_such_model")

    def test_conflicting_registration_refused(self):
        class Impostor(FaultModel):
            name = "row_hammer"

        with pytest.raises(FaultInjectionError):
            register_fault_model(Impostor)
        assert fault_model_registry.create("row_hammer").__class__ is RowHammerBurst

    def test_reregistering_same_class_is_idempotent(self):
        assert register_fault_model(RowHammerBurst) is RowHammerBurst

    def test_custom_model_round_trip(self):
        @register_fault_model
        class NullModel(FaultModel):
            name = "test_null"

            def inject(self, target, rng):
                raise NotImplementedError

        try:
            assert "test_null" in fault_model_names()
            assert isinstance(create_fault_model("test_null"), NullModel)
        finally:
            del fault_model_registry._models["test_null"]

    def test_same_seed_same_corruption(self, tiny_dense_model, dense_target):
        for name in ("row_hammer", "stuck_at", "ecc_escape", "adversarial"):
            golden = dense_target.layer.get_weights().copy()
            outcomes = []
            for _ in range(2):
                create_fault_model(name).inject(
                    dense_target, np.random.default_rng(99)
                )
                outcomes.append(layer_bits(dense_target).copy())
                dense_target.layer.set_weights(golden)
            np.testing.assert_array_equal(outcomes[0], outcomes[1])


class TestRowHammer:
    def test_burst_is_clustered_and_high_bit(self, dense_target, rng):
        model = RowHammerBurst(row_words=8, hit_probability=1.0)
        before = layer_bits(dense_target).copy()
        report = model.inject(dense_target, rng)
        after = layer_bits(dense_target)
        assert report.flipped_bits >= 8  # every word in the window was hit
        touched = np.flatnonzero(before != after)
        assert int(touched.max() - touched.min()) < 8
        np.testing.assert_array_equal(touched, np.sort(report.affected_indices))
        diffs = before[touched] ^ after[touched]
        assert int((diffs & np.uint32((1 << 23) - 1)).max()) == 0  # bits >= 23 only

    def test_parameter_validation(self):
        with pytest.raises(FaultInjectionError):
            RowHammerBurst(row_words=0)
        with pytest.raises(FaultInjectionError):
            RowHammerBurst(hit_probability=0.0)
        with pytest.raises(FaultInjectionError):
            RowHammerBurst(max_bits_per_word=0)


class TestStuckAt:
    def test_cells_recorrupt_after_repair(self, dense_target, rng):
        model = StuckAtCells(cells_per_event=2)
        golden = dense_target.layer.get_weights().copy()
        report = model.inject(dense_target, rng)
        assert report.flipped_bits == 2
        corrupted = layer_bits(dense_target).copy()
        # A bit-exact repair restores golden words...
        dense_target.layer.set_weights(golden)
        again = model.reassert(dense_target, rng)
        # ...and re-assertion forces the same cells back to their stuck value.
        assert again is not None and again.flipped_bits == 2
        np.testing.assert_array_equal(layer_bits(dense_target), corrupted)

    def test_reassert_is_idempotent_while_asserted(self, dense_target, rng):
        model = StuckAtCells()
        model.inject(dense_target, rng)
        still = model.reassert(dense_target, rng)
        assert still is not None and still.flipped_bits == 0
        assert still.affected_weights == 0

    def test_revert_forgets_last_injection(self, dense_target, rng):
        model = StuckAtCells()
        model.inject(dense_target, rng)
        assert len(model.cells_for(dense_target)) == 1
        model.revert(dense_target)
        assert model.cells_for(dense_target) == ()
        assert model.reassert(dense_target, rng) is None


class TestECCEscape:
    def test_pattern_miscorrects_under_secded(self, rng):
        codec = SECDEDCodec()
        for _ in range(20):
            injected, target_bit = secded_escape_pattern(rng)
            assert injected.size == 3 and target_bit not in injected
            word = np.asarray([0x3F80_1234], dtype=np.uint32)
            check = codec.encode_words(word)
            mask = np.uint32(0)
            for bit in injected:
                mask ^= np.uint32(1) << np.uint32(bit)
            decoded, statuses = codec.decode_words(word ^ mask, check)
            # SECDED claims it corrected a single-bit error...
            assert statuses[0] is SECDEDWordStatus.CORRECTED
            # ...but actually flipped a 4th bit on top of the 3 injected ones.
            expected = word ^ mask ^ (np.uint32(1) << np.uint32(target_bit))
            np.testing.assert_array_equal(decoded, expected)

    def test_pattern_touches_high_bits_by_default(self, rng):
        for _ in range(50):
            injected, target_bit = secded_escape_pattern(rng)
            assert np.any(injected >= 23) or target_bit >= 23

    def test_inject_flips_four_bits_per_word(self, dense_target, rng):
        model = ECCEscapeTriple(words_per_event=2)
        before = layer_bits(dense_target).copy()
        report = model.inject(dense_target, rng)
        after = layer_bits(dense_target)
        assert report.flipped_bits == 8 and report.affected_weights == 2
        for index in report.affected_indices:
            assert bin(int(before[index] ^ after[index])).count("1") == 4


class TestAdversarial:
    def test_flips_high_exponent_of_largest_weights(self, dense_target, rng):
        model = AdversarialTargeted(flips=2, candidate_pool=4)
        flat = np.abs(dense_target.layer.get_weights().ravel())
        top4 = set(np.argsort(flat)[-4:].tolist())
        before = layer_bits(dense_target).copy()
        report = model.inject(dense_target, rng)
        after = layer_bits(dense_target)
        assert report.flipped_bits == 2
        assert set(int(i) for i in report.affected_indices) <= top4
        for index in report.affected_indices:
            assert int(before[index] ^ after[index]) == 1 << 30


class TestActivationScratch:
    def test_corrupts_canary_border_and_predict_heals(self, padded_conv_model, rng):
        model = ActivationScratchCorruption(flips=2, batch_size=3)
        plan = padded_conv_model.compile_plan(3)
        assert plan.scratch_guards  # same padding pins pad buffers
        report = model.inject(FaultTarget(padded_conv_model), rng)
        assert report.flipped_bits == 2
        assert any(not guard.is_clean() for guard in plan.scratch_guards)
        before = padded_conv_model.plan_stats.scratch_detections
        batch = np.random.default_rng(0).random((3, 6, 6, 2)).astype(np.float32)
        padded_conv_model.predict(batch)
        assert padded_conv_model.plan_stats.scratch_detections > before
        assert all(guard.is_clean() for guard in plan.scratch_guards)

    def test_valid_padding_network_has_no_targets(self, tiny_conv_model, rng):
        model = ActivationScratchCorruption(batch_size=2)
        report = model.inject(FaultTarget(tiny_conv_model), rng)
        assert report.flipped_bits == 0
