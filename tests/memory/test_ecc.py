"""Tests for the (39,32) SECDED codec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ECCError
from repro.memory.bitops import bits_to_floats, floats_to_bits
from repro.memory.ecc import (
    CHECK_BITS_PER_WORD,
    SECDEDCodec,
    SECDEDProtectedWeights,
    SECDEDWordStatus,
)


@pytest.fixture
def codec():
    return SECDEDCodec()


@pytest.fixture
def words():
    return np.random.default_rng(0).integers(0, 2**32, size=200, dtype=np.uint64).astype(np.uint32)


class TestEncode:
    def test_check_byte_shape(self, codec, words):
        assert codec.encode_words(words).shape == words.shape

    def test_check_bits_constant(self, codec):
        assert codec.check_bits_per_word == 7
        assert CHECK_BITS_PER_WORD == 7

    def test_overhead_bytes(self, codec):
        assert codec.overhead_bytes_per_word == pytest.approx(7 / 8)

    def test_encode_floats_matches_words(self, codec):
        values = np.random.default_rng(1).standard_normal(50).astype(np.float32)
        np.testing.assert_array_equal(
            codec.encode_floats(values), codec.encode_words(floats_to_bits(values))
        )

    def test_deterministic(self, codec, words):
        np.testing.assert_array_equal(codec.encode_words(words), codec.encode_words(words))


class TestDecode:
    def test_clean_words_pass(self, codec, words):
        check = codec.encode_words(words)
        decoded, statuses = codec.decode_words(words, check)
        np.testing.assert_array_equal(decoded, words)
        assert all(status is SECDEDWordStatus.CLEAN for status in statuses)

    @pytest.mark.parametrize("bit", [0, 1, 7, 15, 23, 31])
    def test_corrects_any_single_data_bit(self, codec, words, bit):
        check = codec.encode_words(words)
        corrupted = words.copy()
        corrupted[5] ^= np.uint32(1) << np.uint32(bit)
        decoded, statuses = codec.decode_words(corrupted, check)
        np.testing.assert_array_equal(decoded, words)
        assert statuses[5] is SECDEDWordStatus.CORRECTED

    def test_corrects_every_bit_position_exhaustively(self, codec):
        word = np.array([0xDEADBEEF], dtype=np.uint32)
        check = codec.encode_words(word)
        for bit in range(32):
            corrupted = word ^ (np.uint32(1) << np.uint32(bit))
            decoded, statuses = codec.decode_words(corrupted, check)
            assert decoded[0] == word[0], f"failed to correct bit {bit}"
            assert statuses[0] is SECDEDWordStatus.CORRECTED

    def test_detects_double_bit_error(self, codec, words):
        check = codec.encode_words(words)
        corrupted = words.copy()
        corrupted[3] ^= np.uint32((1 << 4) | (1 << 20))
        decoded, statuses = codec.decode_words(corrupted, check)
        assert statuses[3] is SECDEDWordStatus.DETECTED_UNCORRECTABLE
        # Uncorrectable words are returned unmodified (no mis-correction).
        assert decoded[3] == corrupted[3]

    def test_check_bit_error_leaves_data_intact(self, codec, words):
        check = codec.encode_words(words)
        corrupted_check = check.copy()
        corrupted_check[7] ^= 1  # flip one Hamming parity bit
        decoded, statuses = codec.decode_words(words, corrupted_check)
        np.testing.assert_array_equal(decoded, words)
        assert statuses[7] in (
            SECDEDWordStatus.PARITY_BIT_ERROR,
            SECDEDWordStatus.CORRECTED,
        )

    def test_overall_parity_bit_error(self, codec, words):
        check = codec.encode_words(words)
        corrupted_check = check.copy()
        corrupted_check[2] ^= 1 << 6  # the overall parity bit
        decoded, statuses = codec.decode_words(words, corrupted_check)
        np.testing.assert_array_equal(decoded, words)
        assert statuses[2] is SECDEDWordStatus.PARITY_BIT_ERROR

    def test_length_mismatch(self, codec, words):
        with pytest.raises(ECCError):
            codec.decode_words(words, np.zeros(3, dtype=np.uint8))

    def test_decode_floats_roundtrip(self, codec):
        values = np.random.default_rng(2).standard_normal((5, 4)).astype(np.float32)
        check = codec.encode_floats(values)
        corrupted = values.copy()
        bits = floats_to_bits(corrupted).ravel()
        bits[6] ^= np.uint32(1) << np.uint32(13)
        corrupted = bits_to_floats(bits).reshape(values.shape)
        decoded, _ = codec.decode_floats(corrupted, check)
        np.testing.assert_array_equal(decoded, values)


class TestSECDEDProtectedWeights:
    def test_read_raw_matches_original(self):
        weights = np.random.default_rng(0).standard_normal(100).astype(np.float32)
        protected = SECDEDProtectedWeights(weights)
        np.testing.assert_array_equal(protected.read_raw(), weights)

    def test_overhead_bytes(self):
        protected = SECDEDProtectedWeights(np.zeros(64, dtype=np.float32))
        assert protected.overhead_bytes == pytest.approx(64 * 7 / 8)

    def test_scrub_clean(self):
        weights = np.random.default_rng(0).standard_normal(100).astype(np.float32)
        protected = SECDEDProtectedWeights(weights)
        corrected, report = protected.scrub()
        np.testing.assert_array_equal(corrected, weights)
        assert report.clean_words == 100

    def test_single_bit_errors_all_corrected(self):
        weights = np.random.default_rng(1).standard_normal(2000).astype(np.float32)
        protected = SECDEDProtectedWeights(weights)
        flips = protected.inject_codeword_bit_flips(1e-4, np.random.default_rng(2))
        corrected, report = protected.scrub()
        assert flips > 0
        # At this rate double-bit-per-word errors are very unlikely, so the
        # scrub should restore the original weights exactly.
        if report.uncorrectable_words == 0:
            np.testing.assert_array_equal(corrected, weights)

    def test_high_rate_leaves_uncorrectable_words(self):
        weights = np.random.default_rng(1).standard_normal(2000).astype(np.float32)
        protected = SECDEDProtectedWeights(weights)
        protected.inject_codeword_bit_flips(0.05, np.random.default_rng(3))
        _, report = protected.scrub()
        assert report.uncorrectable_words > 0

    def test_invalid_rate(self):
        protected = SECDEDProtectedWeights(np.zeros(4, dtype=np.float32))
        with pytest.raises(ECCError):
            protected.inject_codeword_bit_flips(2.0, np.random.default_rng(0))

    def test_shape_preserved(self):
        weights = np.zeros((3, 3, 2, 4), dtype=np.float32)
        protected = SECDEDProtectedWeights(weights)
        corrected, _ = protected.scrub()
        assert corrected.shape == weights.shape
