"""Tests for the two-dimensional CRC weight-localization scheme."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crc import TwoDimensionalCRC
from repro.exceptions import ShapeError


@pytest.fixture
def scheme():
    return TwoDimensionalCRC(group_size=4, crc_bits=8)


@pytest.fixture
def matrix():
    return np.random.default_rng(0).standard_normal((8, 12)).astype(np.float32)


@pytest.fixture
def kernel():
    return np.random.default_rng(1).standard_normal((3, 3, 8, 6)).astype(np.float32)


class TestConstruction:
    def test_invalid_group_size(self):
        with pytest.raises(ShapeError):
            TwoDimensionalCRC(group_size=0)

    def test_invalid_crc_bits(self):
        with pytest.raises(ShapeError):
            TwoDimensionalCRC(crc_bits=16)


class TestMatrixEncoding:
    def test_code_shapes(self, scheme, matrix):
        codes = scheme.encode_matrix(matrix)
        assert codes.row_codes.shape == (8, 3)
        assert codes.col_codes.shape == (2, 12)

    def test_rejects_non_2d(self, scheme):
        with pytest.raises(ShapeError):
            scheme.encode_matrix(np.zeros((2, 2, 2), dtype=np.float32))

    def test_storage_bytes(self, scheme, matrix):
        codes = scheme.encode_matrix(matrix)
        assert codes.storage_bytes == 8 * 3 + 2 * 12

    def test_crc32_storage_bytes(self, matrix):
        scheme32 = TwoDimensionalCRC(group_size=4, crc_bits=32)
        codes = scheme32.encode_matrix(matrix)
        assert codes.storage_bytes == (8 * 3 + 2 * 12) * 4

    def test_clean_matrix_has_no_suspects(self, scheme, matrix):
        codes = scheme.encode_matrix(matrix)
        result = scheme.localize_matrix(matrix, codes)
        assert result.suspect_count == 0
        assert not result.any_mismatch


class TestLocalization:
    def test_single_error_localized(self, scheme, matrix):
        codes = scheme.encode_matrix(matrix)
        corrupted = matrix.copy()
        corrupted[3, 7] += 1.0
        result = scheme.localize_matrix(corrupted, codes)
        assert result.suspect_mask[3, 7]
        # 2-D intersection of one row group and one column group: at most
        # group_size^2 candidates.
        assert result.suspect_count <= 16

    def test_error_never_missed(self, scheme, matrix):
        codes = scheme.encode_matrix(matrix)
        rng = np.random.default_rng(5)
        corrupted = matrix.copy()
        error_positions = [(1, 2), (6, 11), (0, 0)]
        for row, col in error_positions:
            corrupted[row, col] = rng.standard_normal()
        result = scheme.localize_matrix(corrupted, codes)
        for row, col in error_positions:
            assert result.suspect_mask[row, col]

    def test_false_positive_rate_is_bounded(self, scheme):
        # With a single corrupted weight, the suspects are confined to the
        # intersection of one row group and one column group.
        rng = np.random.default_rng(7)
        matrix = rng.standard_normal((16, 16)).astype(np.float32)
        codes = scheme.encode_matrix(matrix)
        corrupted = matrix.copy()
        corrupted[5, 9] *= -2.0
        result = scheme.localize_matrix(corrupted, codes)
        assert result.suspect_count <= scheme.group_size * scheme.group_size

    def test_mismatch_counters(self, scheme, matrix):
        codes = scheme.encode_matrix(matrix)
        corrupted = matrix.copy()
        corrupted[2, 3] += 1.0
        result = scheme.localize_matrix(corrupted, codes)
        assert result.mismatched_row_groups >= 1
        assert result.mismatched_col_groups >= 1


class TestKernelEncoding:
    def test_number_of_slices(self, scheme, kernel):
        codes = scheme.encode_kernel(kernel)
        assert len(codes) == 9

    def test_rejects_non_4d(self, scheme):
        with pytest.raises(ShapeError):
            scheme.encode_kernel(np.zeros((3, 3, 4), dtype=np.float32))

    def test_clean_kernel_no_suspects(self, scheme, kernel):
        codes = scheme.encode_kernel(kernel)
        mask = scheme.localize_kernel(kernel, codes)
        assert mask.shape == kernel.shape
        assert not mask.any()

    def test_corrupted_weights_flagged(self, scheme, kernel):
        codes = scheme.encode_kernel(kernel)
        corrupted = kernel.copy()
        corrupted[1, 2, 5, 3] += 2.0
        corrupted[0, 0, 0, 0] -= 1.0
        mask = scheme.localize_kernel(corrupted, codes)
        assert mask[1, 2, 5, 3]
        assert mask[0, 0, 0, 0]

    def test_wrong_code_count_rejected(self, scheme, kernel):
        codes = scheme.encode_kernel(kernel)
        with pytest.raises(ShapeError):
            scheme.localize_kernel(kernel, codes[:-1])

    def test_kernel_storage_bytes(self, scheme, kernel):
        codes = scheme.encode_kernel(kernel)
        assert scheme.kernel_storage_bytes(codes) == sum(code.storage_bytes for code in codes)


class TestBatchedScalarEquivalence:
    """The batched pipeline must be bit-identical to the scalar reference."""

    #: (rows, cols) shapes including ragged tails on either axis.
    MATRIX_SHAPES = ((8, 12), (7, 13), (1, 1), (5, 4), (4, 5), (9, 3), (3, 9))

    @pytest.mark.parametrize("crc_bits", [8, 32])
    @pytest.mark.parametrize("group_size", [1, 3, 4, 5])
    def test_encode_matrix_matches_scalar(self, crc_bits, group_size):
        scheme = TwoDimensionalCRC(group_size=group_size, crc_bits=crc_bits)
        rng = np.random.default_rng(crc_bits * 10 + group_size)
        for shape in self.MATRIX_SHAPES:
            matrix = rng.standard_normal(shape).astype(np.float32)
            fast = scheme.encode_matrix(matrix)
            slow = scheme.encode_matrix_scalar(matrix)
            assert np.array_equal(fast.row_codes, slow.row_codes), shape
            assert np.array_equal(fast.col_codes, slow.col_codes), shape

    @pytest.mark.parametrize("crc_bits", [8, 32])
    def test_encode_kernel_matches_scalar(self, crc_bits):
        scheme = TwoDimensionalCRC(group_size=4, crc_bits=crc_bits)
        kernel = np.random.default_rng(2).standard_normal((3, 2, 7, 9)).astype(np.float32)
        fast = scheme.encode_kernel(kernel)
        slow = scheme.encode_kernel_scalar(kernel)
        assert len(fast) == len(slow)
        for fast_code, slow_code in zip(fast, slow):
            assert np.array_equal(fast_code.row_codes, slow_code.row_codes)
            assert np.array_equal(fast_code.col_codes, slow_code.col_codes)

    @pytest.mark.parametrize("crc_bits", [8, 32])
    def test_localize_kernel_matches_scalar(self, crc_bits):
        scheme = TwoDimensionalCRC(group_size=4, crc_bits=crc_bits)
        rng = np.random.default_rng(3)
        kernel = rng.standard_normal((2, 3, 6, 11)).astype(np.float32)
        codes = scheme.encode_kernel(kernel)
        corrupted = kernel.copy()
        corrupted[0, 0, 0, 0] += 1.0
        corrupted[1, 2, 5, 10] -= 2.0
        corrupted[0, 1, 3, 7] *= -1.0
        fast_mask = scheme.localize_kernel(corrupted, codes)
        slow_mask = scheme.localize_kernel_scalar(corrupted, codes)
        assert np.array_equal(fast_mask, slow_mask)
        assert fast_mask[0, 0, 0, 0] and fast_mask[1, 2, 5, 10] and fast_mask[0, 1, 3, 7]
