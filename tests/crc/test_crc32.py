"""Tests for the CRC primitives."""

from __future__ import annotations

import zlib

import numpy as np

import pytest

from repro.crc import crc32_bytes, crc32_groups, crc32_words, crc8_bytes, crc8_groups


class TestCRC32:
    def test_matches_zlib(self):
        for payload in (b"", b"a", b"123456789", b"hello world" * 10):
            assert crc32_bytes(payload) == zlib.crc32(payload)

    def test_check_value(self):
        # The CRC-32/IEEE check value for "123456789".
        assert crc32_bytes(b"123456789") == 0xCBF43926

    def test_accepts_numpy_arrays(self):
        data = np.arange(16, dtype=np.uint8)
        assert crc32_bytes(data) == zlib.crc32(data.tobytes())

    def test_different_data_differs(self):
        assert crc32_bytes(b"abc") != crc32_bytes(b"abd")

    def test_crc32_words_sensitive_to_any_float(self):
        values = np.random.default_rng(0).standard_normal(10).astype(np.float32)
        original = crc32_words(values)
        modified = values.copy()
        modified[7] += np.float32(1e-6)
        assert crc32_words(modified) != original

    def test_crc32_words_deterministic(self):
        values = np.random.default_rng(1).standard_normal(5).astype(np.float32)
        assert crc32_words(values) == crc32_words(values.copy())


class TestCRC8:
    def test_known_value(self):
        # CRC-8 (poly 0x07, init 0) check value for "123456789" is 0xF4.
        assert crc8_bytes(b"123456789") == 0xF4

    def test_empty(self):
        assert crc8_bytes(b"") == 0

    def test_range(self):
        for payload in (b"a", b"xyz", bytes(range(50))):
            assert 0 <= crc8_bytes(payload) <= 0xFF

    def test_sensitivity(self):
        assert crc8_bytes(b"\x00\x01") != crc8_bytes(b"\x00\x02")

    def test_accepts_numpy_arrays(self):
        data = np.arange(8, dtype=np.uint8)
        assert crc8_bytes(data) == crc8_bytes(data.tobytes())


class TestBatchedGroups:
    """The batched group CRCs must be bit-identical to the scalar reference."""

    #: Group lengths covering empty groups, single bytes, weight-group sizes
    #: (4 floats = 16 bytes) and ragged tails.
    LENGTHS = (0, 1, 3, 4, 12, 15, 16, 17)

    @pytest.mark.parametrize("length", LENGTHS)
    def test_crc8_groups_match_scalar(self, length):
        rng = np.random.default_rng(length)
        block = rng.integers(0, 256, size=(37, length), dtype=np.uint8)
        batched = crc8_groups(block)
        assert batched.dtype == np.uint8
        assert batched.shape == (37,)
        for row in range(block.shape[0]):
            assert int(batched[row]) == crc8_bytes(block[row].tobytes())

    @pytest.mark.parametrize("length", LENGTHS)
    def test_crc32_groups_match_scalar_and_zlib(self, length):
        rng = np.random.default_rng(100 + length)
        block = rng.integers(0, 256, size=(23, length), dtype=np.uint8)
        batched = crc32_groups(block)
        assert batched.dtype == np.uint32
        for row in range(block.shape[0]):
            payload = block[row].tobytes()
            assert int(batched[row]) == crc32_bytes(payload) == zlib.crc32(payload)

    def test_empty_block(self):
        assert crc8_groups(np.zeros((0, 5), dtype=np.uint8)).shape == (0,)
        assert crc32_groups(np.zeros((0, 5), dtype=np.uint8)).shape == (0,)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            crc8_groups(np.zeros(8, dtype=np.uint8))
        with pytest.raises(ValueError):
            crc32_groups(np.zeros((2, 2, 2), dtype=np.uint8))

    @pytest.mark.parametrize("length", (0, 1, 2, 7, 63, 64, 65, 1000))
    def test_crc32_bytes_matches_zlib_on_random_strings(self, length):
        payload = np.random.default_rng(length).integers(
            0, 256, size=length, dtype=np.uint8
        ).tobytes()
        assert crc32_bytes(payload) == zlib.crc32(payload)
