"""Tests for the CRC primitives."""

from __future__ import annotations

import zlib

import numpy as np

from repro.crc import crc32_bytes, crc32_words, crc8_bytes


class TestCRC32:
    def test_matches_zlib(self):
        for payload in (b"", b"a", b"123456789", b"hello world" * 10):
            assert crc32_bytes(payload) == zlib.crc32(payload)

    def test_check_value(self):
        # The CRC-32/IEEE check value for "123456789".
        assert crc32_bytes(b"123456789") == 0xCBF43926

    def test_accepts_numpy_arrays(self):
        data = np.arange(16, dtype=np.uint8)
        assert crc32_bytes(data) == zlib.crc32(data.tobytes())

    def test_different_data_differs(self):
        assert crc32_bytes(b"abc") != crc32_bytes(b"abd")

    def test_crc32_words_sensitive_to_any_float(self):
        values = np.random.default_rng(0).standard_normal(10).astype(np.float32)
        original = crc32_words(values)
        modified = values.copy()
        modified[7] += np.float32(1e-6)
        assert crc32_words(modified) != original

    def test_crc32_words_deterministic(self):
        values = np.random.default_rng(1).standard_normal(5).astype(np.float32)
        assert crc32_words(values) == crc32_words(values.copy())


class TestCRC8:
    def test_known_value(self):
        # CRC-8 (poly 0x07, init 0) check value for "123456789" is 0xF4.
        assert crc8_bytes(b"123456789") == 0xF4

    def test_empty(self):
        assert crc8_bytes(b"") == 0

    def test_range(self):
        for payload in (b"a", b"xyz", bytes(range(50))):
            assert 0 <= crc8_bytes(payload) <= 0xFF

    def test_sensitivity(self):
        assert crc8_bytes(b"\x00\x01") != crc8_bytes(b"\x00\x02")

    def test_accepts_numpy_arrays(self):
        data = np.arange(8, dtype=np.uint8)
        assert crc8_bytes(data) == crc8_bytes(data.tobytes())
