"""Tests for the MILR error-detection phase."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MILRConfig, MILRProtector
from repro.core.handlers import handler_for
from repro.crc.twod import TwoDimensionalCRC
from repro.memory import inject_whole_weight
from repro.memory.bitops import flip_bits


class TestCleanDetection:
    def test_clean_model_reports_no_errors(self, protected_conv):
        _, protector = protected_conv
        report = protector.detect()
        assert not report.any_errors
        assert report.erroneous_layers == []

    def test_one_result_per_parameterized_layer(self, protected_conv):
        model, protector = protected_conv
        report = protector.detect()
        parameterized = [layer for layer in model.layers if layer.has_parameters]
        assert len(report.results) == len(parameterized)

    def test_detection_is_repeatable(self, protected_conv):
        _, protector = protected_conv
        first = protector.detect()
        second = protector.detect()
        assert first.erroneous_layers == second.erroneous_layers

    def test_result_for_unknown_index(self, protected_conv):
        _, protector = protected_conv
        report = protector.detect()
        with pytest.raises(KeyError):
            report.result_for(999)

    def test_result_for_sees_results_appended_after_lookup(self, protected_conv):
        # The O(1) index map must be rebuilt when results are appended after
        # a lookup has already primed it.
        from repro.core.detection import LayerDetectionResult

        _, protector = protected_conv
        report = protector.detect()
        first_index = report.results[0].index
        assert report.result_for(first_index) is report.results[0]
        extra = LayerDetectionResult(index=999, name="extra", kind="dense", erroneous=False)
        report.results.append(extra)
        assert report.result_for(999) is extra

    def test_result_for_sees_in_place_replacement(self, protected_conv):
        # Replacing an entry keeps the list length constant; the index map
        # must still be invalidated (identity-based, not length-based).
        from repro.core.detection import LayerDetectionResult

        _, protector = protected_conv
        report = protector.detect()
        first_index = report.results[0].index
        assert report.result_for(first_index) is report.results[0]
        replacement = LayerDetectionResult(
            index=first_index, name="replaced", kind="dense", erroneous=True
        )
        report.results[0] = replacement
        assert report.result_for(first_index) is replacement


class TestDetectionCaches:
    def test_detection_inputs_not_redrawn_on_second_pass(self, protected_conv, monkeypatch):
        _, protector = protected_conv
        engine = protector.detection_engine
        calls = []
        original_uniform = engine._prng.uniform

        def counting_uniform(*args, **kwargs):
            calls.append(args)
            return original_uniform(*args, **kwargs)

        monkeypatch.setattr(engine._prng, "uniform", counting_uniform)
        first = protector.detect()
        drawn_during_first = len(calls)
        second = protector.detect()
        assert len(calls) == drawn_during_first, "second pass re-drew detection inputs"
        assert first.erroneous_layers == second.erroneous_layers
        assert [r.index for r in first.results] == [r.index for r in second.results]
        assert [r.max_relative_deviation for r in first.results] == [
            r.max_relative_deviation for r in second.results
        ]

    def test_localization_not_reencoded_for_unchanged_weights(
        self, partial_conv_model, monkeypatch
    ):
        protector = MILRProtector(partial_conv_model, MILRConfig(master_seed=3))
        protector.initialize()
        layer = partial_conv_model.get_layer("c1")
        corrupted = layer.get_weights()
        corrupted[1, 1, 2, 1] += 1.0
        layer.set_weights(corrupted)
        calls = []
        original_localize = TwoDimensionalCRC.localize_kernel

        def counting_localize(self, *args, **kwargs):
            calls.append(args)
            return original_localize(self, *args, **kwargs)

        monkeypatch.setattr(TwoDimensionalCRC, "localize_kernel", counting_localize)
        first = protector.detect()
        assert len(calls) == 1
        second = protector.detect()
        assert len(calls) == 1, "second pass re-encoded unchanged corrupted weights"
        assert np.array_equal(first.result_for(0).suspect_mask, second.result_for(0).suspect_mask)

    def test_localization_skipped_when_weights_match_golden(
        self, partial_conv_model, monkeypatch
    ):
        # A layer flagged erroneous whose weights are bit-identical to the
        # encode-time weights cannot have CRC mismatches: the engine returns
        # the all-clear mask without recomputing a single CRC.
        protector = MILRProtector(partial_conv_model, MILRConfig(master_seed=3))
        protector.initialize()
        engine = protector.detection_engine

        def failing_localize(*args, **kwargs):
            raise AssertionError("localize_kernel should not run for golden weights")

        monkeypatch.setattr(TwoDimensionalCRC, "localize_kernel", failing_localize)
        layer = partial_conv_model.get_layer("c1")
        plan = protector.plan.plan_for(0)
        mask = engine._localize(0, layer, plan, handler_for(layer, 0))
        assert mask.shape == layer.get_weights().shape
        assert not mask.any()

    def test_localization_recomputed_after_weights_change_again(self, partial_conv_model):
        protector = MILRProtector(partial_conv_model, MILRConfig(master_seed=3))
        protector.initialize()
        layer = partial_conv_model.get_layer("c1")
        original = layer.get_weights()
        first_corrupted = original.copy()
        first_corrupted[1, 1, 2, 1] += 1.0
        layer.set_weights(first_corrupted)
        first = protector.detect()
        assert first.result_for(0).suspect_mask[1, 1, 2, 1]
        second_corrupted = original.copy()
        second_corrupted[0, 0, 1, 3] += 1.0
        layer.set_weights(second_corrupted)
        second = protector.detect()
        assert second.result_for(0).suspect_mask[0, 0, 1, 3]
        assert not second.result_for(0).suspect_mask[1, 1, 2, 1]


class TestCorruptedDetection:
    def test_single_msb_flip_detected_in_conv(self, protected_conv, rng):
        model, protector = protected_conv
        layer = model.get_layer("c1")
        weights = layer.get_weights()
        corrupted = flip_bits(weights, np.array([0]), np.array([30]))  # exponent bit
        layer.set_weights(corrupted)
        report = protector.detect()
        assert model.layer_index("c1") in report.erroneous_layers

    def test_whole_weight_errors_detected_in_dense(self, protected_conv, rng):
        model, protector = protected_conv
        layer = model.get_layer("d1")
        corrupted, _ = inject_whole_weight(layer.get_weights(), 0.05, rng)
        layer.set_weights(corrupted)
        report = protector.detect()
        assert model.layer_index("d1") in report.erroneous_layers

    def test_bias_error_detected_via_sum(self, protected_conv):
        model, protector = protected_conv
        layer = model.get_layer("cb1")
        weights = layer.get_weights()
        weights[2] += np.float32(0.5)
        layer.set_weights(weights)
        report = protector.detect()
        assert model.layer_index("cb1") in report.erroneous_layers

    def test_only_corrupted_layer_flagged(self, protected_conv, rng):
        model, protector = protected_conv
        layer = model.get_layer("c1")
        corrupted, _ = inject_whole_weight(layer.get_weights(), 0.1, rng)
        layer.set_weights(corrupted)
        report = protector.detect()
        assert report.erroneous_layers == [model.layer_index("c1")]

    def test_tiny_lsb_flip_may_be_missed(self, protected_conv):
        # The paper's detection is lightweight: errors must have a meaningful
        # impact on the layer output.  Flipping the least significant mantissa
        # bit produces a deviation far below the detection tolerance.
        model, protector = protected_conv
        layer = model.get_layer("c1")
        weights = layer.get_weights()
        corrupted = flip_bits(weights, np.array([0]), np.array([0]))
        layer.set_weights(corrupted)
        report = protector.detect()
        result = report.result_for(model.layer_index("c1"))
        assert result.max_relative_deviation < 1e-3

    def test_detection_max_relative_deviation_reported(self, protected_conv, rng):
        model, protector = protected_conv
        layer = model.get_layer("c1")
        corrupted, _ = inject_whole_weight(layer.get_weights(), 0.2, rng)
        layer.set_weights(corrupted)
        report = protector.detect()
        result = report.result_for(model.layer_index("c1"))
        assert result.erroneous
        assert result.max_relative_deviation > 1e-3


class TestPartialConvLocalization:
    def test_suspect_mask_produced_for_partial_layers(self, partial_conv_model, rng):
        protector = MILRProtector(partial_conv_model, MILRConfig(master_seed=3))
        protector.initialize()
        layer = partial_conv_model.get_layer("c1")
        original = layer.get_weights()
        corrupted = original.copy()
        corrupted[1, 1, 2, 1] += 1.0
        layer.set_weights(corrupted)
        report = protector.detect()
        result = report.result_for(0)
        assert result.erroneous
        assert result.suspect_mask is not None
        assert result.suspect_mask[1, 1, 2, 1]
        assert result.suspect_count >= 1

    def test_full_conv_has_no_suspect_mask(self, protected_conv, rng):
        model, protector = protected_conv
        layer = model.get_layer("c1")
        corrupted, _ = inject_whole_weight(layer.get_weights(), 0.1, rng)
        layer.set_weights(corrupted)
        report = protector.detect()
        result = report.result_for(model.layer_index("c1"))
        assert result.suspect_mask is None
