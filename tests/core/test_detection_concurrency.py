"""Thread-safety of the detection engine's memo caches.

A background scrubber runs ``detect()`` concurrently with inference and with
fault injection mutating the weights.  The engine's PRNG-input and CRC
localization caches must stay coherent under that interleaving.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import MILRConfig, MILRProtector
from repro.exceptions import DetectionError
from repro.nn import Bias, Conv2D, Sequential


@pytest.fixture
def partial_protected():
    """A conv layer forced onto the CRC partial-recoverability path."""
    model = Sequential(
        [Conv2D(4, 3, padding="valid", seed=5, name="c1"), Bias(name="b1", seed=6)],
        name="partial_conv",
    )
    model.build((6, 6, 8))
    protector = MILRProtector(model, MILRConfig(master_seed=11))
    protector.initialize()
    return model, protector


class TestDetectLayerSubsets:
    def test_subset_detection(self, partial_protected):
        model, protector = partial_protected
        report = protector.detect(layer_indices=[0])
        assert [result.index for result in report.results] == [0]

    def test_unknown_subset_index_rejected(self, partial_protected):
        _, protector = partial_protected
        with pytest.raises(DetectionError):
            protector.detect(layer_indices=[99])
        with pytest.raises(DetectionError):
            # Parameter-free layers are not detection targets either.
            protector.detect(layer_indices=[0, 1, 2])


class TestConcurrentDetection:
    def test_detect_hammered_from_two_threads_during_weight_mutation(
        self, partial_protected
    ):
        """Two scrubber threads + one fault-injection thread, no torn state."""
        model, protector = partial_protected
        layer = model.layers[0]
        golden = layer.get_weights()
        corrupted_bits = golden.view(np.uint32).ravel().copy()
        corrupted_bits[7] ^= np.uint32(1 << 30)
        corrupted = corrupted_bits.view(np.float32).reshape(golden.shape)

        stop = threading.Event()
        errors: list[BaseException] = []

        def hammer() -> None:
            try:
                while not stop.is_set():
                    report = protector.detect()
                    for result in report.results:
                        assert isinstance(result.erroneous, bool)
                        if result.suspect_mask is not None:
                            # The mask must always match the layer shape --
                            # a torn cache would hand back garbage here.
                            assert result.suspect_mask.shape == golden.shape
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def mutate() -> None:
            try:
                for iteration in range(200):
                    layer.set_weights(corrupted if iteration % 2 == 0 else golden)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        workers = [threading.Thread(target=hammer) for _ in range(2)]
        mutator = threading.Thread(target=mutate)
        for thread in workers:
            thread.start()
        mutator.start()
        mutator.join(timeout=30.0)
        stop.set()
        for thread in workers:
            thread.join(timeout=30.0)
        assert not errors
        # Caches stay usable and correct after the storm.
        layer.set_weights(golden)
        assert not protector.detect().any_errors
        layer.set_weights(corrupted)
        report = protector.detect()
        assert report.result_for(0).erroneous
        layer.set_weights(golden)
