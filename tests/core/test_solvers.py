"""Tests for the parameter-solving functions R(x, y) = p."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MILRConfig
from repro.core.initialization import build_checkpoint_store
from repro.core.planner import plan_model
from repro.core.solvers import (
    solve_bias_parameters,
    solve_conv_parameters_full,
    solve_conv_parameters_partial,
    solve_dense_parameters,
    solve_layer_parameters,
)
from repro.exceptions import RecoveryError
from repro.nn import Bias, Conv2D, Dense, Sequential
from repro.prng import SeededTensorGenerator


def _protected(model, seed: int = 29):
    config = MILRConfig(master_seed=seed)
    prng = SeededTensorGenerator(config.master_seed)
    plan = plan_model(model, config)
    store = build_checkpoint_store(model, plan, config, prng)
    return config, plan, store, prng


class TestDenseSolving:
    def test_recovers_exact_weights_with_dummy_rows(self):
        model = Sequential([Dense(6, seed=1, name="d")])
        model.build((10,))
        config, plan, store, prng = _protected(model)
        layer = model.get_layer("d")
        original = layer.get_weights()
        golden_x = prng.detection_input(model.input_shape, batch=1)
        golden_y = layer.forward(golden_x)
        # Corrupt, then solve from the golden pair.
        layer.set_weights(np.zeros_like(original))
        result = solve_dense_parameters(layer, plan.plan_for(0), golden_x, golden_y, store, prng)
        np.testing.assert_allclose(result.parameters, original, rtol=1e-3, atol=1e-4)
        assert result.fully_determined

    def test_enough_rows_without_dummies(self):
        model = Sequential([Dense(4, seed=2, name="d")])
        model.build((6,))
        config, plan, store, prng = _protected(model)
        layer = model.get_layer("d")
        original = layer.get_weights()
        x = np.random.default_rng(0).random((8, 6)).astype(np.float32)
        y = layer.forward(x)
        layer_plan = plan.plan_for(0)
        no_dummy_plan = type(layer_plan)(**{**layer_plan.__dict__, "dummy_input_rows": 0})
        result = solve_dense_parameters(layer, no_dummy_plan, x, y, store, prng)
        np.testing.assert_allclose(result.parameters, original, rtol=1e-3, atol=1e-4)

    def test_rejects_non_2d(self):
        model = Sequential([Dense(4, seed=2, name="d")])
        model.build((6,))
        config, plan, store, prng = _protected(model)
        with pytest.raises(RecoveryError):
            solve_dense_parameters(
                model.get_layer("d"),
                plan.plan_for(0),
                np.zeros((1, 2, 3), dtype=np.float32),
                np.zeros((1, 4), dtype=np.float32),
                store,
                prng,
            )


class TestBiasSolving:
    def test_recovers_exact_bias_conv_style(self):
        model = Sequential([Bias(seed=3, name="b")])
        model.build((5, 5, 4))
        layer = model.get_layer("b")
        original = layer.get_weights()
        x = np.random.default_rng(1).random((1, 5, 5, 4)).astype(np.float32)
        y = layer.forward(x)
        result = solve_bias_parameters(layer, x, y)
        np.testing.assert_allclose(result.parameters, original, rtol=1e-5, atol=1e-6)

    def test_recovers_exact_bias_dense_style(self):
        model = Sequential([Bias(seed=4, name="b")])
        model.build((8,))
        layer = model.get_layer("b")
        original = layer.get_weights()
        x = np.random.default_rng(2).random((3, 8)).astype(np.float32)
        y = layer.forward(x)
        result = solve_bias_parameters(layer, x, y)
        np.testing.assert_allclose(result.parameters, original, rtol=1e-5, atol=1e-6)


class TestConvSolvingFull:
    def test_recovers_exact_kernel(self):
        model = Sequential([Conv2D(5, 3, padding="valid", seed=5, name="c")])
        model.build((10, 10, 2))
        config, plan, store, prng = _protected(model)
        layer = model.get_layer("c")
        original = layer.get_weights()
        golden_x = prng.detection_input(model.input_shape, batch=1)
        golden_y = layer.forward(golden_x)
        layer.set_weights(np.zeros_like(original))
        result = solve_conv_parameters_full(
            layer, plan.plan_for(0), golden_x, golden_y, store, prng
        )
        np.testing.assert_allclose(result.parameters, original, rtol=1e-3, atol=1e-4)
        assert result.fully_determined

    def test_same_padding_kernel_recovered(self):
        model = Sequential([Conv2D(4, 3, padding="same", seed=6, name="c")])
        model.build((8, 8, 1))
        config, plan, store, prng = _protected(model)
        layer = model.get_layer("c")
        original = layer.get_weights()
        golden_x = prng.detection_input(model.input_shape, batch=1)
        golden_y = layer.forward(golden_x)
        result = solve_conv_parameters_full(
            layer, plan.plan_for(0), golden_x, golden_y, store, prng
        )
        np.testing.assert_allclose(result.parameters, original, rtol=1e-3, atol=1e-4)


class TestConvSolvingPartial:
    def _partial_setup(self):
        model = Sequential([Conv2D(4, 3, padding="valid", seed=7, name="c")])
        model.build((6, 6, 8))  # G^2 = 16 < F^2 Z = 72
        config, plan, store, prng = _protected(model)
        layer = model.get_layer("c")
        golden_x = prng.detection_input(model.input_shape, batch=1)
        golden_y = layer.forward(golden_x)
        return model, plan, store, prng, layer, golden_x, golden_y

    def test_recovers_few_erroneous_weights_exactly(self):
        model, plan, store, prng, layer, golden_x, golden_y = self._partial_setup()
        original = layer.get_weights()
        corrupted = original.copy()
        mask = np.zeros(original.shape, dtype=bool)
        # Corrupt 5 weights of filter 2 (fewer than G^2 = 16 equations).
        flat_positions = [(0, 0, 0, 2), (1, 1, 3, 2), (2, 2, 7, 2), (0, 2, 4, 2), (1, 0, 1, 2)]
        for position in flat_positions:
            corrupted[position] += 1.0
            mask[position] = True
        layer.set_weights(corrupted)
        result = solve_conv_parameters_partial(
            layer, plan.plan_for(0), golden_x, golden_y, mask
        )
        np.testing.assert_allclose(result.parameters, original, rtol=1e-3, atol=1e-4)
        assert result.fully_determined
        assert result.parameters_updated == 5

    def test_untouched_filters_left_alone(self):
        model, plan, store, prng, layer, golden_x, golden_y = self._partial_setup()
        original = layer.get_weights()
        corrupted = original.copy()
        mask = np.zeros(original.shape, dtype=bool)
        corrupted[1, 1, 1, 0] += 2.0
        mask[1, 1, 1, 0] = True
        layer.set_weights(corrupted)
        result = solve_conv_parameters_partial(
            layer, plan.plan_for(0), golden_x, golden_y, mask
        )
        # Filters 1-3 were never suspects: bitwise identical to the corrupted
        # (i.e. original) values.
        np.testing.assert_array_equal(result.parameters[..., 1:], original[..., 1:])

    def test_whole_layer_corruption_is_underdetermined(self):
        model, plan, store, prng, layer, golden_x, golden_y = self._partial_setup()
        original = layer.get_weights()
        layer.set_weights(np.random.default_rng(9).random(original.shape).astype(np.float32))
        mask = np.ones(original.shape, dtype=bool)
        result = solve_conv_parameters_partial(
            layer, plan.plan_for(0), golden_x, golden_y, mask
        )
        assert not result.fully_determined
        assert "least-squares" in result.notes

    def test_mask_shape_mismatch(self):
        model, plan, store, prng, layer, golden_x, golden_y = self._partial_setup()
        with pytest.raises(RecoveryError):
            solve_conv_parameters_partial(
                layer, plan.plan_for(0), golden_x, golden_y, np.zeros((2, 2), dtype=bool)
            )


class TestDispatch:
    def test_dispatch_dense(self):
        model = Sequential([Dense(6, seed=1, name="d")])
        model.build((10,))
        config, plan, store, prng = _protected(model)
        layer = model.get_layer("d")
        golden_x = prng.detection_input(model.input_shape, batch=1)
        golden_y = layer.forward(golden_x)
        result = solve_layer_parameters(layer, plan.plan_for(0), golden_x, golden_y, store, prng)
        np.testing.assert_allclose(result.parameters, layer.get_weights(), rtol=1e-3, atol=1e-4)

    def test_dispatch_partial_without_mask_defaults_to_all_suspect(self):
        model = Sequential([Conv2D(4, 3, padding="valid", seed=7, name="c")])
        model.build((6, 6, 8))
        config, plan, store, prng = _protected(model)
        layer = model.get_layer("c")
        golden_x = prng.detection_input(model.input_shape, batch=1)
        golden_y = layer.forward(golden_x)
        result = solve_layer_parameters(
            layer, plan.plan_for(0), golden_x, golden_y, store, prng, suspect_mask=None
        )
        assert not result.fully_determined

    def test_dispatch_parameter_free_layer_raises(self, tiny_conv_model):
        config, plan, store, prng = _protected(tiny_conv_model)
        relu_index = tiny_conv_model.layer_index("r1")
        with pytest.raises(RecoveryError):
            solve_layer_parameters(
                tiny_conv_model.layers[relu_index],
                plan.plan_for(relu_index),
                np.zeros((1, 8, 8, 6), dtype=np.float32),
                np.zeros((1, 8, 8, 6), dtype=np.float32),
                store,
                prng,
            )
