"""Planner behaviour on the paper-exact architectures (structure-level checks).

Planning does not build checkpoints, so these tests are cheap even for the
full Tables I-III networks.  They pin down the qualitative decisions the paper
describes for its evaluation networks: which convolutions fall back to partial
recoverability, where input checkpoints are placed, and that every pooling
layer is checkpointed.
"""

from __future__ import annotations

import pytest

from repro.core.planner import InversionStrategy, RecoveryStrategy, plan_model
from repro.nn.layers import Conv2D
from repro.nn.layers.pooling import _Pool2D
from repro.zoo import (
    build_cifar_large_network,
    build_cifar_small_network,
    build_mnist_network,
)


@pytest.fixture(scope="module")
def mnist_plan():
    model = build_mnist_network()
    return model, plan_model(model)


@pytest.fixture(scope="module")
def cifar_small_plan():
    model = build_cifar_small_network()
    return model, plan_model(model)


@pytest.fixture(scope="module")
def cifar_large_plan():
    model = build_cifar_large_network()
    return model, plan_model(model)


def _conv_plans(model, plan):
    return [
        (model.layers[p.index], p)
        for p in plan.layer_plans
        if isinstance(model.layers[p.index], Conv2D)
    ]


class TestMNISTPlan:
    def test_every_pooling_layer_checkpointed(self, mnist_plan):
        model, plan = mnist_plan
        for index, layer in enumerate(model.layers):
            if isinstance(layer, _Pool2D):
                assert index in plan.checkpoint_indices

    def test_all_convolutions_fully_recoverable(self, mnist_plan):
        # MNIST network: every conv has G^2 >= F^2 Z, so Table IV shows no
        # "partial recoverable" rows for the first conv and full recovery for
        # dense layers; the paper marks convs 1 and 2 partial because of its
        # cost threshold -- structurally both modes are exercised here.
        model, plan = mnist_plan
        for layer, conv_plan in _conv_plans(model, plan):
            if layer.output_positions >= layer.receptive_field_size:
                assert conv_plan.recovery_strategy is RecoveryStrategy.CONV_FULL

    def test_dense_layers_self_contained(self, mnist_plan):
        model, plan = mnist_plan
        dense_plans = [p for p in plan.layer_plans if p.kind == "Dense"]
        assert len(dense_plans) == 2
        for dense_plan in dense_plans:
            layer = model.layers[dense_plan.index]
            assert dense_plan.dummy_input_rows == layer.features_in

    def test_first_conv_is_invertible_without_checkpoint(self, mnist_plan):
        model, plan = mnist_plan
        first_conv_plan = _conv_plans(model, plan)[0][1]
        # 32 filters >= F^2 Z = 9: directly invertible.
        assert first_conv_plan.inversion_strategy is InversionStrategy.CONV
        assert first_conv_plan.dummy_filters == 0


class TestCIFARSmallPlan:
    def test_deep_convolutions_use_partial_recoverability(self, cifar_small_plan):
        # Paper Table VI: convs 1-6 (all but the first) are "partial
        # recoverable" -- their G^2 is below F^2 Z.
        model, plan = cifar_small_plan
        strategies = [p.recovery_strategy for _, p in _conv_plans(model, plan)]
        assert strategies[0] is RecoveryStrategy.CONV_FULL
        assert all(s is RecoveryStrategy.CONV_PARTIAL for s in strategies[2:])

    def test_partial_layers_store_crc_codes(self, cifar_small_plan):
        model, plan = cifar_small_plan
        for _, conv_plan in _conv_plans(model, plan):
            if conv_plan.recovery_strategy is RecoveryStrategy.CONV_PARTIAL:
                assert conv_plan.stores_crc_codes

    def test_three_pooling_checkpoints(self, cifar_small_plan):
        model, plan = cifar_small_plan
        pooling = [i for i, layer in enumerate(model.layers) if isinstance(layer, _Pool2D)]
        assert len(pooling) == 3
        assert set(pooling).issubset(set(plan.checkpoint_indices))


class TestCIFARLargePlan:
    def test_every_5x5_conv_beyond_the_first_is_partial(self, cifar_large_plan):
        # Paper Table VIII: all convolutions are "partial recoverable".
        model, plan = cifar_large_plan
        partial = [
            p.recovery_strategy is RecoveryStrategy.CONV_PARTIAL
            for layer, p in _conv_plans(model, plan)
            if layer.output_positions < layer.receptive_field_size
        ]
        assert partial and all(partial)

    def test_storage_relevant_counts_are_positive(self, cifar_large_plan):
        model, plan = cifar_large_plan
        total_extra = sum(p.extra_storage_bytes for p in plan.layer_plans)
        # The large network's MILR data is dominated by the dense head's
        # self-contained dummy outputs (about 6.3 MB) -- consistent with the
        # paper's Table IX ordering (MILR < backup copy).
        assert total_extra > 5_000_000
        assert total_extra < model.parameter_bytes() * 1.1

    def test_bias_layers_use_sum_detection(self, cifar_large_plan):
        _, plan = cifar_large_plan
        bias_plans = [p for p in plan.layer_plans if p.kind == "Bias"]
        assert bias_plans
        assert all(p.partial_checkpoint_values == 1 for p in bias_plans)
