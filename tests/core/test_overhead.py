"""Tests for storage-overhead accounting."""

from __future__ import annotations

import pytest

from repro.core.overhead import compare_storage_overheads, ecc_overhead_bytes


class TestECCOverhead:
    def test_seven_bits_per_word(self, tiny_conv_model):
        expected = tiny_conv_model.parameter_count() * 7 / 8
        assert ecc_overhead_bytes(tiny_conv_model) == pytest.approx(expected)


class TestStorageComparison:
    def test_comparison_fields(self, protected_conv):
        model, protector = protected_conv
        comparison = compare_storage_overheads(model, protector.store, "tiny")
        assert comparison.backup_weights_bytes == model.parameter_bytes()
        assert comparison.ecc_bytes == pytest.approx(ecc_overhead_bytes(model))
        assert comparison.milr_bytes == protector.storage_report().total_bytes
        assert comparison.ecc_and_milr_bytes == pytest.approx(
            comparison.ecc_bytes + comparison.milr_bytes
        )

    def test_as_row_units_are_megabytes(self, protected_conv):
        model, protector = protected_conv
        row = protector.storage_comparison("tiny").as_row()
        assert row["backup_weights_mb"] == pytest.approx(model.parameter_bytes() / 1e6)
        assert set(row) == {
            "network",
            "backup_weights_mb",
            "ecc_mb",
            "milr_mb",
            "ecc_and_milr_mb",
        }

    def test_saving_vs_backup(self, protected_conv):
        model, protector = protected_conv
        comparison = protector.storage_comparison()
        expected = 1.0 - comparison.milr_bytes / comparison.backup_weights_bytes
        assert comparison.milr_saving_vs_backup == pytest.approx(expected)

    def test_default_network_name_is_model_name(self, protected_conv):
        model, protector = protected_conv
        assert protector.storage_comparison().network == model.name
