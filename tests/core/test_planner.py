"""Tests for the MILR initialization planner."""

from __future__ import annotations

import pytest

from repro.core import MILRConfig
from repro.core.planner import InversionStrategy, RecoveryStrategy, plan_model
from repro.exceptions import LayerConfigurationError
from repro.nn import Bias, Conv2D, Dense, Sequential


class TestPlanGeneral:
    def test_requires_built_model(self):
        model = Sequential([Dense(4, seed=0)])
        with pytest.raises(LayerConfigurationError):
            plan_model(model)

    def test_one_plan_per_layer(self, tiny_conv_model):
        plan = plan_model(tiny_conv_model)
        assert len(plan.layer_plans) == len(tiny_conv_model.layers)

    def test_network_input_is_always_a_checkpoint(self, tiny_conv_model):
        plan = plan_model(tiny_conv_model)
        assert 0 in plan.checkpoint_indices

    def test_pooling_forces_input_checkpoint(self, tiny_conv_model):
        plan = plan_model(tiny_conv_model)
        pool_index = tiny_conv_model.layer_index("p1")
        assert pool_index in plan.checkpoint_indices
        assert plan.plan_for(pool_index).inversion_strategy is InversionStrategy.CHECKPOINT

    def test_parameterized_layers_listed(self, tiny_conv_model):
        plan = plan_model(tiny_conv_model)
        names = {plan_.name for plan_ in plan.parameterized_layers()}
        assert names == {"c1", "cb1", "d1", "db1"}

    def test_preceding_and_succeeding_checkpoints(self, tiny_conv_model):
        plan = plan_model(tiny_conv_model)
        layer_count = len(tiny_conv_model.layers)
        dense_index = tiny_conv_model.layer_index("d1")
        pool_index = tiny_conv_model.layer_index("p1")
        assert plan.preceding_checkpoint(dense_index) == pool_index
        assert plan.succeeding_checkpoint(dense_index, layer_count) == layer_count
        assert plan.preceding_checkpoint(0) == 0
        assert plan.succeeding_checkpoint(0, layer_count) == pool_index


class TestDensePlanning:
    def test_dense_strategies(self, tiny_dense_model):
        plan = plan_model(tiny_dense_model)
        dense_plan = plan.plan_for(0)
        assert dense_plan.recovery_strategy is RecoveryStrategy.DENSE_FULL
        assert dense_plan.inversion_strategy is InversionStrategy.DENSE

    def test_expanding_dense_needs_no_dummy_columns(self, tiny_dense_model):
        # d1: 12 -> 16 so P >= N and inversion needs no dummy columns.
        plan = plan_model(tiny_dense_model)
        assert plan.plan_for(0).dummy_parameter_columns == 0

    def test_contracting_dense_needs_dummy_columns(self, tiny_dense_model):
        # d2: 16 -> 8 so 8 dummy columns are needed for inversion.
        plan = plan_model(tiny_dense_model)
        d2_plan = plan.plan_for(tiny_dense_model.layer_index("d2"))
        assert d2_plan.dummy_parameter_columns == 8

    def test_dense_solving_uses_self_contained_dummy_rows(self, tiny_dense_model):
        plan = plan_model(tiny_dense_model)
        # N = 12 dummy rows: a complete system independent of the golden pair.
        assert plan.plan_for(0).dummy_input_rows == 12

    def test_partial_checkpoint_size_is_output_width(self, tiny_dense_model):
        plan = plan_model(tiny_dense_model)
        assert plan.plan_for(0).partial_checkpoint_values == 16

    def test_dummy_output_accounting(self, tiny_dense_model):
        plan = plan_model(tiny_dense_model)
        d1_plan = plan.plan_for(0)
        # 12 dummy rows x 16 outputs (no dummy columns needed).
        assert d1_plan.dummy_output_values == 12 * 16
        assert d1_plan.extra_storage_bytes == (16 + 12 * 16) * 4


class TestConvPlanning:
    def test_full_recovery_when_enough_positions(self, tiny_conv_model):
        plan = plan_model(tiny_conv_model)
        conv_plan = plan.plan_for(0)
        # c1: G^2 = 64, F^2 Z = 18 so a full solve is possible.
        assert conv_plan.recovery_strategy is RecoveryStrategy.CONV_FULL
        assert not conv_plan.stores_crc_codes

    def test_partial_recovery_when_underdetermined(self, partial_conv_model):
        plan = plan_model(partial_conv_model)
        conv_plan = plan.plan_for(0)
        assert conv_plan.recovery_strategy is RecoveryStrategy.CONV_PARTIAL
        assert conv_plan.stores_crc_codes

    def test_partial_recovery_can_be_disabled(self, partial_conv_model):
        config = MILRConfig(prefer_partial_conv_recovery=False)
        plan = plan_model(partial_conv_model, config)
        conv_plan = plan.plan_for(0)
        assert conv_plan.recovery_strategy is RecoveryStrategy.CONV_FULL
        assert conv_plan.dummy_output_values > 0

    def test_dummy_filters_for_inversion(self, tiny_conv_model):
        plan = plan_model(tiny_conv_model)
        conv_plan = plan.plan_for(0)
        # c1 has 6 filters but F^2 Z = 18, so inversion needs 12 dummy filters
        # (their outputs are 64 values each = 768, cheaper than the 200-value
        # input checkpoint? no -- the checkpoint is cheaper, so it is used).
        assert conv_plan.dummy_filters in (0, 12)
        if conv_plan.dummy_filters == 0:
            assert conv_plan.inversion_strategy is InversionStrategy.CHECKPOINT

    def test_invertible_conv_needs_nothing(self):
        model = Sequential([Conv2D(32, 3, padding="valid", seed=0, name="c")])
        model.build((8, 8, 2))
        plan = plan_model(model)
        conv_plan = plan.plan_for(0)
        # Y = 32 >= F^2 Z = 18: invertible without dummy filters.
        assert conv_plan.dummy_filters == 0
        assert conv_plan.inversion_strategy is InversionStrategy.CONV

    def test_partial_checkpoint_is_one_value_per_filter(self, tiny_conv_model):
        plan = plan_model(tiny_conv_model)
        assert plan.plan_for(0).partial_checkpoint_values == 6


class TestBiasAndOthersPlanning:
    def test_bias_plan(self, tiny_conv_model):
        plan = plan_model(tiny_conv_model)
        bias_plan = plan.plan_for(tiny_conv_model.layer_index("cb1"))
        assert bias_plan.recovery_strategy is RecoveryStrategy.BIAS_SUBTRACT
        assert bias_plan.partial_checkpoint_values == 1

    def test_bias_full_copy_detection_option(self, tiny_conv_model):
        plan = plan_model(tiny_conv_model, MILRConfig(bias_detection_uses_sum=False))
        bias_plan = plan.plan_for(tiny_conv_model.layer_index("cb1"))
        assert bias_plan.partial_checkpoint_values == 6

    def test_relu_is_identity(self, tiny_conv_model):
        plan = plan_model(tiny_conv_model)
        relu_plan = plan.plan_for(tiny_conv_model.layer_index("r1"))
        assert relu_plan.recovery_strategy is RecoveryStrategy.NONE
        assert relu_plan.inversion_strategy is InversionStrategy.IDENTITY

    def test_flatten_is_reshape(self, tiny_conv_model):
        plan = plan_model(tiny_conv_model)
        flatten_plan = plan.plan_for(tiny_conv_model.layer_index("f1"))
        assert flatten_plan.inversion_strategy is InversionStrategy.RESHAPE
        assert not flatten_plan.needs_input_checkpoint
