"""Tests for the checkpoint store and the initialization phase."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MILRConfig
from repro.core.checkpoint import CheckpointStore
from repro.core.initialization import build_checkpoint_store, partial_checkpoint_of
from repro.core.passes import linearized_collect, linearized_forward
from repro.core.planner import plan_model
from repro.exceptions import CheckpointError
from repro.prng import SeededTensorGenerator


@pytest.fixture
def config():
    return MILRConfig(master_seed=17)


@pytest.fixture
def prng(config):
    return SeededTensorGenerator(config.master_seed)


class TestCheckpointStoreAccessors:
    def test_missing_partial_checkpoint(self):
        store = CheckpointStore()
        with pytest.raises(CheckpointError):
            store.partial_checkpoint(0)

    def test_missing_input_checkpoint(self):
        store = CheckpointStore()
        with pytest.raises(CheckpointError):
            store.input_checkpoint(3)

    def test_missing_final_output(self):
        store = CheckpointStore()
        with pytest.raises(CheckpointError):
            store.require_final_output()

    def test_missing_dummy_outputs(self):
        store = CheckpointStore()
        with pytest.raises(CheckpointError):
            store.dummy_row_outputs(1)
        with pytest.raises(CheckpointError):
            store.dummy_column_outputs(1)
        with pytest.raises(CheckpointError):
            store.dummy_filter_outputs(1)
        with pytest.raises(CheckpointError):
            store.crc_codes_for(1)

    def test_storage_report_empty(self):
        report = CheckpointStore().storage_report(weights_bytes=100)
        assert report.weights_bytes == 100
        assert report.total_bytes == 8  # just the master seed


class TestLinearizedPasses:
    def test_linearized_forward_skips_activations(self, tiny_dense_model, prng):
        plan = plan_model(tiny_dense_model)
        x = prng.uniform("test", (2, 12))
        linear = linearized_forward(tiny_dense_model, plan, x, 0, len(tiny_dense_model.layers))
        # Manual: dense, bias, (skip relu), dense, bias.
        manual = x
        for name in ("d1", "b1", "d2", "b2"):
            manual = tiny_dense_model.get_layer(name).forward(manual)
        np.testing.assert_allclose(linear, manual, rtol=1e-6)

    def test_linearized_collect_lengths(self, tiny_conv_model, prng):
        plan = plan_model(tiny_conv_model)
        x = prng.uniform("test", (1,) + tiny_conv_model.input_shape)
        activations = linearized_collect(tiny_conv_model, plan, x)
        assert len(activations) == len(tiny_conv_model.layers) + 1
        np.testing.assert_array_equal(activations[0], x)

    def test_collect_consistent_with_forward(self, tiny_conv_model, prng):
        plan = plan_model(tiny_conv_model)
        x = prng.uniform("test", (1,) + tiny_conv_model.input_shape)
        activations = linearized_collect(tiny_conv_model, plan, x)
        via_forward = linearized_forward(
            tiny_conv_model, plan, x, 0, len(tiny_conv_model.layers)
        )
        np.testing.assert_allclose(activations[-1], via_forward, rtol=1e-6)


class TestBuildCheckpointStore:
    def test_partial_checkpoints_for_every_parameterized_layer(
        self, tiny_conv_model, config, prng
    ):
        plan = plan_model(tiny_conv_model, config)
        store = build_checkpoint_store(tiny_conv_model, plan, config, prng)
        expected = {p.index for p in plan.parameterized_layers()}
        assert set(store.partial_checkpoints) == expected

    def test_input_checkpoints_match_plan(self, tiny_conv_model, config, prng):
        plan = plan_model(tiny_conv_model, config)
        store = build_checkpoint_store(tiny_conv_model, plan, config, prng)
        expected = {index for index in plan.checkpoint_indices if index != 0}
        assert set(store.input_checkpoints) == expected

    def test_final_output_stored(self, tiny_conv_model, config, prng):
        plan = plan_model(tiny_conv_model, config)
        store = build_checkpoint_store(tiny_conv_model, plan, config, prng)
        assert store.final_output is not None
        assert store.final_output.shape == (1, 10)

    def test_dense_dummy_outputs_consistent_with_weights(self, tiny_dense_model, config, prng):
        plan = plan_model(tiny_dense_model, config)
        store = build_checkpoint_store(tiny_dense_model, plan, config, prng)
        d1 = tiny_dense_model.get_layer("d1")
        dummy_rows = prng.dummy_inputs("d1/solve-rows", (12, 12))
        expected = dummy_rows.astype(np.float64) @ d1.get_weights().astype(np.float64)
        np.testing.assert_allclose(store.dummy_row_outputs(0), expected, rtol=1e-5)

    def test_conv_partial_layer_stores_crc_codes(self, partial_conv_model, config, prng):
        plan = plan_model(partial_conv_model, config)
        store = build_checkpoint_store(partial_conv_model, plan, config, prng)
        codes = store.crc_codes_for(0)
        assert len(codes) == 9  # 3x3 filter positions

    def test_bias_partial_checkpoint_is_sum(self, tiny_conv_model, config, prng):
        plan = plan_model(tiny_conv_model, config)
        store = build_checkpoint_store(tiny_conv_model, plan, config, prng)
        bias_index = tiny_conv_model.layer_index("cb1")
        bias = tiny_conv_model.get_layer("cb1")
        assert store.partial_checkpoint(bias_index)[0] == pytest.approx(
            float(bias.get_weights().sum()), rel=1e-6
        )

    def test_storage_report_breakdown_keys(self, tiny_conv_model, config, prng):
        plan = plan_model(tiny_conv_model, config)
        store = build_checkpoint_store(tiny_conv_model, plan, config, prng)
        report = store.storage_report(weights_bytes=tiny_conv_model.parameter_bytes())
        for key in (
            "master_seed",
            "partial_checkpoints",
            "input_checkpoints",
            "final_output",
            "dense_dummy_row_outputs",
        ):
            assert key in report.breakdown
        assert report.total_bytes > 0

    def test_partial_checkpoint_of_rejects_parameter_free_layer(self, tiny_conv_model, prng):
        relu = tiny_conv_model.get_layer("r1")
        with pytest.raises(CheckpointError):
            partial_checkpoint_of(relu, 2, prng, MILRConfig())

    def test_store_is_deterministic(self, tiny_conv_model, config, prng):
        plan = plan_model(tiny_conv_model, config)
        store_a = build_checkpoint_store(tiny_conv_model, plan, config, prng)
        store_b = build_checkpoint_store(
            tiny_conv_model, plan, config, SeededTensorGenerator(config.master_seed)
        )
        np.testing.assert_array_equal(store_a.final_output, store_b.final_output)
        for index in store_a.partial_checkpoints:
            np.testing.assert_array_equal(
                store_a.partial_checkpoints[index], store_b.partial_checkpoints[index]
            )
