"""Tests for layer inversion (the MILR backward pass)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MILRConfig
from repro.core.initialization import build_checkpoint_store
from repro.core.inversion import invert_bias, invert_conv, invert_dense, invert_layer
from repro.core.planner import plan_model
from repro.exceptions import NotInvertibleError
from repro.nn import Bias, Conv2D, Dense, Sequential
from repro.prng import SeededTensorGenerator


def _protected(model):
    config = MILRConfig(master_seed=23)
    prng = SeededTensorGenerator(config.master_seed)
    plan = plan_model(model, config)
    store = build_checkpoint_store(model, plan, config, prng)
    return plan, store, prng


class TestDenseInversion:
    def test_expanding_dense_exact(self):
        model = Sequential([Dense(20, seed=1, name="d")])
        model.build((8,))
        plan, store, prng = _protected(model)
        x = np.random.default_rng(0).random((3, 8)).astype(np.float32)
        y = model.get_layer("d").forward(x)
        recovered = invert_dense(model.get_layer("d"), plan.plan_for(0), y, store, prng)
        np.testing.assert_allclose(recovered, x, rtol=1e-4, atol=1e-5)

    def test_contracting_dense_uses_dummy_columns(self):
        model = Sequential([Dense(4, seed=2, name="d")])
        model.build((10,))
        plan, store, prng = _protected(model)
        # The stored dummy-column outputs correspond to the golden recovery
        # activation (the PRNG network input), so inversion of that activation
        # must be exact.
        golden_x = prng.detection_input(model.input_shape, batch=1)
        y = model.get_layer("d").forward(golden_x)
        recovered = invert_dense(model.get_layer("d"), plan.plan_for(0), y, store, prng)
        np.testing.assert_allclose(recovered, golden_x, rtol=1e-3, atol=1e-4)

    def test_missing_dummy_columns_raises(self):
        model = Sequential([Dense(4, seed=2, name="d")])
        model.build((10,))
        plan, store, prng = _protected(model)
        layer_plan = plan.plan_for(0)
        bad_plan = type(layer_plan)(**{**layer_plan.__dict__, "dummy_parameter_columns": 0})
        y = np.zeros((1, 4), dtype=np.float32)
        with pytest.raises(NotInvertibleError):
            invert_dense(model.get_layer("d"), bad_plan, y, store, prng)


class TestConvInversion:
    def test_invertible_conv_exact(self):
        # Y = 32 >= F^2 Z = 18: directly invertible.
        model = Sequential([Conv2D(32, 3, padding="valid", seed=3, name="c")])
        model.build((8, 8, 2))
        plan, store, prng = _protected(model)
        x = np.random.default_rng(1).random((1, 8, 8, 2)).astype(np.float32)
        y = model.get_layer("c").forward(x)
        recovered = invert_conv(model.get_layer("c"), plan.plan_for(0), y, store, prng)
        np.testing.assert_allclose(recovered, x, rtol=1e-3, atol=1e-4)

    def test_same_padding_conv_invertible(self):
        model = Sequential([Conv2D(32, 3, padding="same", seed=4, name="c")])
        model.build((6, 6, 2))
        plan, store, prng = _protected(model)
        x = np.random.default_rng(2).random((1, 6, 6, 2)).astype(np.float32)
        y = model.get_layer("c").forward(x)
        recovered = invert_conv(model.get_layer("c"), plan.plan_for(0), y, store, prng)
        np.testing.assert_allclose(recovered, x, rtol=1e-3, atol=1e-3)

    def test_underdetermined_conv_uses_dummy_filters(self):
        # Y = 8 < F^2 Z = 9, and the single missing equation is cheaper to add
        # through one dummy filter (G^2 = 100 stored outputs) than through an
        # input checkpoint (144 values), so the plan keeps the CONV strategy.
        model = Sequential([Conv2D(8, 3, padding="valid", seed=5, name="c")])
        model.build((12, 12, 1))
        plan, store, prng = _protected(model)
        layer_plan = plan.plan_for(0)
        assert layer_plan.dummy_filters == 1
        golden_x = prng.detection_input(model.input_shape, batch=1)
        y = model.get_layer("c").forward(golden_x)
        recovered = invert_conv(model.get_layer("c"), layer_plan, y, store, prng)
        np.testing.assert_allclose(recovered, golden_x, rtol=1e-3, atol=1e-3)


class TestBiasAndDispatch:
    def test_bias_inversion_exact(self):
        model = Sequential([Bias(seed=6, name="b")])
        model.build((5, 5, 3))
        x = np.random.default_rng(3).random((2, 5, 5, 3)).astype(np.float32)
        layer = model.get_layer("b")
        np.testing.assert_allclose(invert_bias(layer, layer.forward(x)), x, rtol=1e-5, atol=1e-6)

    def test_identity_dispatch(self, tiny_conv_model):
        plan, store, prng = _protected(tiny_conv_model)
        relu_index = tiny_conv_model.layer_index("r1")
        y = np.random.default_rng(0).random((1, 8, 8, 6)).astype(np.float32)
        out = invert_layer(
            tiny_conv_model.layers[relu_index], plan.plan_for(relu_index), y, store, prng
        )
        np.testing.assert_array_equal(out, y)

    def test_reshape_dispatch(self, tiny_conv_model):
        plan, store, prng = _protected(tiny_conv_model)
        flatten_index = tiny_conv_model.layer_index("f1")
        y = np.random.default_rng(0).random((1, 96)).astype(np.float32)
        out = invert_layer(
            tiny_conv_model.layers[flatten_index], plan.plan_for(flatten_index), y, store, prng
        )
        assert out.shape == (1, 4, 4, 6)

    def test_pooling_dispatch_raises(self, tiny_conv_model):
        plan, store, prng = _protected(tiny_conv_model)
        pool_index = tiny_conv_model.layer_index("p1")
        with pytest.raises(NotInvertibleError):
            invert_layer(
                tiny_conv_model.layers[pool_index],
                plan.plan_for(pool_index),
                np.zeros((1, 4, 4, 6), dtype=np.float32),
                store,
                prng,
            )
