"""Tests for the layer-capability protection registry (handler dispatch).

Covers the registry resolution rules (MRO lookup, pass-through fallback,
``UnsupportedLayerError`` for unknown parameterized layers) and the two layer
types registered purely through new handler modules: BatchNorm and
DepthwiseConv2D -- planning, detection probing, CRC localization, inversion
and recovery, with no isinstance dispatch anywhere in the core engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MILRConfig, MILRProtector, RecoveryStrategy, plan_model
from repro.core.handlers import (
    LayerProtectionHandler,
    PassthroughHandler,
    handler_for,
    registry,
)
from repro.core.planner import InversionStrategy
from repro.exceptions import CheckpointError, UnsupportedLayerError
from repro.memory import inject_whole_weight
from repro.memory.bitops import flip_bits
from repro.nn import (
    AvgPool2D,
    BatchNorm,
    Bias,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.nn.layers.base import Layer


class _UnknownParameterized(Layer):
    """A parameterized layer no handler knows about."""

    has_parameters = True

    def compute_output_shape(self, input_shape):
        return input_shape

    def forward(self, inputs, training=False):
        return inputs

    def get_weights(self):
        return np.ones((3,), dtype=np.float32)

    def set_weights(self, weights):
        pass


class _DeclaredPassthrough(Layer):
    """A parameter-free layer that declares itself pass-through."""

    has_parameters = False
    is_passthrough = True

    def compute_output_shape(self, input_shape):
        return input_shape

    def forward(self, inputs, training=False):
        return inputs


class TestRegistryResolution:
    def test_every_builtin_layer_type_resolves(self):
        model = Sequential(
            [
                Conv2D(4, 3, seed=1, name="c"),
                BatchNorm(name="bn", seed=2),
                ReLU(name="r"),
                MaxPool2D(2, name="p"),
                DepthwiseConv2D(3, seed=3, name="dw"),
                Bias(name="b", seed=4),
                Flatten(name="f"),
                Dense(5, seed=5, name="d"),
            ]
        )
        model.build((10, 10, 2))
        for index, layer in enumerate(model.layers):
            assert isinstance(handler_for(layer, index), LayerProtectionHandler)

    def test_pool_subclasses_share_one_handler_via_mro(self):
        max_pool = MaxPool2D(2, name="mp")
        avg_pool = AvgPool2D(2, name="ap")
        max_pool.build((8, 8, 2))
        avg_pool.build((8, 8, 2))
        assert handler_for(max_pool) is handler_for(avg_pool)

    def test_handlers_are_singletons_per_type(self):
        first = Dense(4, seed=1, name="d1")
        second = Dense(9, seed=2, name="d2")
        assert handler_for(first) is handler_for(second)

    def test_unknown_parameterized_layer_raises_with_name_and_index(self):
        model = Sequential(
            [Dense(4, seed=1, name="d"), _UnknownParameterized(name="mystery")]
        )
        model.build((6,))
        with pytest.raises(UnsupportedLayerError) as excinfo:
            plan_model(model, MILRConfig())
        message = str(excinfo.value)
        assert "mystery" in message
        assert "index 1" in message
        assert "_UnknownParameterized" in message

    def test_declared_passthrough_plans_as_identity(self):
        model = Sequential(
            [Dense(4, seed=1, name="d"), _DeclaredPassthrough(name="skip")]
        )
        model.build((6,))
        plan = plan_model(model, MILRConfig())
        passthrough_plan = plan.plan_for(1)
        assert passthrough_plan.recovery_strategy is RecoveryStrategy.NONE
        assert passthrough_plan.inversion_strategy is InversionStrategy.IDENTITY
        assert passthrough_plan.parameter_count == 0
        assert not passthrough_plan.needs_input_checkpoint
        assert isinstance(handler_for(model.layers[1]), PassthroughHandler)

    def test_passthrough_fallback_never_claims_parameterized_layers(self):
        layer = _UnknownParameterized(name="weights")
        layer.is_passthrough = True  # even a lying pass-through flag
        with pytest.raises(UnsupportedLayerError):
            handler_for(layer)

    def test_parameter_free_handler_has_no_partial_checkpoint(self):
        relu = ReLU(name="r")
        relu.build((4,))
        with pytest.raises(CheckpointError):
            handler_for(relu).probe(relu, 0, lambda *_: None, MILRConfig())

    def test_strategy_tokens_are_open_for_extension(self):
        member = RecoveryStrategy.register("AFFINE_CHANNEL")
        again = RecoveryStrategy.register("AFFINE_CHANNEL")
        assert member is again
        assert member is RecoveryStrategy.AFFINE_CHANNEL
        assert member.value == "affine_channel"
        # Seed members keep enum-style identity semantics.
        assert RecoveryStrategy.DENSE_FULL is RecoveryStrategy.register("DENSE_FULL")

    def test_registered_types_cover_new_layer_modules(self):
        registered = registry.registered_types()
        assert BatchNorm in registered
        assert DepthwiseConv2D in registered

    def test_duplicate_handler_registration_rejected(self):
        from repro.exceptions import LayerConfigurationError

        class _RivalDenseHandler(LayerProtectionHandler):
            pass

        with pytest.raises(LayerConfigurationError):
            registry.register(Dense, _RivalDenseHandler())
        # The original binding is untouched.
        probe = Dense(3, seed=0, name="probe")
        assert type(handler_for(probe)).__name__ == "DenseProtectionHandler"

    def test_strategy_value_rebind_rejected(self):
        RecoveryStrategy.register("HANDLER_TEST_TOKEN", "handler_test_token")
        with pytest.raises(ValueError):
            RecoveryStrategy.register("HANDLER_TEST_TOKEN", "something_else")

    def test_strategy_tokens_survive_copy_and_pickle_by_identity(self):
        import copy
        import pickle

        member = RecoveryStrategy.DENSE_FULL
        assert copy.copy(member) is member
        assert copy.deepcopy(member) is member
        assert pickle.loads(pickle.dumps(member)) is member
        # Deep-copying a whole plan keeps `is` dispatch working.
        model = Sequential([Dense(4, seed=1, name="d")])
        model.build((6,))
        plan = plan_model(model, MILRConfig())
        clone = copy.deepcopy(plan)
        assert clone.plan_for(0).recovery_strategy is RecoveryStrategy.DENSE_FULL


@pytest.fixture
def protected_bn_model():
    model = Sequential(
        [
            Conv2D(6, 3, seed=1, name="c"),
            BatchNorm(name="bn", seed=2),
            ReLU(name="r"),
            MaxPool2D(2, name="p"),
            Flatten(name="f"),
            Dense(8, seed=3, name="d"),
            BatchNorm(name="bn2", seed=4),
        ],
        name="bn_model",
    )
    model.build((10, 10, 2))
    protector = MILRProtector(model, MILRConfig(master_seed=11))
    protector.initialize()
    return model, protector


class TestBatchNormProtection:
    def test_plan_is_self_contained_and_crc_protected(self, protected_bn_model):
        model, protector = protected_bn_model
        plan = protector.plan.plan_for(1)
        assert plan.kind == "BatchNorm"
        assert plan.recovery_strategy.value == "affine_channel"
        assert plan.inversion_strategy.value == "affine"
        assert plan.stores_crc_codes
        assert plan.partial_checkpoint_values == 2
        assert plan.dummy_input_rows > 0
        assert 1 in protector.store.crc_codes
        assert handler_for(model.layers[1]).is_self_contained(
            model.layers[1], plan
        )

    def test_partial_checkpoint_is_scale_and_shift_sums(self, protected_bn_model):
        model, protector = protected_bn_model
        layer = model.get_layer("bn")
        stored = protector.store.partial_checkpoint(1)
        weights = layer.get_weights().astype(np.float64)
        np.testing.assert_allclose(stored, [weights[0].sum(), weights[1].sum()])

    def test_clean_model_detects_no_errors(self, protected_bn_model):
        _, protector = protected_bn_model
        assert not protector.detect().any_errors

    def test_corruption_detected_localized_and_recovered(self, protected_bn_model):
        model, protector = protected_bn_model
        layer = model.get_layer("bn")
        original = layer.get_weights()
        # Exponent-bit flip on gamma[2] and a large shift on beta[4].
        corrupted = flip_bits(original, np.array([2]), np.array([30]))
        corrupted[1, 4] += 1.5
        layer.set_weights(corrupted)
        detection = protector.detect()
        assert detection.erroneous_layers == [1]
        mask = detection.result_for(1).suspect_mask
        assert mask is not None and mask.shape == original.shape
        assert mask[0, 2] and mask[1, 4]
        protector.recover(detection)
        np.testing.assert_allclose(layer.get_weights(), original, rtol=1e-4, atol=1e-5)
        assert not protector.detect().any_errors

    def test_nan_corruption_is_detected_and_recovered(self, protected_bn_model):
        # A NaN word poisons the sum probe entirely; ``nan > tol`` is False,
        # so detection must map non-finite deviations to mismatches.
        model, protector = protected_bn_model
        layer = model.get_layer("bn")
        original = layer.get_weights()
        corrupted = original.copy()
        corrupted[0, 3] = np.float32("nan")
        layer.set_weights(corrupted)
        detection = protector.detect()
        assert detection.erroneous_layers == [1]
        protector.recover(detection)
        np.testing.assert_allclose(layer.get_weights(), original, rtol=1e-4, atol=1e-5)

    def test_crc_restricted_solve_keeps_clean_words_verbatim(self, protected_bn_model):
        model, protector = protected_bn_model
        layer = model.get_layer("bn")
        original = layer.get_weights()
        corrupted = original.copy()
        corrupted[0, 1] += 2.0
        layer.set_weights(corrupted)
        detection = protector.detect()
        protector.recover(detection)
        recovered = layer.get_weights()
        # Every non-corrupted word keeps its exact stored bit pattern.
        clean = np.ones(original.shape, dtype=bool)
        clean[0, 1] = False
        np.testing.assert_array_equal(
            recovered[clean].view(np.uint32), original[clean].view(np.uint32)
        )

    def test_recovery_of_neighbour_inverts_batchnorm(self, protected_bn_model):
        model, protector = protected_bn_model
        conv = model.get_layer("c")
        original = conv.get_weights()
        corrupted, report = inject_whole_weight(
            original, 0.3, np.random.default_rng(5)
        )
        if report.affected_weights == 0:
            pytest.skip("injection produced no corruption")
        conv.set_weights(corrupted)
        # The conv's golden output is reconstructed from the pool checkpoint
        # through ReLU (identity) and the BatchNorm affine inverse.
        detection, _ = protector.detect_and_recover()
        assert 0 in detection.erroneous_layers
        np.testing.assert_allclose(conv.get_weights(), original, rtol=1e-3, atol=1e-3)

    def test_affine_inversion_roundtrip(self, protected_bn_model):
        model, protector = protected_bn_model
        layer = model.get_layer("bn")
        x = np.random.default_rng(0).random((1, 8, 8, 6)).astype(np.float32)
        y = layer.forward(x)
        np.testing.assert_allclose(layer.invert(y), x, rtol=1e-4, atol=1e-5)


@pytest.fixture
def protected_depthwise_model():
    model = Sequential(
        [
            DepthwiseConv2D(3, padding="same", seed=1, name="dw"),
            Bias(name="b", seed=2),
            ReLU(name="r"),
            MaxPool2D(2, name="p"),
            Flatten(name="f"),
            Dense(6, seed=3, name="d"),
        ],
        name="dw_model",
    )
    model.build((8, 8, 5))
    protector = MILRProtector(model, MILRConfig(master_seed=13))
    protector.initialize()
    return model, protector


class TestDepthwiseProtection:
    def test_plan_checkpoints_input_and_stores_crc(self, protected_depthwise_model):
        model, protector = protected_depthwise_model
        plan = protector.plan.plan_for(0)
        assert plan.kind == "DepthwiseConv2D"
        assert plan.recovery_strategy.value == "depthwise_channel"
        assert plan.inversion_strategy is InversionStrategy.CHECKPOINT
        assert plan.needs_input_checkpoint
        assert plan.stores_crc_codes
        assert plan.partial_checkpoint_values == 5  # one probe value per channel
        assert 0 in protector.plan.checkpoint_indices
        assert 0 in protector.store.crc_codes

    def test_clean_model_detects_no_errors(self, protected_depthwise_model):
        _, protector = protected_depthwise_model
        assert not protector.detect().any_errors

    def test_corruption_detected_localized_and_recovered(
        self, protected_depthwise_model
    ):
        model, protector = protected_depthwise_model
        layer = model.get_layer("dw")
        original = layer.get_weights()
        # Exponent-bit flip on tap (1, 1, 2) and a large shift on (0, 2, 4).
        flat = np.ravel_multi_index((1, 1, 2), original.shape)
        corrupted = flip_bits(original, np.array([flat]), np.array([29]))
        corrupted[0, 2, 4] -= 2.0
        layer.set_weights(corrupted)
        detection = protector.detect()
        assert detection.erroneous_layers == [0]
        mask = detection.result_for(0).suspect_mask
        assert mask is not None and mask.shape == original.shape
        assert mask[1, 1, 2] and mask[0, 2, 4]
        protector.recover(detection)
        np.testing.assert_allclose(layer.get_weights(), original, rtol=1e-4, atol=1e-5)
        assert not protector.detect().any_errors

    def test_whole_kernel_corruption_recovers(self, protected_depthwise_model):
        model, protector = protected_depthwise_model
        layer = model.get_layer("dw")
        original = layer.get_weights()
        corrupted, report = inject_whole_weight(original, 0.5, np.random.default_rng(7))
        if report.affected_weights == 0:
            pytest.skip("injection produced no corruption")
        layer.set_weights(corrupted)
        protector.detect_and_recover()
        np.testing.assert_allclose(layer.get_weights(), original, rtol=1e-3, atol=1e-3)

    def test_inversion_refuses_and_recovery_uses_checkpoint(
        self, protected_depthwise_model
    ):
        from repro.core.inversion import invert_layer
        from repro.exceptions import NotInvertibleError

        model, protector = protected_depthwise_model
        layer = model.get_layer("dw")
        with pytest.raises(NotInvertibleError):
            invert_layer(
                layer,
                protector.plan.plan_for(0),
                np.zeros((1,) + layer.output_shape, dtype=np.float32),
                protector.store,
                protector.prng,
            )
        # The stored input checkpoint feeds the layer's own recovery: the
        # golden input for index 0 is the regenerated network input.
        golden_input = protector.recovery_engine.golden_input_for(0)
        assert golden_input.shape == (1,) + model.input_shape
