"""Tests for MILRConfig validation."""

from __future__ import annotations

import pytest

from repro.core import MILRConfig


class TestMILRConfig:
    def test_defaults_are_valid(self):
        config = MILRConfig()
        assert config.master_seed == 2021
        assert config.crc_group_size == 4

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            MILRConfig(detection_rtol=-1.0)

    def test_zero_detection_batch_rejected(self):
        with pytest.raises(ValueError):
            MILRConfig(detection_batch=0)

    def test_invalid_crc_bits(self):
        with pytest.raises(ValueError):
            MILRConfig(crc_bits=16)

    def test_invalid_crc_group(self):
        with pytest.raises(ValueError):
            MILRConfig(crc_group_size=0)

    def test_frozen(self):
        config = MILRConfig()
        with pytest.raises(AttributeError):
            config.master_seed = 5  # type: ignore[misc]

    def test_custom_values(self):
        config = MILRConfig(master_seed=7, prefer_partial_conv_recovery=False)
        assert config.master_seed == 7
        assert config.prefer_partial_conv_recovery is False
