"""Tests for the recovery engine and the MILRProtector facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MILRConfig, MILRProtector
from repro.core.planner import RecoveryStrategy
from repro.exceptions import DetectionError, RecoveryError
from repro.memory import inject_rber, inject_whole_layer, inject_whole_weight


def _corrupt_and_recover(model, protector, layer_name, rng, rate=0.1):
    """Corrupt one layer with whole-weight errors and run detect+recover."""
    layer = model.get_layer(layer_name)
    original = layer.get_weights()
    corrupted, _ = inject_whole_weight(original, rate, rng)
    layer.set_weights(corrupted)
    detection, recovery = protector.detect_and_recover()
    return original, detection, recovery


class TestProtectorLifecycle:
    def test_methods_require_initialization(self, tiny_conv_model):
        protector = MILRProtector(tiny_conv_model)
        with pytest.raises(DetectionError):
            protector.detect()
        with pytest.raises(DetectionError):
            protector.storage_report()

    def test_initialize_returns_plan(self, tiny_conv_model):
        protector = MILRProtector(tiny_conv_model)
        plan = protector.initialize()
        assert protector.initialized
        assert len(plan.layer_plans) == len(tiny_conv_model.layers)

    def test_detect_and_recover_clean_model(self, protected_conv):
        _, protector = protected_conv
        detection, recovery = protector.detect_and_recover()
        assert not detection.any_errors
        assert recovery is None

    def test_storage_report_positive(self, protected_conv):
        _, protector = protected_conv
        report = protector.storage_report()
        assert report.total_bytes > 0
        assert report.weights_bytes > 0

    def test_storage_comparison(self, protected_conv):
        model, protector = protected_conv
        comparison = protector.storage_comparison("tiny")
        assert comparison.network == "tiny"
        assert comparison.backup_weights_bytes == model.parameter_bytes()
        assert comparison.ecc_and_milr_bytes > comparison.milr_bytes


class TestSingleLayerRecovery:
    @pytest.mark.parametrize("layer_name", ["c1", "cb1", "d1", "db1"])
    def test_each_layer_recovers_exactly(self, protected_conv, rng, layer_name):
        model, protector = protected_conv
        # Bias layers only hold a handful of values; a high whole-weight rate
        # guarantees at least one of them is actually corrupted.
        original, detection, recovery = _corrupt_and_recover(
            model, protector, layer_name, rng, rate=0.6
        )
        assert model.layer_index(layer_name) in detection.erroneous_layers
        assert recovery is not None
        recovered = model.get_layer(layer_name).get_weights()
        np.testing.assert_allclose(recovered, original, rtol=1e-3, atol=1e-4)

    def test_model_outputs_restored(self, protected_conv, rng):
        model, protector = protected_conv
        x = np.random.default_rng(0).random((4,) + model.input_shape).astype(np.float32)
        baseline = model.predict(x)
        _corrupt_and_recover(model, protector, "c1", rng)
        np.testing.assert_allclose(model.predict(x), baseline, rtol=1e-3, atol=1e-4)

    def test_recovery_report_contents(self, protected_conv, rng):
        model, protector = protected_conv
        _, _, recovery = _corrupt_and_recover(model, protector, "d1", rng)
        assert recovery.recovered_layers == [model.layer_index("d1")]
        result = recovery.results[0]
        assert result.strategy is RecoveryStrategy.DENSE_FULL
        assert result.fully_determined
        assert result.elapsed_seconds >= 0.0
        assert recovery.elapsed_seconds >= result.elapsed_seconds

    def test_recover_layer_without_parameters_raises(self, protected_conv):
        model, protector = protected_conv
        relu_index = model.layer_index("r1")
        with pytest.raises(RecoveryError):
            protector.recovery_engine.recover_layer(relu_index)

    def test_detection_after_recovery_is_clean(self, protected_conv, rng):
        model, protector = protected_conv
        _corrupt_and_recover(model, protector, "c1", rng)
        follow_up = protector.detect()
        assert not follow_up.any_errors


class TestWholeLayerRecovery:
    def test_conv_whole_layer_recovered(self, protected_conv, rng):
        model, protector = protected_conv
        layer = model.get_layer("c1")
        original = layer.get_weights()
        corrupted, _ = inject_whole_layer(original, rng)
        layer.set_weights(corrupted)
        detection, recovery = protector.detect_and_recover()
        assert recovery is not None and recovery.all_fully_determined
        np.testing.assert_allclose(layer.get_weights(), original, rtol=1e-3, atol=1e-3)

    def test_dense_whole_layer_recovered(self, protected_conv, rng):
        model, protector = protected_conv
        layer = model.get_layer("d1")
        original = layer.get_weights()
        corrupted, _ = inject_whole_layer(original, rng)
        layer.set_weights(corrupted)
        protector.detect_and_recover()
        np.testing.assert_allclose(layer.get_weights(), original, rtol=1e-3, atol=1e-3)

    def test_partial_conv_whole_layer_not_fully_determined(self, partial_conv_model, rng):
        protector = MILRProtector(partial_conv_model, MILRConfig(master_seed=5))
        protector.initialize()
        layer = partial_conv_model.get_layer("c1")
        corrupted, _ = inject_whole_layer(layer.get_weights(), rng)
        layer.set_weights(corrupted)
        detection, recovery = protector.detect_and_recover()
        assert recovery is not None
        conv_results = [r for r in recovery.results if r.index == 0]
        assert conv_results and not conv_results[0].fully_determined


class TestMultiLayerRecovery:
    def test_two_layers_between_different_checkpoints_recover_exactly(
        self, protected_conv, rng
    ):
        # c1 (before the pooling checkpoint) and d1 (after it) are separated by
        # a checkpoint, so both recover exactly even when corrupted together.
        model, protector = protected_conv
        originals = {name: model.get_layer(name).get_weights() for name in ("c1", "d1")}
        for name in ("c1", "d1"):
            corrupted, _ = inject_whole_weight(model.get_layer(name).get_weights(), 0.1, rng)
            model.get_layer(name).set_weights(corrupted)
        detection, recovery = protector.detect_and_recover()
        assert set(detection.erroneous_layers) == {
            model.layer_index("c1"),
            model.layer_index("d1"),
        }
        for name, original in originals.items():
            np.testing.assert_allclose(
                model.get_layer(name).get_weights(), original, rtol=1e-3, atol=1e-4
            )

    def test_many_erroneous_layers_still_improve_accuracy(self, protected_conv, rng):
        # When several layers between the same pair of checkpoints are
        # corrupted, exact recovery is not guaranteed (paper Sec. V-B), but
        # recovery should still bring the outputs much closer to the original.
        model, protector = protected_conv
        x = np.random.default_rng(1).random((8,) + model.input_shape).astype(np.float32)
        baseline = model.predict(x)
        for layer in model.layers:
            if layer.has_parameters:
                corrupted, _ = inject_rber(layer.get_weights(), 0.02, rng)
                layer.set_weights(corrupted)
        corrupted_error = float(np.mean(np.abs(model.predict(x) - baseline)))
        protector.detect_and_recover()
        recovered_error = float(np.mean(np.abs(model.predict(x) - baseline)))
        assert recovered_error <= corrupted_error
