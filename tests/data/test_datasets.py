"""Tests for the Dataset container and splitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, train_test_split
from repro.exceptions import DatasetError


def _dataset(samples: int = 20, classes: int = 4) -> Dataset:
    rng = np.random.default_rng(0)
    return Dataset(
        images=rng.random((samples, 8, 8, 1)).astype(np.float32),
        labels=rng.integers(0, classes, size=samples),
        num_classes=classes,
        name="test",
    )


class TestDataset:
    def test_length_and_shape(self):
        dataset = _dataset()
        assert len(dataset) == 20
        assert dataset.image_shape == (8, 8, 1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(np.zeros((3, 4, 4, 1)), np.zeros(2), num_classes=2)

    def test_num_classes_validated(self):
        with pytest.raises(DatasetError):
            Dataset(np.zeros((3, 4, 4, 1)), np.zeros(3), num_classes=1)

    def test_subset(self):
        dataset = _dataset()
        subset = dataset.subset(np.array([0, 2, 4]))
        assert len(subset) == 3
        np.testing.assert_array_equal(subset.labels, dataset.labels[[0, 2, 4]])

    def test_take(self):
        assert len(_dataset().take(5)) == 5

    def test_take_more_than_available(self):
        assert len(_dataset(samples=3).take(10)) == 3

    def test_batches_cover_everything(self):
        dataset = _dataset(samples=10)
        batches = list(dataset.batches(4))
        assert [b[0].shape[0] for b in batches] == [4, 4, 2]
        total = np.concatenate([b[1] for b in batches])
        np.testing.assert_array_equal(total, dataset.labels)

    def test_batches_invalid_size(self):
        with pytest.raises(DatasetError):
            list(_dataset().batches(0))

    def test_class_counts_sum(self):
        dataset = _dataset()
        assert dataset.class_counts().sum() == len(dataset)

    def test_images_cast_to_float32(self):
        dataset = Dataset(np.zeros((2, 4, 4, 1), dtype=np.float64), np.zeros(2), num_classes=2)
        assert dataset.images.dtype == np.float32


class TestTrainTestSplit:
    def test_partition_sizes(self):
        train, test = train_test_split(_dataset(samples=20), test_fraction=0.25, seed=1)
        assert len(train) == 15
        assert len(test) == 5

    def test_disjoint_and_complete(self):
        dataset = _dataset(samples=30)
        dataset.labels[:] = np.arange(30)  # make samples identifiable
        train, test = train_test_split(dataset, test_fraction=0.2, seed=2)
        combined = np.sort(np.concatenate([train.labels, test.labels]))
        np.testing.assert_array_equal(combined, np.arange(30))

    def test_deterministic(self):
        dataset = _dataset()
        a_train, _ = train_test_split(dataset, seed=3)
        b_train, _ = train_test_split(dataset, seed=3)
        np.testing.assert_array_equal(a_train.labels, b_train.labels)

    def test_invalid_fraction(self):
        with pytest.raises(DatasetError):
            train_test_split(_dataset(), test_fraction=1.0)
