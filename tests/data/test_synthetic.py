"""Tests for synthetic dataset generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    SyntheticImageConfig,
    make_cifar_like,
    make_mnist_like,
    make_synthetic_images,
)
from repro.exceptions import DatasetError


class TestConfigValidation:
    def test_too_small_image(self):
        with pytest.raises(DatasetError):
            make_synthetic_images(SyntheticImageConfig(height=4, width=4))

    def test_bad_channels(self):
        with pytest.raises(DatasetError):
            make_synthetic_images(SyntheticImageConfig(channels=2))

    def test_bad_classes(self):
        with pytest.raises(DatasetError):
            make_synthetic_images(SyntheticImageConfig(num_classes=1))

    def test_negative_noise(self):
        with pytest.raises(DatasetError):
            make_synthetic_images(SyntheticImageConfig(noise_level=-0.1))


class TestGeneration:
    def test_mnist_like_shapes(self):
        dataset = make_mnist_like(samples_per_class=5)
        assert dataset.image_shape == (28, 28, 1)
        assert len(dataset) == 50
        assert dataset.num_classes == 10

    def test_cifar_like_shapes(self):
        dataset = make_cifar_like(samples_per_class=3)
        assert dataset.image_shape == (32, 32, 3)
        assert len(dataset) == 30

    def test_pixel_range(self):
        dataset = make_mnist_like(samples_per_class=5)
        assert dataset.images.min() >= 0.0
        assert dataset.images.max() <= 1.0

    def test_deterministic(self):
        a = make_mnist_like(samples_per_class=4, seed=7)
        b = make_mnist_like(samples_per_class=4, seed=7)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        a = make_mnist_like(samples_per_class=4, seed=1)
        b = make_mnist_like(samples_per_class=4, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_balanced_classes(self):
        dataset = make_mnist_like(samples_per_class=6)
        np.testing.assert_array_equal(dataset.class_counts(), np.full(10, 6))

    def test_classes_are_distinguishable(self):
        # The per-class mean images must differ substantially, otherwise no
        # classifier could learn the dataset.
        dataset = make_mnist_like(samples_per_class=10, seed=3)
        means = np.stack(
            [dataset.images[dataset.labels == c].mean(axis=0) for c in range(10)]
        )
        distances = []
        for i in range(10):
            for j in range(i + 1, 10):
                distances.append(float(np.abs(means[i] - means[j]).mean()))
        assert min(distances) > 0.01

    def test_shuffled_not_grouped_by_class(self):
        dataset = make_mnist_like(samples_per_class=10)
        # If the samples were still grouped by class the first 10 labels would
        # be identical.
        assert len(set(dataset.labels[:10].tolist())) > 1

    def test_small_cnn_can_learn_dataset(self):
        # End-to-end sanity check: a linear classifier on raw pixels reaches
        # well-above-chance accuracy, confirming the classes are separable.
        dataset = make_mnist_like(samples_per_class=20, seed=0)
        flat = dataset.images.reshape(len(dataset), -1)
        means = np.stack([flat[dataset.labels == c].mean(axis=0) for c in range(10)])
        predictions = np.argmin(
            ((flat[:, None, :] - means[None, :, :]) ** 2).sum(axis=2), axis=1
        )
        accuracy = float(np.mean(predictions == dataset.labels))
        assert accuracy > 0.5
