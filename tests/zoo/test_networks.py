"""Tests for the model zoo: the paper-exact architectures of Tables I-III."""

from __future__ import annotations

import pytest

from repro.zoo import (
    build_cifar_large_network,
    build_cifar_small_network,
    build_mnist_network,
    build_reduced_cifar_network,
    build_reduced_mnist_network,
    network_table,
    paper_layer_table,
)


class TestMNISTNetwork:
    """Paper Table I."""

    def test_total_parameters(self):
        model = build_mnist_network()
        assert model.parameter_count() == 320 + 9_248 + 18_496 + 1_638_656 + 2_570

    def test_layer_table_matches_paper(self):
        rows = paper_layer_table(build_mnist_network())
        expected = [
            ("Conv2D", (26, 26, 32), 320),
            ("Conv2D", (24, 24, 32), 9_248),
            ("Max Pooling", (12, 12, 32), 0),
            ("Conv2D", (10, 10, 64), 18_496),
            ("Dense", (256,), 1_638_656),
            ("Dense", (10,), 2_570),
        ]
        assert [(r["layer"], tuple(r["output_shape"]), r["trainable"]) for r in rows] == expected

    def test_input_shape(self):
        assert build_mnist_network().input_shape == (28, 28, 1)

    def test_output_is_ten_classes(self):
        assert build_mnist_network().output_shape == (10,)


class TestCIFARSmallNetwork:
    """Paper Table II."""

    def test_total_parameters(self):
        model = build_cifar_small_network()
        expected = 896 + 9_248 + 18_496 + 36_928 + 73_856 + 147_584 + 147_584 + 262_272 + 1_290
        assert model.parameter_count() == expected

    def test_layer_table_shapes(self):
        rows = paper_layer_table(build_cifar_small_network())
        shapes = [tuple(r["output_shape"]) for r in rows if r["layer"] == "Conv2D"]
        assert shapes == [
            (32, 32, 32),
            (32, 32, 32),
            (16, 16, 64),
            (16, 16, 64),
            (8, 8, 128),
            (8, 8, 128),
            (8, 8, 128),
        ]

    def test_dense_widths(self):
        rows = paper_layer_table(build_cifar_small_network())
        dense = [r for r in rows if r["layer"] == "Dense"]
        assert [r["trainable"] for r in dense] == [262_272, 1_290]


class TestCIFARLargeNetwork:
    """Paper Table III."""

    def test_total_parameters(self):
        model = build_cifar_large_network()
        expected = 7_296 + 230_496 + 192_080 + 128_064 + 102_464 + 153_696 + 1_573_120 + 2_570
        assert model.parameter_count() == expected

    def test_per_layer_trainable_counts(self):
        rows = paper_layer_table(build_cifar_large_network())
        conv_counts = [r["trainable"] for r in rows if r["layer"] == "Conv2D"]
        assert conv_counts == [7_296, 230_496, 192_080, 128_064, 102_464, 153_696]

    def test_dense_input_is_6144(self):
        model = build_cifar_large_network()
        dense = model.get_layer("head1_dense")
        assert dense.features_in == 6_144


class TestReducedNetworks:
    def test_reduced_mnist_small_enough(self):
        model = build_reduced_mnist_network()
        assert model.parameter_count() < 100_000
        assert model.input_shape == (28, 28, 1)
        assert model.output_shape == (10,)

    def test_reduced_cifar_small_enough(self):
        model = build_reduced_cifar_network()
        assert model.parameter_count() < 200_000
        assert model.input_shape == (32, 32, 3)

    def test_reduced_networks_keep_structural_motifs(self):
        model = build_reduced_mnist_network()
        kinds = [type(layer).__name__ for layer in model.layers]
        assert "Conv2D" in kinds and "MaxPool2D" in kinds and "Dense" in kinds and "Bias" in kinds


class TestNetworkTable:
    def test_all_networks_registered(self):
        table = network_table()
        assert set(table) >= {"mnist", "cifar_small", "cifar_large", "mnist_reduced", "cifar_reduced"}

    def test_builders_produce_built_models(self):
        for name, spec in network_table().items():
            if name in ("mnist_reduced", "cifar_reduced"):
                model = spec.builder()
                assert model.built
                assert model.input_shape == spec.input_shape

    def test_every_conv_and_dense_followed_by_bias(self):
        model = build_reduced_cifar_network()
        for index, layer in enumerate(model.layers):
            if type(layer).__name__ in ("Conv2D", "Dense"):
                assert type(model.layers[index + 1]).__name__ == "Bias"
