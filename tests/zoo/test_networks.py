"""Tests for the model zoo: the paper-exact architectures of Tables I-III."""

from __future__ import annotations

import pytest

from repro.zoo import (
    build_cifar_large_network,
    build_cifar_small_network,
    build_mnist_network,
    build_reduced_cifar_network,
    build_reduced_mnist_network,
    network_table,
    paper_layer_table,
)


class TestMNISTNetwork:
    """Paper Table I."""

    def test_total_parameters(self):
        model = build_mnist_network()
        assert model.parameter_count() == 320 + 9_248 + 18_496 + 1_638_656 + 2_570

    def test_layer_table_matches_paper(self):
        rows = paper_layer_table(build_mnist_network())
        expected = [
            ("Conv2D", (26, 26, 32), 320),
            ("Conv2D", (24, 24, 32), 9_248),
            ("Max Pooling", (12, 12, 32), 0),
            ("Conv2D", (10, 10, 64), 18_496),
            ("Dense", (256,), 1_638_656),
            ("Dense", (10,), 2_570),
        ]
        assert [(r["layer"], tuple(r["output_shape"]), r["trainable"]) for r in rows] == expected

    def test_input_shape(self):
        assert build_mnist_network().input_shape == (28, 28, 1)

    def test_output_is_ten_classes(self):
        assert build_mnist_network().output_shape == (10,)


class TestCIFARSmallNetwork:
    """Paper Table II."""

    def test_total_parameters(self):
        model = build_cifar_small_network()
        expected = 896 + 9_248 + 18_496 + 36_928 + 73_856 + 147_584 + 147_584 + 262_272 + 1_290
        assert model.parameter_count() == expected

    def test_layer_table_shapes(self):
        rows = paper_layer_table(build_cifar_small_network())
        shapes = [tuple(r["output_shape"]) for r in rows if r["layer"] == "Conv2D"]
        assert shapes == [
            (32, 32, 32),
            (32, 32, 32),
            (16, 16, 64),
            (16, 16, 64),
            (8, 8, 128),
            (8, 8, 128),
            (8, 8, 128),
        ]

    def test_dense_widths(self):
        rows = paper_layer_table(build_cifar_small_network())
        dense = [r for r in rows if r["layer"] == "Dense"]
        assert [r["trainable"] for r in dense] == [262_272, 1_290]


class TestCIFARLargeNetwork:
    """Paper Table III."""

    def test_total_parameters(self):
        model = build_cifar_large_network()
        expected = 7_296 + 230_496 + 192_080 + 128_064 + 102_464 + 153_696 + 1_573_120 + 2_570
        assert model.parameter_count() == expected

    def test_per_layer_trainable_counts(self):
        rows = paper_layer_table(build_cifar_large_network())
        conv_counts = [r["trainable"] for r in rows if r["layer"] == "Conv2D"]
        assert conv_counts == [7_296, 230_496, 192_080, 128_064, 102_464, 153_696]

    def test_dense_input_is_6144(self):
        model = build_cifar_large_network()
        dense = model.get_layer("head1_dense")
        assert dense.features_in == 6_144


class TestReducedNetworks:
    def test_reduced_mnist_small_enough(self):
        model = build_reduced_mnist_network()
        assert model.parameter_count() < 100_000
        assert model.input_shape == (28, 28, 1)
        assert model.output_shape == (10,)

    def test_reduced_cifar_small_enough(self):
        model = build_reduced_cifar_network()
        assert model.parameter_count() < 200_000
        assert model.input_shape == (32, 32, 3)

    def test_reduced_networks_keep_structural_motifs(self):
        model = build_reduced_mnist_network()
        kinds = [type(layer).__name__ for layer in model.layers]
        assert "Conv2D" in kinds and "MaxPool2D" in kinds and "Dense" in kinds and "Bias" in kinds


class TestNetworkTable:
    def test_all_networks_registered(self):
        table = network_table()
        assert set(table) >= {"mnist", "cifar_small", "cifar_large", "mnist_reduced", "cifar_reduced"}

    def test_builders_produce_built_models(self):
        for name, spec in network_table().items():
            if name in ("mnist_reduced", "cifar_reduced"):
                model = spec.builder()
                assert model.built
                assert model.input_shape == spec.input_shape

    def test_every_conv_and_dense_followed_by_bias(self):
        model = build_reduced_cifar_network()
        for index, layer in enumerate(model.layers):
            if type(layer).__name__ in ("Conv2D", "Dense"):
                assert type(model.layers[index + 1]).__name__ == "Bias"


class TestRegisterNetworkDecorator:
    def test_new_networks_self_registered(self):
        table = network_table()
        assert "mnist_bn" in table
        assert "cifar_depthwise" in table
        assert table["mnist_bn"].input_shape == (28, 28, 1)
        assert table["cifar_depthwise"].input_shape == (32, 32, 3)

    def test_registered_networks_appear_in_cli_choices(self):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, __import__("argparse")._SubParsersAction)
        )
        for command in ("summary", "rber", "whole-layer", "serve", "soak"):
            sub = subparsers.choices[command]
            network_action = next(
                action for action in sub._actions if action.dest in ("network", "networks")
            )
            assert set(network_action.choices) == set(network_table()), command

    def test_duplicate_registration_rejected(self):
        import pytest

        from repro.exceptions import ExperimentError
        from repro.zoo import register_network

        with pytest.raises(ExperimentError):

            @register_network("mnist", (28, 28, 1))
            def duplicate_builder():
                raise AssertionError("never built")

    def test_decorator_registers_and_returns_builder(self):
        from repro.nn import Dense, Sequential
        from repro.zoo import register_network
        from repro.zoo.networks import _SPECS

        @register_network("zoo_test_tmp_network", (6,))
        def build_tmp():
            model = Sequential([Dense(3, seed=0, name="d")])
            model.build((6,))
            return model

        try:
            spec = network_table()["zoo_test_tmp_network"]
            assert spec.builder is build_tmp
            assert spec.builder().built
        finally:
            _SPECS.pop("zoo_test_tmp_network", None)

    def test_mnist_bn_uses_batchnorm_in_conv_and_dense_positions(self):
        from repro.zoo import build_mnist_bn_network

        model = build_mnist_bn_network()
        kinds = [type(layer).__name__ for layer in model.layers]
        assert kinds.count("BatchNorm") == 3
        conv_positions = [i for i, kind in enumerate(kinds) if kind == "Conv2D"]
        for index in conv_positions:
            assert kinds[index + 1] == "BatchNorm"

    def test_cifar_depthwise_block_structure(self):
        from repro.zoo import build_cifar_depthwise_network

        model = build_cifar_depthwise_network()
        kinds = [type(layer).__name__ for layer in model.layers]
        depthwise = kinds.index("DepthwiseConv2D")
        assert kinds[depthwise + 1] == "BatchNorm"
        assert kinds[depthwise + 2] == "ReLU"
