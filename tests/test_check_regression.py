"""Tests for the CI benchmark regression gate (benchmarks/check_regression.py)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks" / "check_regression.py"


def _write_bench(path: Path, entries: list[dict]) -> None:
    path.write_text(json.dumps({"results": entries}))


def _write_baseline(
    path: Path,
    detection: list[dict],
    service: list[dict],
    inference: list[dict] | None = None,
    faults: list[dict] | None = None,
    soak: list[dict] | None = None,
) -> None:
    path.write_text(
        json.dumps(
            {
                "detection": {"results": detection},
                "service": {"results": service},
                "inference": {"results": inference or []},
                "faults": {"results": faults or []},
                "soak": {"results": soak or []},
            }
        )
    )


def _entry(op: str, ns: float) -> dict:
    return {"op": op, "shape": [2, 2], "ns_per_op": ns}


def _rate_entry(op: str, rate: float) -> dict:
    return {"op": op, "shape": [], "rate": rate}


def _run(tmp_path: Path, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [
            sys.executable,
            str(SCRIPT),
            "--baseline",
            str(tmp_path / "BENCH_baseline.json"),
            "--root",
            str(tmp_path),
            *extra,
        ],
        capture_output=True,
        text=True,
    )


def _write_all(
    tmp_path: Path,
    fresh_ns: float,
    baseline_ns: float = 100.0,
    fresh_rate: float = 1.0,
    baseline_rate: float = 1.0,
) -> None:
    _write_baseline(
        tmp_path / "BENCH_baseline.json",
        [_entry("encode", baseline_ns)],
        [_entry("serve", baseline_ns)],
        [_entry("predict", baseline_ns)],
        [_rate_entry("detection_rate", baseline_rate)],
        [_rate_entry("chaos_availability", baseline_rate)],
    )
    _write_bench(tmp_path / "BENCH_detection.json", [_entry("encode", fresh_ns)])
    _write_bench(tmp_path / "BENCH_service.json", [_entry("serve", fresh_ns)])
    _write_bench(tmp_path / "BENCH_inference.json", [_entry("predict", fresh_ns)])
    _write_bench(
        tmp_path / "BENCH_faults.json", [_rate_entry("detection_rate", fresh_rate)]
    )
    _write_bench(
        tmp_path / "BENCH_soak.json", [_rate_entry("chaos_availability", fresh_rate)]
    )


class TestCheckRegression:
    def test_within_tolerance_passes(self, tmp_path):
        _write_all(tmp_path, fresh_ns=200.0)  # 2x < default 2.5x
        result = _run(tmp_path)
        assert result.returncode == 0, result.stderr
        assert "within 2.5x" in result.stdout

    def test_regression_fails(self, tmp_path):
        _write_all(tmp_path, fresh_ns=300.0)  # 3x > 2.5x
        result = _run(tmp_path)
        assert result.returncode == 1
        assert "FAIL" in result.stdout
        assert "regression" in result.stderr

    def test_custom_tolerance(self, tmp_path):
        _write_all(tmp_path, fresh_ns=300.0)
        assert _run(tmp_path, "--tolerance", "4.0").returncode == 0

    def test_faster_than_baseline_passes(self, tmp_path):
        _write_all(tmp_path, fresh_ns=10.0)
        assert _run(tmp_path).returncode == 0

    def test_missing_fresh_file_is_an_error(self, tmp_path):
        _write_all(tmp_path, fresh_ns=100.0)
        (tmp_path / "BENCH_service.json").unlink()
        result = _run(tmp_path)
        assert result.returncode == 2
        assert "BENCH_service.json" in result.stderr

    def test_missing_baseline_is_an_error(self, tmp_path):
        result = _run(tmp_path)
        assert result.returncode == 2

    def test_missing_op_reported_not_fatal(self, tmp_path):
        _write_all(tmp_path, fresh_ns=100.0)
        _write_bench(tmp_path / "BENCH_detection.json", [])  # op vanished
        result = _run(tmp_path)
        assert result.returncode == 0
        assert "MISSING" in result.stdout

    def test_new_op_reported(self, tmp_path):
        _write_all(tmp_path, fresh_ns=100.0)
        _write_bench(
            tmp_path / "BENCH_detection.json",
            [_entry("encode", 100.0), _entry("brand_new", 5.0)],
        )
        result = _run(tmp_path)
        assert result.returncode == 0
        assert "NEW" in result.stdout

    def test_rate_drop_beyond_tolerance_fails(self, tmp_path):
        # 0.92 is 0.06 below the 0.98 baseline: beyond the default 0.05 margin.
        _write_all(tmp_path, fresh_ns=100.0, baseline_rate=0.98, fresh_rate=0.92)
        result = _run(tmp_path)
        assert result.returncode == 1
        assert "FAIL" in result.stdout

    def test_rate_within_tolerance_passes(self, tmp_path):
        _write_all(tmp_path, fresh_ns=100.0, baseline_rate=0.98, fresh_rate=0.95)
        assert _run(tmp_path).returncode == 0

    def test_rate_improvement_passes(self, tmp_path):
        _write_all(tmp_path, fresh_ns=100.0, baseline_rate=0.90, fresh_rate=1.0)
        assert _run(tmp_path).returncode == 0

    def test_custom_rate_tolerance(self, tmp_path):
        _write_all(tmp_path, fresh_ns=100.0, baseline_rate=0.98, fresh_rate=0.92)
        assert _run(tmp_path, "--rate-tolerance", "0.1").returncode == 0
        assert _run(tmp_path, "--rate-tolerance", "0.01").returncode == 1

    def test_update_rewrites_baseline(self, tmp_path):
        _write_all(tmp_path, fresh_ns=400.0, fresh_rate=0.97)
        assert _run(tmp_path, "--update").returncode == 0
        payload = json.loads((tmp_path / "BENCH_baseline.json").read_text())
        assert payload["detection"]["results"][0]["ns_per_op"] == 400.0
        # Rate entries keep their kind through the rewrite.
        assert payload["faults"]["results"][0]["rate"] == 0.97
        assert "ns_per_op" not in payload["faults"]["results"][0]
        # The gate now passes against the refreshed baseline.
        assert _run(tmp_path).returncode == 0

    def _write_telemetry_pair(self, tmp_path, ns_on: float, ns_off: float) -> None:
        _write_all(tmp_path, fresh_ns=100.0)
        _write_bench(
            tmp_path / "BENCH_service.json",
            [
                _entry("serve", 100.0),
                _entry("serve_request_telemetry_off", ns_off),
                _entry("serve_request_telemetry_on", ns_on),
            ],
        )

    def test_telemetry_overhead_within_budget_passes(self, tmp_path):
        self._write_telemetry_pair(tmp_path, ns_on=103.0, ns_off=100.0)  # +3% < 5%
        result = _run(tmp_path)
        assert result.returncode == 0, result.stderr
        assert "telemetry serve overhead" in result.stdout
        assert "ok" in result.stdout

    def test_telemetry_overhead_beyond_budget_fails(self, tmp_path):
        self._write_telemetry_pair(tmp_path, ns_on=110.0, ns_off=100.0)  # +10% > 5%
        result = _run(tmp_path)
        assert result.returncode == 1
        assert "telemetry serve overhead" in result.stdout
        assert "FAIL" in result.stdout

    def test_telemetry_overhead_custom_tolerance(self, tmp_path):
        self._write_telemetry_pair(tmp_path, ns_on=110.0, ns_off=100.0)
        assert _run(tmp_path, "--telemetry-overhead-tolerance", "0.15").returncode == 0
        assert _run(tmp_path, "--telemetry-overhead-tolerance", "0.01").returncode == 1

    def test_telemetry_overhead_faster_when_enabled_passes(self, tmp_path):
        self._write_telemetry_pair(tmp_path, ns_on=95.0, ns_off=100.0)
        assert _run(tmp_path).returncode == 0

    def test_telemetry_pair_missing_is_skipped_not_fatal(self, tmp_path):
        _write_all(tmp_path, fresh_ns=100.0)  # no telemetry ops in service file
        result = _run(tmp_path)
        assert result.returncode == 0
        assert "telemetry overhead gate skipped" in result.stderr

    def _write_fused_entries(self, tmp_path, speedups: dict, serve_ns: float) -> None:
        _write_all(tmp_path, fresh_ns=100.0)
        _write_bench(
            tmp_path / "BENCH_inference.json",
            [_entry("predict", 100.0)]
            + [
                {
                    "op": f"predict_{name}_b256_fused",
                    "shape": [256, 8, 8, 1],
                    "ns_per_op": 1000.0,
                    "speedup": speedup,
                }
                for name, speedup in speedups.items()
            ],
        )
        _write_bench(
            tmp_path / "BENCH_service.json",
            [_entry("serve", 100.0), _entry("serve_request_scrub_off", serve_ns)],
        )

    _FUSED_NETS = ("mnist_reduced", "mnist_bn", "cifar_reduced", "cifar_depthwise")

    def test_fusion_gates_pass(self, tmp_path):
        self._write_fused_entries(
            tmp_path, dict.fromkeys(self._FUSED_NETS, 3.5), serve_ns=60_000.0
        )
        result = _run(tmp_path)
        assert result.returncode == 0, result.stderr
        assert "fused b256 speedups" in result.stdout
        assert "serve_request_scrub_off" in result.stdout

    def test_fused_per_net_floor_fails(self, tmp_path):
        speedups = dict.fromkeys(self._FUSED_NETS, 3.5)
        speedups["cifar_reduced"] = 2.0  # below the 2.25x per-net floor
        self._write_fused_entries(tmp_path, speedups, serve_ns=60_000.0)
        result = _run(tmp_path)
        assert result.returncode == 1
        assert "cifar_reduced" in result.stdout
        assert "floor" in result.stdout

    def test_fused_median_floor_fails(self, tmp_path):
        # Every net clears the per-net floor, but the median misses 3x.
        self._write_fused_entries(
            tmp_path, dict.fromkeys(self._FUSED_NETS, 2.5), serve_ns=60_000.0
        )
        result = _run(tmp_path)
        assert result.returncode == 1
        assert "median fused b256 speedup" in result.stdout

    def test_serve_latency_ceiling_fails(self, tmp_path):
        self._write_fused_entries(
            tmp_path, dict.fromkeys(self._FUSED_NETS, 3.5), serve_ns=90_000.0
        )
        result = _run(tmp_path)
        assert result.returncode == 1
        assert "ceiling" in result.stdout

    def test_fusion_gates_skip_when_entries_absent(self, tmp_path):
        _write_all(tmp_path, fresh_ns=100.0)  # no fused or serve_request ops
        result = _run(tmp_path)
        assert result.returncode == 0
        assert "fused speedup gate skipped" in result.stderr
        assert "serve latency ceiling skipped" in result.stderr

    def test_update_cannot_relax_fusion_gates(self, tmp_path):
        # --update rewrites the baseline from the (failing) fresh numbers,
        # but the hardcoded floors still fail the next gate run.
        self._write_fused_entries(
            tmp_path, dict.fromkeys(self._FUSED_NETS, 2.0), serve_ns=90_000.0
        )
        assert _run(tmp_path, "--update").returncode == 0
        assert _run(tmp_path).returncode == 1

    def test_repo_baseline_matches_gate_schema(self, tmp_path):
        # The committed baseline must load and cover all five benchmark files.
        sys.path.insert(0, str(SCRIPT.parent))
        try:
            from check_regression import load_baseline

            baseline = load_baseline(SCRIPT.parents[1] / "BENCH_baseline.json")
        finally:
            sys.path.pop(0)
        sources = {key[0] for key in baseline}
        assert sources == {"detection", "service", "inference", "faults", "soak"}
        assert all(value > 0 for _, value in baseline.values())
        assert all(
            0.0 < value <= 1.0
            for kind, value in baseline.values()
            if kind == "rate"
        )