"""Tests for the CI benchmark regression gate (benchmarks/check_regression.py)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks" / "check_regression.py"


def _write_bench(path: Path, entries: list[dict]) -> None:
    path.write_text(json.dumps({"results": entries}))


def _write_baseline(
    path: Path,
    detection: list[dict],
    service: list[dict],
    inference: list[dict] | None = None,
) -> None:
    path.write_text(
        json.dumps(
            {
                "detection": {"results": detection},
                "service": {"results": service},
                "inference": {"results": inference or []},
            }
        )
    )


def _entry(op: str, ns: float) -> dict:
    return {"op": op, "shape": [2, 2], "ns_per_op": ns}


def _run(tmp_path: Path, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [
            sys.executable,
            str(SCRIPT),
            "--baseline",
            str(tmp_path / "BENCH_baseline.json"),
            "--root",
            str(tmp_path),
            *extra,
        ],
        capture_output=True,
        text=True,
    )


def _write_all(tmp_path: Path, fresh_ns: float, baseline_ns: float = 100.0) -> None:
    _write_baseline(
        tmp_path / "BENCH_baseline.json",
        [_entry("encode", baseline_ns)],
        [_entry("serve", baseline_ns)],
        [_entry("predict", baseline_ns)],
    )
    _write_bench(tmp_path / "BENCH_detection.json", [_entry("encode", fresh_ns)])
    _write_bench(tmp_path / "BENCH_service.json", [_entry("serve", fresh_ns)])
    _write_bench(tmp_path / "BENCH_inference.json", [_entry("predict", fresh_ns)])


class TestCheckRegression:
    def test_within_tolerance_passes(self, tmp_path):
        _write_all(tmp_path, fresh_ns=200.0)  # 2x < default 2.5x
        result = _run(tmp_path)
        assert result.returncode == 0, result.stderr
        assert "within 2.5x" in result.stdout

    def test_regression_fails(self, tmp_path):
        _write_all(tmp_path, fresh_ns=300.0)  # 3x > 2.5x
        result = _run(tmp_path)
        assert result.returncode == 1
        assert "FAIL" in result.stdout
        assert "regression" in result.stderr

    def test_custom_tolerance(self, tmp_path):
        _write_all(tmp_path, fresh_ns=300.0)
        assert _run(tmp_path, "--tolerance", "4.0").returncode == 0

    def test_faster_than_baseline_passes(self, tmp_path):
        _write_all(tmp_path, fresh_ns=10.0)
        assert _run(tmp_path).returncode == 0

    def test_missing_fresh_file_is_an_error(self, tmp_path):
        _write_all(tmp_path, fresh_ns=100.0)
        (tmp_path / "BENCH_service.json").unlink()
        result = _run(tmp_path)
        assert result.returncode == 2
        assert "BENCH_service.json" in result.stderr

    def test_missing_baseline_is_an_error(self, tmp_path):
        result = _run(tmp_path)
        assert result.returncode == 2

    def test_missing_op_reported_not_fatal(self, tmp_path):
        _write_all(tmp_path, fresh_ns=100.0)
        _write_bench(tmp_path / "BENCH_detection.json", [])  # op vanished
        result = _run(tmp_path)
        assert result.returncode == 0
        assert "MISSING" in result.stdout

    def test_new_op_reported(self, tmp_path):
        _write_all(tmp_path, fresh_ns=100.0)
        _write_bench(
            tmp_path / "BENCH_detection.json",
            [_entry("encode", 100.0), _entry("brand_new", 5.0)],
        )
        result = _run(tmp_path)
        assert result.returncode == 0
        assert "NEW" in result.stdout

    def test_update_rewrites_baseline(self, tmp_path):
        _write_all(tmp_path, fresh_ns=400.0)
        assert _run(tmp_path, "--update").returncode == 0
        payload = json.loads((tmp_path / "BENCH_baseline.json").read_text())
        assert payload["detection"]["results"][0]["ns_per_op"] == 400.0
        # The gate now passes against the refreshed baseline.
        assert _run(tmp_path).returncode == 0

    def test_repo_baseline_matches_gate_schema(self, tmp_path):
        # The committed baseline must load and cover all three benchmark files.
        sys.path.insert(0, str(SCRIPT.parent))
        try:
            from check_regression import load_baseline

            baseline = load_baseline(SCRIPT.parents[1] / "BENCH_baseline.json")
        finally:
            sys.path.pop(0)
        sources = {key[0] for key in baseline}
        assert sources == {"detection", "service", "inference"}
        assert all(ns > 0 for ns in baseline.values())