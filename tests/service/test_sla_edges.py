"""Edge-case tests for SLAReport: no NaN / ZeroDivision on empty windows."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.service import SLATracker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _assert_all_floats_finite(report) -> None:
    for field in dataclasses.fields(report):
        value = getattr(report, field.name)
        if isinstance(value, float):
            assert math.isfinite(value), f"{field.name} is {value}"


class TestSLAReportEdges:
    def test_zero_served_requests_no_nan(self):
        tracker = SLATracker("m", 1024)
        report = tracker.report(0.25)
        _assert_all_floats_finite(report)
        assert report.detections == 0
        assert report.recoveries == 0
        assert report.mean_detection_seconds == 0.0
        assert report.mean_recovery_seconds == 0.0
        assert report.max_recovery_seconds == 0.0
        assert report.elapsed_seconds == 0.0
        assert report.observed_availability == 1.0
        assert 0.0 <= report.availability <= 1.0
        assert 0.0 <= report.minimum_accuracy <= 1.0

    def test_all_degraded_window_clamps_to_zero(self):
        clock = FakeClock()
        tracker = SLATracker("m", 1024, clock=clock)
        tracker.start()
        tracker.mark_unavailable()
        tracker.record_degraded(3)
        clock.now = 10.0
        report = tracker.report(0.25)
        _assert_all_floats_finite(report)
        assert report.layers_degraded == 3
        assert report.observed_availability == 0.0  # clamped, never negative

    def test_single_detection_zero_recoveries(self):
        clock = FakeClock()
        tracker = SLATracker("m", 1024, clock=clock)
        tracker.start()
        tracker.record_detection(0.5)
        clock.now = 10.0
        report = tracker.report(0.25)
        _assert_all_floats_finite(report)
        assert report.detections == 1
        assert report.mean_detection_seconds == pytest.approx(0.5)
        assert report.recoveries == 0
        assert report.mean_recovery_seconds == 0.0

    def test_single_recovery_zero_detections(self):
        clock = FakeClock()
        tracker = SLATracker("m", 1024, clock=clock)
        tracker.start()
        tracker.record_recovery(1.5, layers=1, bit_exact_layers=1)
        clock.now = 10.0
        report = tracker.report(0.25)
        _assert_all_floats_finite(report)
        assert report.recoveries == 1
        assert report.mean_recovery_seconds == pytest.approx(1.5)
        assert report.max_recovery_seconds == pytest.approx(1.5)
        assert report.layers_recovered == 1
        assert report.layers_recovered_bit_exact == 1
        assert report.detections == 0

    def test_detection_inside_quarantine_not_double_counted(self):
        clock = FakeClock()
        tracker = SLATracker("m", 1024, clock=clock)
        tracker.start()
        tracker.mark_unavailable()
        tracker.record_detection(5.0)  # covered by the open window already
        clock.now = 2.0
        tracker.mark_available()
        clock.now = 4.0
        report = tracker.report(0.25)
        assert report.unavailable_seconds == pytest.approx(2.0)
        assert report.observed_availability == pytest.approx(0.5)

    def test_as_row_serializes_cleanly(self):
        report = SLATracker("m", 1024).report(0.25)
        row = report.as_row()
        assert row["model"] == "m"
        for value in row.values():
            if isinstance(value, float):
                assert math.isfinite(value)
