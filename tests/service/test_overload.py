"""Tests for overload protection: admission control, deadlines, breaker.

The wedge idiom: quarantining the model parks its worker inside
``wait_healthy`` (holding the model lock) so the bounded queue fills under
test control; clearing the quarantine releases the worker and everything
drains.  ``scrub_period_seconds`` is set high enough that the scrubber never
interferes, and ``max_batch=1`` makes the worker hold exactly one in-flight
request.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.exceptions import (
    DeadlineExceededError,
    ExperimentError,
    ServiceOverloadError,
)
from repro.service import (
    CircuitBreaker,
    SelfHealingService,
    ServiceConfig,
)

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")


def wedged_service(**overrides):
    """A service whose worker is parked in ``wait_healthy`` by a quarantine."""
    fields = dict(
        max_batch=1,
        max_queue_depth=1,
        batch_timeout_seconds=0.001,
        quarantine_wait_seconds=5.0,
        scrub_period_seconds=30.0,
        recovery_async=False,
    )
    fields.update(overrides)
    service = SelfHealingService(ServiceConfig(**fields))
    entry = service.load_model("mnist_reduced")
    entry.quarantine([entry.parameterized_indices[0]])
    service.start(scrub=False)
    return service, entry


def sample_for(entry) -> np.ndarray:
    return np.zeros(entry.model.input_shape, dtype=np.float32)


def wait_for_worker_pickup(service, entry, timeout=2.0):
    """Block until the wedged worker has popped the head-of-line request."""
    q = service.engine._queues[entry.name]
    deadline = time.perf_counter() + timeout
    while q.qsize() > 0:
        if time.perf_counter() > deadline:
            raise AssertionError("worker never picked up the head request")
        time.sleep(0.001)
    # The pop happens before the batch-gather wait; give the worker a beat to
    # reach wait_healthy so follow-up submits purely fill the queue.
    time.sleep(0.05)


class TestBoundedQueueAdmission:
    def test_reject_policy_sheds_with_queue_full_reason(self):
        service, entry = wedged_service()
        try:
            first = service.submit(entry.name, sample_for(entry))
            wait_for_worker_pickup(service, entry)
            second = service.submit(entry.name, sample_for(entry))
            with pytest.raises(ServiceOverloadError) as excinfo:
                service.submit(entry.name, sample_for(entry))
            assert excinfo.value.reason == "queue_full"
            assert entry.stats.shed_queue_full == 1
            assert entry.stats.requests_shed == 1
            assert entry.stats.queue_depth_highwater == 1
            entry.clear_quarantine([entry.parameterized_indices[0]])
            first.result(timeout=10.0)
            second.result(timeout=10.0)
        finally:
            service.stop()

    def test_block_policy_times_out_then_sheds(self):
        service, entry = wedged_service(
            admission_policy="block", admission_block_timeout_seconds=0.2
        )
        try:
            service.submit(entry.name, sample_for(entry))
            wait_for_worker_pickup(service, entry)
            service.submit(entry.name, sample_for(entry))
            began = time.perf_counter()
            with pytest.raises(ServiceOverloadError) as excinfo:
                service.submit(entry.name, sample_for(entry))
            waited = time.perf_counter() - began
            assert excinfo.value.reason == "queue_full"
            assert waited >= 0.2
            assert entry.stats.shed_queue_full == 1
            entry.clear_quarantine([entry.parameterized_indices[0]])
        finally:
            service.stop()

    def test_block_policy_admits_when_space_frees(self):
        service, entry = wedged_service(
            admission_policy="block", admission_block_timeout_seconds=5.0
        )
        try:
            first = service.submit(entry.name, sample_for(entry))
            wait_for_worker_pickup(service, entry)
            second = service.submit(entry.name, sample_for(entry))
            releaser = threading.Timer(
                0.2,
                entry.clear_quarantine,
                args=([entry.parameterized_indices[0]],),
            )
            releaser.start()
            # Blocks against the full queue until the release drains it.
            third = service.submit(entry.name, sample_for(entry))
            releaser.join()
            for request in (first, second, third):
                request.result(timeout=10.0)
            assert entry.stats.requests_shed == 0
        finally:
            service.stop()

    def test_queue_full_admission_race_conserves_requests(self):
        """Concurrent submitters against a full queue: admitted + shed == sent."""
        service, entry = wedged_service(max_queue_depth=4)
        admitted: list = []
        shed = threading.Semaphore(0)
        shed_count = [0]
        lock = threading.Lock()

        def submitter(n):
            for _ in range(n):
                try:
                    request = service.submit(entry.name, sample_for(entry))
                except ServiceOverloadError:
                    with lock:
                        shed_count[0] += 1
                else:
                    with lock:
                        admitted.append(request)

        try:
            head = service.submit(entry.name, sample_for(entry))
            wait_for_worker_pickup(service, entry)
            threads = [
                threading.Thread(target=submitter, args=(10,)) for _ in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
                assert not thread.is_alive(), "submitter hung"
            assert len(admitted) + shed_count[0] == 60
            # The queue bound held while the worker was wedged.
            assert entry.stats.queue_depth_highwater <= 4
            assert entry.stats.shed_queue_full == shed_count[0]
            entry.clear_quarantine([entry.parameterized_indices[0]])
            head.result(timeout=10.0)
            for request in admitted:
                request.result(timeout=10.0)
        finally:
            service.stop()

    def test_unbounded_default_never_sheds(self):
        service, entry = wedged_service(max_queue_depth=0)
        try:
            requests = [
                service.submit(entry.name, sample_for(entry)) for _ in range(32)
            ]
            assert entry.stats.requests_shed == 0
            entry.clear_quarantine([entry.parameterized_indices[0]])
            for request in requests:
                request.result(timeout=10.0)
        finally:
            service.stop()


class TestDeadlines:
    def test_expired_request_dropped_before_compute(self):
        service, entry = wedged_service(max_queue_depth=0)
        try:
            head = service.submit(entry.name, sample_for(entry))
            wait_for_worker_pickup(service, entry)
            doomed = service.submit(
                entry.name, sample_for(entry), deadline_seconds=0.05
            )
            time.sleep(0.2)
            entry.clear_quarantine([entry.parameterized_indices[0]])
            head.result(timeout=10.0)
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=10.0)
            assert doomed.failed
            assert entry.stats.shed_deadline == 1
            # A deadline drop is shed, not a request failure.
            assert entry.stats.requests_failed == 0
        finally:
            service.stop()

    def test_default_deadline_comes_from_config(self):
        service, entry = wedged_service(
            max_queue_depth=0, default_deadline_seconds=0.05
        )
        try:
            head = service.submit(entry.name, sample_for(entry))
            wait_for_worker_pickup(service, entry)
            doomed = service.submit(entry.name, sample_for(entry))
            assert doomed.deadline is not None
            time.sleep(0.2)
            entry.clear_quarantine([entry.parameterized_indices[0]])
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=10.0)
        finally:
            service.stop()

    def test_deadline_cuts_the_batch_gather_short(self):
        # A lone request with a 0.2 s deadline against a 2 s batch window:
        # the deadline-aware cut fires at half the budget instead of letting
        # the gather burn the whole window.
        service = SelfHealingService(
            ServiceConfig(
                batch_timeout_seconds=2.0,
                scrub_period_seconds=30.0,
                deadline_batch_cut=True,
            )
        )
        entry = service.load_model("mnist_reduced")
        service.start(scrub=False)
        try:
            request = service.submit(
                entry.name, sample_for(entry), deadline_seconds=0.2
            )
            request.result(timeout=1.0)
            assert request.latency_seconds < 0.5
        finally:
            service.stop()


class TestWorkerFailure:
    def test_wait_healthy_expiry_fails_the_batch(self):
        service, entry = wedged_service(
            max_queue_depth=0, quarantine_wait_seconds=0.15
        )
        try:
            request = service.submit(entry.name, sample_for(entry))
            with pytest.raises(ExperimentError, match="stayed quarantined"):
                request.result(timeout=10.0)
            assert entry.stats.requests_failed == 1
            # The worker survives the expiry and keeps serving.
            entry.clear_quarantine([entry.parameterized_indices[0]])
            service.submit(entry.name, sample_for(entry)).result(timeout=10.0)
        finally:
            service.stop()

    def test_worker_death_fails_queued_requests_fast(self, monkeypatch):
        service, entry = wedged_service(max_queue_depth=0)
        entry.clear_quarantine([entry.parameterized_indices[0]])
        release = threading.Event()

        def crash(entry_, batch, instruments=None):
            # Hold the worker inside the batch (like a wedged forward) until
            # the test has queued requests behind it, then die.
            for request in batch:
                request._fail(RuntimeError("boom"))
            release.wait(timeout=10.0)
            raise RuntimeError("boom")

        monkeypatch.setattr(service.engine, "_execute", crash)
        try:
            head = service.submit(entry.name, sample_for(entry))
            wait_for_worker_pickup(service, entry)
            queued = [service.submit(entry.name, sample_for(entry)) for _ in range(3)]
            release.set()
            with pytest.raises(RuntimeError):
                head.result(timeout=10.0)
            # Queued requests fail fast with the death diagnostic, not a hang.
            for request in queued:
                with pytest.raises(ExperimentError, match="died"):
                    request.result(timeout=10.0)
            # Later submits fail fast instead of queueing against the corpse.
            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline:
                try:
                    service.submit(entry.name, sample_for(entry))
                except ExperimentError as error:
                    assert "died" in str(error)
                    break
                time.sleep(0.01)
            else:
                raise AssertionError("submit never failed fast after worker death")
            assert entry.stats.requests_failed >= 3
        finally:
            service.stop()  # must not hang on the dead worker


class TestCircuitBreakerUnit:
    """Breaker state machine under an injected clock (no sleeps)."""

    @staticmethod
    def make(config=None, **kwargs):
        clock = [0.0]
        breaker = CircuitBreaker(
            "m",
            config
            or ServiceConfig(
                breaker_enabled=True,
                breaker_p99_threshold_seconds=0.25,
                breaker_quarantine_depth=4,
                breaker_min_samples=32,
                breaker_window=64,
                breaker_backoff_seconds=0.1,
                breaker_backoff_max_seconds=2.0,
                breaker_half_open_probes=4,
                breaker_jitter=0.2,
            ),
            seed=5,
            clock=lambda: clock[0],
            **kwargs,
        )
        return breaker, clock

    def test_trips_on_quarantine_depth(self):
        breaker, _ = self.make()
        assert breaker.allow(quarantine_depth=3)
        assert not breaker.allow(quarantine_depth=4)
        assert breaker.state == "open"
        assert breaker.opens == 1
        assert breaker.shed == 1
        assert breaker.first_opened_at == 0.0

    def test_trips_on_rolling_p99(self):
        breaker, _ = self.make()
        # Below min_samples nothing trips, whatever the latencies.
        for _ in range(31):
            breaker.record(1.0)
        assert breaker.allow()
        breaker.record(1.0)  # 32nd record refreshes the cached p99
        assert breaker.rolling_p99() > 0.25
        assert not breaker.allow()
        assert breaker.state == "open"

    def test_open_sheds_until_backoff_then_half_open_probes(self):
        breaker, clock = self.make()
        assert not breaker.allow(quarantine_depth=10)
        assert not breaker.allow()  # still inside the backoff window
        # Backoff 0.1 s plus at most 20% jitter.
        clock[0] = 0.13
        # A bounded probe round is admitted, then half-open sheds again.
        assert all(breaker.allow() for _ in range(4))
        assert breaker.state == "half_open"
        assert not breaker.allow()
        # A clean probe round closes the breaker and resets the window.
        for _ in range(4):
            breaker.record(0.01)
        assert breaker.state == "closed"
        assert breaker.closes == 1
        assert breaker.rolling_p99() == 0.0
        assert breaker.allow()

    def test_probe_failure_reopens_with_doubled_backoff(self):
        breaker, clock = self.make()
        assert not breaker.allow(quarantine_depth=10)
        clock[0] = 0.13
        assert breaker.allow()  # half-open probe
        breaker.record(0.0, failed=True)
        assert breaker.state == "open"
        assert breaker.opens == 2
        # Doubled backoff: 0.2 s (+ jitter) from the re-trip.
        clock[0] = 0.13 + 0.15
        assert not breaker.allow()
        clock[0] = 0.13 + 0.25
        assert breaker.allow()

    def test_slow_probe_counts_as_failure(self):
        breaker, clock = self.make()
        assert not breaker.allow(quarantine_depth=10)
        clock[0] = 0.13
        assert breaker.allow()
        breaker.record(0.5)  # above the p99 threshold
        assert breaker.state == "open"

    def test_first_opened_at_records_the_first_trip_only(self):
        breaker, clock = self.make()
        clock[0] = 1.0
        assert not breaker.allow(quarantine_depth=10)
        assert breaker.first_opened_at == 1.0
        clock[0] = 2.0
        breaker.allow()
        breaker.record(0.0, failed=True)
        assert breaker.first_opened_at == 1.0

    def test_snapshot_is_json_shaped(self):
        breaker, _ = self.make()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == "closed"
        assert set(snapshot) >= {"opens", "closes", "shed", "rolling_p99_seconds"}


class TestCircuitBreakerInEngine:
    def test_open_breaker_sheds_at_submit(self):
        service = SelfHealingService(
            ServiceConfig(
                breaker_enabled=True,
                breaker_quarantine_depth=1,
                scrub_period_seconds=30.0,
            )
        )
        entry = service.load_model("mnist_reduced")
        assert entry.breaker is not None
        service.start(scrub=False)
        try:
            entry.quarantine([entry.parameterized_indices[0]])
            with pytest.raises(ServiceOverloadError) as excinfo:
                service.submit(entry.name, sample_for(entry))
            assert excinfo.value.reason == "breaker_open"
            assert entry.breaker.state == "open"
            assert entry.stats.shed_breaker == 1
            entry.clear_quarantine([entry.parameterized_indices[0]])
        finally:
            service.stop()

    def test_breaker_disabled_by_default(self):
        service = SelfHealingService(ServiceConfig(scrub_period_seconds=30.0))
        entry = service.load_model("mnist_reduced")
        assert entry.breaker is None

    def test_probe_budget_survives_admission_failure(self):
        """An allow() that never queues must not leak the half-open probe."""
        breaker, clock = TestCircuitBreakerUnit.make()
        assert not breaker.allow(quarantine_depth=10)
        clock[0] = 0.13
        for _ in range(10):
            allowed = breaker.allow()
            if allowed:
                # Simulate the engine failing admission post-allow.
                breaker.record(0.0, failed=True)
        # Probe failures re-trip the breaker rather than wedging half-open
        # with leaked in-flight probes.
        assert breaker.state == "open"
