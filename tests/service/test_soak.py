"""End-to-end soak test: the ISSUE's acceptance scenario.

A reduced MNIST model serves continuous single-sample traffic through the
batching engine while a Poisson driver injects >= 20 staggered bit flips into
the live weights and the background scrubber detects, quarantines and heals.
Every injected corruption must be detected, every layer restored bit-exactly,
no request may ever execute through a quarantined layer, and the SLA tracker
must report availability >= 0.99 at the default scrub period.
"""

from __future__ import annotations

import pytest

from repro.service import ServiceConfig, run_soak


@pytest.fixture(scope="module")
def soak_result():
    return run_soak(
        network="mnist_reduced",
        duration_seconds=6.0,
        mean_fault_interval_seconds=0.04,
        max_fault_events=20,
        scrub_period_seconds=ServiceConfig().scrub_period_seconds,
        request_interval_seconds=0.002,
        seed=4,
    )


class TestEndToEndSoak:
    def test_at_least_twenty_staggered_bit_flips(self, soak_result):
        assert len(soak_result.fault_events) >= 20
        # Staggered: the arrivals span the soak window, not one burst.
        stamps = [event.timestamp for event in soak_result.fault_events]
        assert max(stamps) - min(stamps) > 0.2

    def test_every_corruption_detected(self, soak_result):
        assert soak_result.injected_layers
        assert soak_result.all_errors_detected
        assert soak_result.sla.error_events_detected >= 1

    def test_recovered_bit_exact(self, soak_result):
        assert soak_result.converged
        assert soak_result.bit_exact
        assert soak_result.sla.layers_degraded == 0

    def test_no_request_saw_a_quarantined_layer(self, soak_result):
        assert soak_result.requests_completed > 0
        assert soak_result.served_during_quarantine == 0
        assert soak_result.requests_failed == 0

    def test_availability_sla(self, soak_result):
        assert soak_result.sla.scrub_period_seconds == pytest.approx(
            ServiceConfig().scrub_period_seconds
        )
        assert soak_result.sla.availability >= 0.99
        assert soak_result.sla.minimum_accuracy >= 0.999

    def test_latency_accounting_present(self, soak_result):
        assert soak_result.throughput_rps > 0
        assert 0 < soak_result.p50_latency_seconds <= soak_result.p99_latency_seconds

    def test_serving_ran_on_the_plan_fast_path(self, soak_result):
        # Variable-occupancy batches: nothing was padded to max_batch.
        assert soak_result.samples_padded == 0

    def test_plan_invalidation_observed_after_repairs(self, soak_result):
        # Every fault/repair cycle mutates weights under the cached plans;
        # serving through the corruption (and again after the repair) must
        # have invalidated and recompiled them at least once.
        assert soak_result.fault_events
        assert soak_result.plan_invalidations >= 1
