"""Tests for the trace-driven traffic shapes and the admission simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.service import (
    CHAOS_SCENARIOS,
    BurstTraffic,
    ConstantTraffic,
    DiurnalTraffic,
    PoissonTraffic,
    RampTraffic,
    ReplayTrace,
    SuperposedTraffic,
    Trace,
    TrafficShape,
    simulate_admission,
)


class TestTrace:
    def test_offsets_must_be_sorted(self):
        with pytest.raises(ExperimentError):
            Trace(offsets=np.array([0.2, 0.1]))

    def test_offsets_must_be_one_dimensional(self):
        with pytest.raises(ExperimentError):
            Trace(offsets=np.zeros((2, 2)))

    def test_metadata_lengths_must_match(self):
        with pytest.raises(ExperimentError):
            Trace(offsets=np.array([0.1, 0.2]), models=("a",))
        with pytest.raises(ExperimentError):
            Trace(offsets=np.array([0.1, 0.2]), result_delays=np.array([0.0]))

    def test_merge_is_a_stable_sorted_superposition(self):
        a = Trace(offsets=np.array([0.0, 0.5]), models=("x", "x"))
        b = Trace(
            offsets=np.array([0.25, 0.5]),
            models=("y", "y"),
            result_delays=np.array([0.1, 0.2]),
        )
        merged = a.merge(b)
        assert list(merged.offsets) == [0.0, 0.25, 0.5, 0.5]
        # Stable: a's 0.5 arrival sorts before b's.
        assert merged.models == ("x", "y", "x", "y")
        # a had no delays: they default to zero in the merge.
        np.testing.assert_allclose(merged.result_delays, [0.0, 0.1, 0.0, 0.2])

    def test_iteration_yields_arrivals(self):
        trace = Trace(offsets=np.array([0.1]), models=("m",))
        (arrival,) = list(trace)
        assert arrival.offset == pytest.approx(0.1)
        assert arrival.model == "m"
        assert arrival.result_delay_seconds == 0.0


class TestDeterminism:
    @pytest.mark.parametrize(
        "shape",
        [
            ConstantTraffic(rate_rps=100.0),
            PoissonTraffic(rate_rps=200.0, seed=3),
            DiurnalTraffic(base_rate_rps=150.0, amplitude=0.8, period_seconds=1.0, seed=4),
            BurstTraffic(base_rate_rps=50.0, burst_rate_rps=400.0, duty=0.3, seed=5),
            RampTraffic(start_rate_rps=10.0, end_rate_rps=300.0, ramp_seconds=2.0, seed=6),
            PoissonTraffic(
                rate_rps=150.0,
                seed=7,
                model_mix={"a": 1.0, "b": 3.0},
                straggler_fraction=0.25,
            ),
        ],
        ids=["constant", "poisson", "diurnal", "burst", "ramp", "decorated"],
    )
    def test_same_shape_expands_byte_identically(self, shape):
        first = shape.arrivals(2.0)
        second = shape.arrivals(2.0)
        assert first.offsets.tobytes() == second.offsets.tobytes()
        assert first.models == second.models
        if first.result_delays is None:
            assert second.result_delays is None
        else:
            assert first.result_delays.tobytes() == second.result_delays.tobytes()

    def test_different_seeds_differ(self):
        a = PoissonTraffic(rate_rps=200.0, seed=1).arrivals(2.0)
        b = PoissonTraffic(rate_rps=200.0, seed=2).arrivals(2.0)
        assert a.offsets.tobytes() != b.offsets.tobytes()


class TestShapes:
    def test_constant_traffic_is_evenly_spaced(self):
        trace = ConstantTraffic(rate_rps=100.0).arrivals(1.0)
        assert len(trace) == 100
        np.testing.assert_allclose(np.diff(trace.offsets), 0.01)

    def test_zero_rate_yields_empty_trace(self):
        assert len(ConstantTraffic(rate_rps=0.0).arrivals(1.0)) == 0
        assert len(PoissonTraffic(rate_rps=0.0).arrivals(1.0)) == 0

    def test_poisson_count_near_expectation(self):
        trace = PoissonTraffic(rate_rps=500.0, seed=0).arrivals(4.0)
        # 2000 expected; 5 sigma ~ 224.
        assert 1700 < len(trace) < 2300
        assert float(trace.offsets[-1]) < 4.0

    def test_diurnal_rate_curve_and_peak(self):
        shape = DiurnalTraffic(base_rate_rps=100.0, amplitude=0.5, period_seconds=4.0)
        assert shape.rate(0.0) == pytest.approx(100.0)
        assert shape.rate(1.0) == pytest.approx(150.0)  # sin peak at t = period/4
        assert shape.rate(3.0) == pytest.approx(50.0)
        assert shape.peak_rate == pytest.approx(150.0)

    def test_burst_rate_follows_the_duty_cycle(self):
        shape = BurstTraffic(
            base_rate_rps=10.0, burst_rate_rps=100.0, period_seconds=1.0, duty=0.25
        )
        assert shape.rate(0.1) == pytest.approx(100.0)
        assert shape.rate(0.5) == pytest.approx(10.0)
        assert shape.rate(1.1) == pytest.approx(100.0)
        assert shape.peak_rate == pytest.approx(100.0)

    def test_burst_trace_concentrates_in_bursts(self):
        trace = BurstTraffic(
            base_rate_rps=0.0,
            burst_rate_rps=400.0,
            period_seconds=1.0,
            duty=0.25,
            seed=8,
        ).arrivals(4.0)
        assert len(trace) > 0
        assert np.all((trace.offsets % 1.0) < 0.25)

    def test_ramp_rate_is_linear_then_flat(self):
        shape = RampTraffic(start_rate_rps=0.0, end_rate_rps=100.0, ramp_seconds=2.0)
        assert shape.rate(0.0) == pytest.approx(0.0)
        assert shape.rate(1.0) == pytest.approx(50.0)
        assert shape.rate(5.0) == pytest.approx(100.0)

    def test_superposition_concatenates_component_traces(self):
        a = ConstantTraffic(rate_rps=50.0)
        b = ConstantTraffic(rate_rps=25.0)
        combined = a + b
        assert isinstance(combined, SuperposedTraffic)
        trace = combined.arrivals(1.0)
        assert len(trace) == len(a.arrivals(1.0)) + len(b.arrivals(1.0))
        assert np.all(np.diff(trace.offsets) >= 0)
        # Adding to a superposition flattens instead of nesting.
        triple = combined + ConstantTraffic(rate_rps=10.0)
        assert len(triple.shapes) == 3
        assert combined.rate(0.0) == pytest.approx(75.0)

    def test_replay_trace_clips_to_duration_and_keeps_metadata(self):
        replay = ReplayTrace(
            offsets=[0.1, 0.5, 1.5],
            models=["a", None, "b"],
            result_delays=[0.0, 0.2, 0.3],
        )
        trace = replay.arrivals(1.0)
        assert list(trace.offsets) == [0.1, 0.5]
        assert trace.models == ("a", None)
        np.testing.assert_allclose(trace.result_delays, [0.0, 0.2])

    def test_replayed_trace_round_trips_a_recorded_shape(self):
        recorded = PoissonTraffic(rate_rps=200.0, seed=9).arrivals(1.0)
        replayed = ReplayTrace(offsets=recorded.offsets).arrivals(1.0)
        assert replayed.offsets.tobytes() == recorded.offsets.tobytes()


class TestDecoration:
    def test_model_mix_is_normalized_and_sorted(self):
        shape = PoissonTraffic(rate_rps=10.0, model_mix={"b": 3.0, "a": 1.0})
        assert shape.model_mix == {"a": 0.25, "b": 0.75}

    def test_model_mix_draws_cover_the_mix(self):
        trace = PoissonTraffic(
            rate_rps=500.0, seed=10, model_mix={"a": 1.0, "b": 1.0}
        ).arrivals(2.0)
        assert set(trace.models) == {"a", "b"}

    def test_invalid_model_mix_rejected(self):
        with pytest.raises(ExperimentError):
            PoissonTraffic(rate_rps=1.0, model_mix={"a": -1.0})
        with pytest.raises(ExperimentError):
            PoissonTraffic(rate_rps=1.0, model_mix={"a": 0.0, "b": 0.0})
        with pytest.raises(ExperimentError):
            PoissonTraffic(rate_rps=1.0, model_mix={})

    def test_straggler_fraction_and_delay_range(self):
        trace = PoissonTraffic(
            rate_rps=500.0,
            seed=11,
            straggler_fraction=0.5,
            straggler_delay_seconds=(0.2, 0.4),
        ).arrivals(2.0)
        delays = trace.result_delays
        slow = delays[delays > 0]
        assert 0.3 < slow.size / len(trace) < 0.7
        assert np.all((slow >= 0.2) & (slow <= 0.4))

    def test_invalid_straggler_settings_rejected(self):
        with pytest.raises(ExperimentError):
            PoissonTraffic(rate_rps=1.0, straggler_fraction=1.5)
        with pytest.raises(ExperimentError):
            PoissonTraffic(
                rate_rps=1.0,
                straggler_fraction=0.1,
                straggler_delay_seconds=(0.5, 0.2),
            )

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ExperimentError):
            ConstantTraffic(rate_rps=1.0).arrivals(0.0)
        with pytest.raises(ExperimentError):
            ReplayTrace(offsets=[0.1]).arrivals(-1.0)

    def test_base_class_rate_is_abstract(self):
        with pytest.raises(NotImplementedError):
            TrafficShape().rate(0.0)


class TestAdmissionSimulation:
    def test_unbounded_queue_serves_everything(self):
        trace = ConstantTraffic(rate_rps=100.0).arrivals(1.0)
        sim = simulate_admission(trace, service_seconds_per_request=0.001)
        assert sim.served == len(trace)
        assert sim.shed_queue == sim.shed_deadline == 0
        assert sim.decisions == ("served",) * len(trace)

    def test_overload_sheds_at_the_queue_bound(self):
        # 100 rps against a 10 rps server with a 4-deep queue: most arrivals
        # find the system full and are rejected.
        trace = ConstantTraffic(rate_rps=100.0).arrivals(1.0)
        sim = simulate_admission(
            trace, service_seconds_per_request=0.1, max_queue_depth=4
        )
        assert sim.shed_queue > 0
        assert sim.served + sim.shed_queue == len(trace)
        # The system never holds more than the bound, so the serve rate is
        # pinned to the server: about 10 served in the 1 s window (+ drain).
        assert sim.served <= 4 + 10

    def test_deadline_drops_are_counted_separately(self):
        trace = ConstantTraffic(rate_rps=100.0).arrivals(1.0)
        sim = simulate_admission(
            trace, service_seconds_per_request=0.05, deadline_seconds=0.1
        )
        assert sim.shed_deadline > 0
        assert sim.shed_queue == 0
        assert sim.served + sim.shed_deadline == len(trace)
        assert sim.admitted == len(trace)

    def test_block_policy_admits_after_wait_within_timeout(self):
        reject = simulate_admission(
            ConstantTraffic(rate_rps=50.0).arrivals(1.0),
            service_seconds_per_request=0.04,
            max_queue_depth=2,
            policy="reject",
        )
        block = simulate_admission(
            ConstantTraffic(rate_rps=50.0).arrivals(1.0),
            service_seconds_per_request=0.04,
            max_queue_depth=2,
            policy="block",
            block_timeout_seconds=1.0,
        )
        # Blocking trades the submitter's time for admissions.
        assert block.served >= reject.served
        assert block.shed_queue <= reject.shed_queue

    def test_block_timeout_expiry_sheds(self):
        trace = Trace(offsets=np.array([0.0, 0.0, 0.0]))
        sim = simulate_admission(
            trace,
            service_seconds_per_request=10.0,
            max_queue_depth=1,
            policy="block",
            block_timeout_seconds=0.1,
        )
        assert sim.decisions == ("served", "shed_queue", "shed_queue")

    def test_simulation_is_deterministic(self):
        trace = PoissonTraffic(rate_rps=300.0, seed=12).arrivals(2.0)
        kwargs = dict(
            service_seconds_per_request=0.005,
            max_queue_depth=8,
            deadline_seconds=0.05,
        )
        assert simulate_admission(trace, **kwargs) == simulate_admission(
            trace, **kwargs
        )

    def test_invalid_parameters_rejected(self):
        trace = Trace(offsets=np.array([0.0]))
        with pytest.raises(ExperimentError):
            simulate_admission(trace, service_seconds_per_request=0.0)
        with pytest.raises(ExperimentError):
            simulate_admission(trace, 0.01, policy="drop")
        with pytest.raises(ExperimentError):
            simulate_admission(trace, 0.01, max_queue_depth=-1)


class TestChaosScenarios:
    def test_registry_names(self):
        assert {"burst-storm", "diurnal-with-stuck-at", "straggler-flood"} <= set(
            CHAOS_SCENARIOS
        )

    @pytest.mark.parametrize("name", sorted(CHAOS_SCENARIOS))
    def test_traffic_factories_build_expandable_shapes(self, name):
        scenario = CHAOS_SCENARIOS[name]
        assert scenario.name == name
        shape = scenario.traffic_factory(100.0, 7)
        trace = shape.arrivals(1.0)
        assert len(trace) > 0
        # Scaled to capacity: peak envelope tracks the capacity argument.
        bigger = scenario.traffic_factory(200.0, 7)
        assert bigger.peak_rate == pytest.approx(2.0 * shape.peak_rate)

    def test_scenarios_declare_bounded_queues(self):
        for scenario in CHAOS_SCENARIOS.values():
            assert scenario.max_queue_depth > 0
            assert scenario.fault_models
            assert 0.0 < scenario.slo_availability_target <= 1.0
