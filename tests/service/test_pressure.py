"""Unit tests for the Poisson fault-pressure driver (incl. mixed-model mode)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FaultInjectionError
from repro.memory import StuckAtCells
from repro.service import FaultPressureDriver


def restore(entry, golden) -> None:
    for index, weights in golden.items():
        entry.model.layers[index].set_weights(weights)


class TestClassicDriver:
    def test_fixed_seed_reproduces_the_schedule(self, sync_service, golden_weights):
        _, entry = sync_service
        events = []
        for _ in range(2):
            driver = FaultPressureDriver(entry, seed=7)
            events.append([driver.inject_once() for _ in range(3)])
            restore(entry, golden_weights)
        for first, second in zip(*events):
            assert first.layer_index == second.layer_index
            assert first.flipped_bits == second.flipped_bits
            assert first.affected_weight_indices == second.affected_weight_indices

    def test_inject_once_honours_layer_indices(self, sync_service, golden_weights):
        _, entry = sync_service
        index = entry.parameterized_indices[-1]
        driver = FaultPressureDriver(entry, seed=3, layer_indices=[index])
        try:
            for _ in range(4):
                event = driver.inject_once()
                assert event is not None and event.layer_index == index
        finally:
            restore(entry, golden_weights)

    def test_layer_indices_must_intersect_parameterized(self, sync_service):
        _, entry = sync_service
        with pytest.raises(FaultInjectionError):
            FaultPressureDriver(entry, layer_indices=[10_000])

    def test_exhausted_counts_fresh_events_only(self, sync_service, golden_weights):
        _, entry = sync_service
        driver = FaultPressureDriver(
            entry, seed=5, max_events=2, fault_models={"stuck_at": 1.0}
        )
        try:
            assert not driver.exhausted
            assert driver.inject_once() is not None
            assert driver.inject_once() is not None
            assert driver.exhausted
            # A repair + re-assertion cycle adds events, but none of them are
            # fresh arrivals: the budget stays spent.
            restore(entry, golden_weights)
            assert driver.reassert_once() > 0
            assert driver.exhausted
            assert sum(1 for event in driver.events if event.reasserted) >= 1
        finally:
            restore(entry, golden_weights)

    def test_classic_events_are_tagged_bit_flip(self, sync_service, golden_weights):
        _, entry = sync_service
        driver = FaultPressureDriver(entry, seed=1)
        try:
            event = driver.inject_once()
            assert event.fault_model == "bit_flip" and not event.reasserted
        finally:
            restore(entry, golden_weights)


class TestMixedModelDriver:
    def test_events_carry_their_model_name(self, sync_service, golden_weights):
        _, entry = sync_service
        driver = FaultPressureDriver(
            entry,
            seed=11,
            fault_models={"row_hammer": 1.0, "adversarial": 1.0, "ecc_escape": 1.0},
        )
        try:
            names = {driver.inject_once().fault_model for _ in range(9)}
            assert names <= {"row_hammer", "adversarial", "ecc_escape"}
            assert len(names) >= 2
        finally:
            restore(entry, golden_weights)

    def test_model_instances_are_accepted(self, sync_service, golden_weights):
        _, entry = sync_service
        stuck = StuckAtCells(cells_per_event=1)
        driver = FaultPressureDriver(entry, seed=2, fault_models=[stuck])
        try:
            event = driver.inject_once()
            assert event.fault_model == "stuck_at"
            assert len(stuck._cells) == 1  # the driver used our instance
        finally:
            restore(entry, golden_weights)

    def test_reassert_recorrupts_repaired_layer(self, sync_service, golden_weights):
        _, entry = sync_service
        driver = FaultPressureDriver(entry, seed=4, fault_models={"stuck_at": 1.0})
        try:
            event = driver.inject_once()
            corrupted = entry.model.layers[event.layer_index].get_weights().copy()
            restore(entry, golden_weights)
            assert driver.reassert_once() == event.flipped_bits
            np.testing.assert_array_equal(
                entry.model.layers[event.layer_index].get_weights().view(np.uint32),
                corrupted.view(np.uint32),
            )
            # Nothing repaired since: the standing fault contributes nothing.
            assert driver.reassert_once() == 0
        finally:
            restore(entry, golden_weights)

    def test_undetectable_zoo_injections_are_reverted(self, sync_service, golden_weights):
        _, entry = sync_service
        # min_magnitude=0 with low-order bit flips routinely lands below the
        # detection tolerance; every such draw must be rolled back.
        from repro.memory import RowHammerBurst

        low_bits = RowHammerBurst(
            row_words=1, bit_positions=(0,), min_magnitude=0.0
        )
        driver = FaultPressureDriver(entry, seed=6, fault_models=[low_bits], max_attempts=3)
        try:
            before = {
                index: entry.model.layers[index].get_weights().copy()
                for index in entry.parameterized_indices
            }
            event = driver.inject_once()
            if event is None:
                assert driver.skipped_undetectable > 0
                for index, weights in before.items():
                    np.testing.assert_array_equal(
                        entry.model.layers[index].get_weights(), weights
                    )
        finally:
            restore(entry, golden_weights)

    def test_nonpositive_weight_rejected(self, sync_service):
        _, entry = sync_service
        with pytest.raises(FaultInjectionError):
            FaultPressureDriver(entry, fault_models={"row_hammer": 0.0})

    def test_unknown_model_name_rejected(self, sync_service):
        _, entry = sync_service
        with pytest.raises(FaultInjectionError):
            FaultPressureDriver(entry, fault_models=["no_such_model"])

    def test_nonpositive_reassert_interval_rejected(self, sync_service):
        _, entry = sync_service
        with pytest.raises(FaultInjectionError):
            FaultPressureDriver(entry, reassert_interval_seconds=0.0)

    def test_scratch_injection_on_valid_padding_model_is_empty(
        self, sync_service, golden_weights
    ):
        _, entry = sync_service
        # mnist_reduced uses valid padding: no pinned scratch buffers, so the
        # activation model has nothing to corrupt and no event is recorded.
        driver = FaultPressureDriver(entry, seed=8, fault_models={"activation": 1.0})
        try:
            assert driver.inject_once() is None
            assert driver.events == []
        finally:
            restore(entry, golden_weights)
