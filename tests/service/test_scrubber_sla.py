"""Tests for the scrubber (detection/quarantine/recovery) and the SLA tracker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.availability import AvailabilityModel
from repro.core.checkpoint import weight_fingerprint
from repro.service import SLATracker
from repro.service.pressure import FaultPressureDriver


def bit_identical(current: np.ndarray, golden: np.ndarray) -> bool:
    return bool(
        np.array_equal(current.view(np.uint32), np.asarray(golden).view(np.uint32))
    )


def _corrupt(entry, index: int, word: int, bit: int) -> None:
    layer = entry.model.layers[index]
    weights = layer.get_weights()
    bits = weights.view(np.uint32).ravel().copy()
    bits[word] ^= np.uint32(1 << bit)
    layer.set_weights(bits.view(np.float32).reshape(weights.shape))


class TestScrubber:
    @pytest.mark.parametrize("kind", ["conv", "bias", "dense"])
    def test_single_corruption_recovers_bit_exact(
        self, sync_service, golden_weights, kind
    ):
        service, entry = sync_service
        from repro.nn.layers import Bias, Conv2D, Dense

        layer_type = {"conv": Conv2D, "bias": Bias, "dense": Dense}[kind]
        index = next(
            i
            for i in entry.parameterized_indices
            if isinstance(entry.model.layers[i], layer_type)
        )
        _corrupt(entry, index, word=1, bit=29)
        service.scrub_now(entry.name)
        assert entry.is_healthy()
        assert index in entry.ever_quarantined
        assert bit_identical(
            entry.model.layers[index].get_weights(), golden_weights[index]
        )
        report = entry.tracker.report(0.25)
        assert report.error_events_detected >= 1
        assert report.layers_recovered_bit_exact >= 1

    def test_simultaneous_conv_and_bias_corruption(
        self, sync_service, golden_weights
    ):
        """The mutually-dependent pair between two checkpoints heals in one job."""
        service, entry = sync_service
        from repro.nn.layers import Bias, Conv2D

        conv = [
            i
            for i in entry.parameterized_indices
            if isinstance(entry.model.layers[i], Conv2D)
        ][-1]
        bias = conv + 1
        assert isinstance(entry.model.layers[bias], Bias)
        _corrupt(entry, conv, word=5, bit=28)
        _corrupt(entry, bias, word=2, bit=27)
        service.scrub_now(entry.name)
        assert entry.is_healthy()
        for index in (conv, bias):
            assert bit_identical(
                entry.model.layers[index].get_weights(), golden_weights[index]
            )

    def test_clean_model_never_quarantined(self, sync_service):
        service, entry = sync_service
        service.scrub_now(entry.name)
        assert entry.is_healthy()
        assert not entry.ever_quarantined
        report = entry.tracker.report(0.25)
        assert report.detections >= 1
        assert report.recoveries == 0

    def test_accepted_degraded_layer_is_skipped_until_weights_change(
        self, sync_service, golden_weights
    ):
        service, entry = sync_service
        index = entry.parameterized_indices[0]
        _corrupt(entry, index, word=0, bit=28)
        # Plant a degraded acceptance of the *current* (corrupted) state.
        entry.degraded[index] = weight_fingerprint(
            entry.model.layers[index].get_weights()
        )
        service.scrub_now(entry.name)
        assert entry.is_healthy()
        assert index in entry.degraded  # still accepted, not re-quarantined
        # A further fault changes the fingerprint and re-opens recovery.
        _corrupt(entry, index, word=3, bit=27)
        service.scrub_now(entry.name)
        assert entry.is_healthy()
        assert index not in entry.degraded
        assert bit_identical(
            entry.model.layers[index].get_weights(), golden_weights[index]
        )

    def test_reopen_degraded_restores_stashed_bits(self, sync_service):
        service, entry = sync_service
        index = entry.parameterized_indices[0]
        golden = entry.model.layers[index].get_weights()
        _corrupt(entry, index, word=0, bit=28)
        stored = entry.model.layers[index].get_weights()
        entry.degraded[index] = b"whatever"
        entry.degraded_originals[index] = stored
        entry.model.layers[index].set_weights(golden * 0)  # bogus estimate
        reopened = service.scrubber.reopen_degraded(entry)
        assert reopened == [index]
        assert not entry.degraded
        assert bit_identical(entry.model.layers[index].get_weights(), stored)
        service.scrub_now(entry.name)
        assert bit_identical(entry.model.layers[index].get_weights(), golden)


class TestFaultPressureDriver:
    def test_inject_once_records_detectable_ground_truth(self, sync_service):
        service, entry = sync_service
        driver = FaultPressureDriver(entry, seed=3)
        event = driver.inject_once()
        assert event is not None
        assert event.layer_index in entry.parameterized_indices
        report = entry.protector.detect(layer_indices=[event.layer_index])
        assert report.erroneous_layers == [event.layer_index]
        assert driver.injected_layers(entry.name) == {event.layer_index}
        service.scrub_now(entry.name)
        assert entry.is_healthy()


class TestSLATracker:
    def test_downtime_accounting(self):
        clock = iter(float(t) for t in range(100)).__next__
        tracker = SLATracker("m", model_bytes=1000, clock=clock)
        tracker.start()  # t=0
        tracker.mark_unavailable()  # t=1
        tracker.mark_available()  # t=2 -> 1s downtime
        observed = tracker.observed_availability()  # elapsed t=3
        assert observed == pytest.approx(1.0 - 1.0 / 3.0)

    def test_report_uses_measured_times(self):
        tracker = SLATracker("m", model_bytes=37890 * 4)
        tracker.start()
        tracker.record_detection(0.001)
        tracker.record_detection(0.003)
        tracker.record_recovery(0.5, layers=1, bit_exact_layers=1)
        tracker.record_errors_detected(1)
        report = tracker.report(scrub_period_seconds=0.25)
        assert report.mean_detection_seconds == pytest.approx(0.002)
        assert report.mean_recovery_seconds == pytest.approx(0.5)
        assert report.max_recovery_seconds == pytest.approx(0.5)
        assert report.error_events_detected == 1
        assert report.layers_recovered_bit_exact == 1
        # Detection duty cycle ~0.8% at a 0.25 s period -> availability ~0.992.
        assert 0.95 < report.availability < 1.0
        assert report.minimum_accuracy > 0.999999

    def test_availability_model_round_trip(self):
        tracker = SLATracker("m", model_bytes=10**6)
        tracker.start()
        tracker.record_detection(0.002)
        tracker.record_recovery(0.1, layers=1, bit_exact_layers=1)
        model = tracker.availability_model(scrub_period_seconds=0.5)
        assert isinstance(model, AvailabilityModel)
        assert model.detection_seconds == pytest.approx(0.002)
        assert model.recovery_seconds == pytest.approx(0.1)

    def test_overwhelmed_maintenance_reports_zero_availability(self):
        tracker = SLATracker("m", model_bytes=1000)
        tracker.start()
        tracker.record_detection(2.0)
        tracker.record_recovery(5.0, layers=1, bit_exact_layers=0)
        report = tracker.report(
            scrub_period_seconds=1.0, error_interval_seconds=3.0
        )
        assert report.availability == 0.0
