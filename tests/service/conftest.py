"""Shared fixtures for the service-runtime tests."""

from __future__ import annotations

import pytest

from repro.service import SelfHealingService, ServiceConfig


@pytest.fixture
def sync_service():
    """A service with synchronous (inline) recovery and a tiny conv model.

    ``recovery_async=False`` makes ``scrub_now`` run detection *and* recovery
    before returning, which keeps the unit tests deterministic.
    """
    service = SelfHealingService(
        ServiceConfig(recovery_async=False, scrub_period_seconds=0.05)
    )
    entry = service.load_model("mnist_reduced")
    return service, entry


@pytest.fixture
def golden_weights(sync_service):
    """Golden weight snapshot of every parameterized layer."""
    _, entry = sync_service
    return {
        index: entry.model.layers[index].get_weights()
        for index in entry.parameterized_indices
    }
