"""Edge-case tests for the soak harness helpers (repro.service.runtime)."""

from __future__ import annotations

import pytest

from repro.service import run_soak
from repro.service.runtime import SelfHealingService, latency_percentile


class TestLatencyPercentile:
    def test_empty_sample_is_zero(self):
        assert latency_percentile([], 50) == 0.0
        assert latency_percentile([], 0) == 0.0
        assert latency_percentile([], 100) == 0.0

    def test_single_sample_is_every_percentile(self):
        for q in (0, 1, 50, 99, 100):
            assert latency_percentile([0.25], q) == 0.25

    def test_linear_interpolation_between_order_statistics(self):
        assert latency_percentile([1.0, 2.0], 50) == pytest.approx(1.5)
        assert latency_percentile([1.0, 2.0, 3.0, 4.0], 25) == pytest.approx(1.75)

    def test_endpoints_are_min_and_max(self):
        sample = [3.0, 1.0, 2.0]
        assert latency_percentile(sample, 0) == 1.0
        assert latency_percentile(sample, 100) == 3.0

    def test_out_of_range_percentile_rejected(self):
        with pytest.raises(ValueError):
            latency_percentile([1.0], -1)
        with pytest.raises(ValueError):
            latency_percentile([1.0], 100.5)


class TestTrafficThreadErrors:
    def test_submit_crash_surfaces_in_soak_result(self, monkeypatch):
        def boom(self, model_name, sample):
            raise RuntimeError("submit exploded")

        monkeypatch.setattr(SelfHealingService, "submit", boom)
        result = run_soak(
            network="mnist_reduced",
            duration_seconds=0.3,
            max_fault_events=0,
            scrub_period_seconds=0.1,
            seed=0,
        )
        assert result.errors == ("RuntimeError: submit exploded",)
        assert result.requests_completed == 0

    def test_clean_soak_reports_no_errors(self):
        result = run_soak(
            network="mnist_reduced",
            duration_seconds=0.3,
            max_fault_events=0,
            scrub_period_seconds=0.1,
            seed=0,
        )
        assert result.errors == ()
        assert result.requests_completed > 0
