"""Tests for the model registry and the batching inference engine."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.exceptions import ExperimentError, ShapeError
from repro.service import ModelRegistry, SelfHealingService, ServiceConfig


class TestModelRegistry:
    def test_load_initializes_protection(self, sync_service):
        _, entry = sync_service
        assert entry.protector.initialized
        assert entry.parameterized_indices
        assert entry.is_healthy()

    def test_conv_layers_store_crc_codes(self, sync_service):
        """`store_conv_crc` equips every conv layer for self-contained repair."""
        _, entry = sync_service
        store = entry.protector.store
        from repro.nn.layers import Conv2D

        conv_indices = [
            index
            for index in entry.parameterized_indices
            if isinstance(entry.model.layers[index], Conv2D)
        ]
        assert conv_indices
        for index in conv_indices:
            assert index in store.crc_codes
            assert store.golden_fingerprint_for(index)

    def test_duplicate_name_rejected(self, sync_service):
        service, entry = sync_service
        with pytest.raises(ExperimentError):
            service.registry.register(entry.name, entry.model)

    def test_unknown_lookups_raise(self):
        registry = ModelRegistry()
        with pytest.raises(ExperimentError):
            registry.get("nope")
        with pytest.raises(ExperimentError):
            registry.load("not_a_network")

    def test_quarantine_bookkeeping(self, sync_service):
        _, entry = sync_service
        index = entry.parameterized_indices[0]
        entry.quarantine([index])
        assert not entry.is_healthy()
        assert index in entry.quarantined
        assert index in entry.ever_quarantined
        entry.clear_quarantine([index])
        assert entry.is_healthy()
        assert index in entry.ever_quarantined  # ground truth never clears


class TestInferenceEngine:
    def test_predictions_match_direct_forward(self, sync_service, rng):
        service, entry = sync_service
        samples = rng.random((5,) + entry.model.input_shape).astype(np.float32)
        expected = entry.model.predict(samples, use_plan=False)
        with service:
            outputs = service.predict(entry.name, samples, timeout=10.0)
        # Served through the certified-fused default: tolerance-equivalent to
        # the seed forward (the ULP certification bounds the divergence) and
        # byte-identical to a fused predict of the same batch.
        np.testing.assert_allclose(outputs, expected, rtol=1e-5, atol=1e-6)
        assert (
            outputs.tobytes()
            == entry.model.predict(samples, fused=True).tobytes()
        )

    def test_latency_and_stats_recorded(self, sync_service, rng):
        service, entry = sync_service
        sample = rng.random(entry.model.input_shape).astype(np.float32)
        with service:
            request = service.submit(entry.name, sample)
            request.result(timeout=10.0)
        assert request.done() and not request.failed
        assert request.latency_seconds is not None and request.latency_seconds > 0
        assert entry.stats.requests_completed >= 1
        assert entry.stats.batches_executed >= 1
        assert entry.stats.served_during_quarantine == 0

    def test_bad_shape_rejected_at_submit(self, sync_service):
        service, entry = sync_service
        with service:
            with pytest.raises(ShapeError):
                service.submit(entry.name, np.zeros((3, 3), dtype=np.float32))

    def test_submit_requires_running_engine(self, sync_service, rng):
        service, entry = sync_service
        sample = rng.random(entry.model.input_shape).astype(np.float32)
        with pytest.raises(ExperimentError):
            service.submit(entry.name, sample)
        with service:
            service.submit(entry.name, sample).result(timeout=10.0)
        with pytest.raises(ExperimentError):
            service.submit(entry.name, sample)

    def test_quarantine_pauses_serving_until_healthy(self, sync_service, rng):
        service, entry = sync_service
        index = entry.parameterized_indices[0]
        sample = rng.random(entry.model.input_shape).astype(np.float32)
        # Engine only -- with the scrubber running it would immediately
        # re-verify the (phantom) quarantine and lift it.
        service.start(scrub=False)
        try:
            entry.quarantine([index])
            request = service.submit(entry.name, sample)
            time.sleep(0.2)
            assert not request.done()  # no request is served while quarantined
            entry.clear_quarantine([index])
            request.result(timeout=10.0)
        finally:
            service.stop()
        assert entry.stats.served_during_quarantine == 0

    def test_model_added_while_running_gets_a_worker(self, rng):
        service = SelfHealingService(ServiceConfig(recovery_async=False))
        with service:
            entry = service.load_model("mnist_reduced", name="late")
            sample = rng.random(entry.model.input_shape).astype(np.float32)
            service.submit("late", sample).result(timeout=10.0)
        assert entry.stats.requests_completed == 1

    def test_partial_batches_are_not_padded_by_default(self, sync_service, rng):
        service, entry = sync_service
        sample = rng.random(entry.model.input_shape).astype(np.float32)
        with service:
            service.submit(entry.name, sample).result(timeout=10.0)
        # A 1-request batch computes exactly 1 sample (the seed engine padded
        # it to max_batch and threw the rest away).
        assert entry.stats.samples_served >= 1
        assert entry.stats.samples_padded == 0

    def test_plan_cache_sized_for_max_batch(self):
        service = SelfHealingService(ServiceConfig(recovery_async=False, max_batch=24))
        entry = service.load_model("mnist_reduced", name="big_batches")
        assert entry.model.plan_cache_size >= 24 + 2

    def test_fixed_batch_shape_pads_and_counts(self, rng):
        service = SelfHealingService(
            ServiceConfig(recovery_async=False, fixed_batch_shape=True, max_batch=4)
        )
        with service:
            entry = service.load_model("mnist_reduced", name="padded")
            sample = rng.random(entry.model.input_shape).astype(np.float32)
            service.submit("padded", sample).result(timeout=10.0)
        assert entry.stats.samples_served == 1
        assert entry.stats.samples_padded == 3

    def test_engine_outputs_match_unbatched_predict_exactly(self, rng):
        # With fused serving pinned off, the engine serves through the
        # bit-exact plan and results must be byte-identical to a direct
        # (seed-path) forward of the same samples.
        service = SelfHealingService(
            ServiceConfig(recovery_async=False, fused_forward=False)
        )
        entry = service.load_model("mnist_reduced")
        samples = rng.random((5,) + entry.model.input_shape).astype(np.float32)
        with service:
            outputs = service.predict(entry.name, samples, timeout=10.0)
        expected = entry.model.predict(samples, use_plan=False)
        assert outputs.tobytes() == expected.tobytes()
        assert entry.stats.fused_served == 0
        assert entry.stats.fused_fallbacks == 0

    def test_fused_default_serves_certified_and_attributes_stats(
        self, sync_service, rng
    ):
        service, entry = sync_service
        samples = rng.random((5,) + entry.model.input_shape).astype(np.float32)
        with service:
            service.predict(entry.name, samples, timeout=10.0)
        # The default config serves fused behind certification: every request
        # was answered by a certified fused plan, the (one) calibration run is
        # accounted, and the uncertified-serve invariant held.
        assert entry.stats.fused_served == len(samples)
        assert entry.stats.uncertified_fused_served == 0
        assert entry.stats.fusion_certifications >= 1
        assert entry.model.plan_stats.certifications >= 1

    def test_fusion_blocklist_follows_quarantine(self, sync_service):
        _, entry = sync_service
        index = entry.parameterized_indices[0]
        name = entry.model.layers[index].name
        entry.quarantine([index])
        assert name in entry.model.fusion_blocklist
        entry.clear_quarantine([index])
        assert name not in entry.model.fusion_blocklist


class TestPlanRevalidation:
    def test_quarantine_lift_keeps_plans_after_bit_exact_restore(self, sync_service, rng):
        _, entry = sync_service
        model = entry.model
        index = entry.parameterized_indices[0]
        inputs = rng.random((3,) + model.input_shape).astype(np.float32)
        model.predict(inputs)
        compiles = model.plan_stats.compiles
        golden = model.layers[index].get_weights()
        # Bit-exact repair: same bytes written back -> plan survives the sweep.
        entry.quarantine([index])
        model.layers[index].set_weights(golden)
        entry.clear_quarantine([index])
        assert entry.stats.plan_invalidations == 0
        model.predict(inputs)
        assert model.plan_stats.compiles == compiles

    def test_quarantine_lift_drops_plans_after_weight_change(self, sync_service, rng):
        _, entry = sync_service
        model = entry.model
        index = entry.parameterized_indices[0]
        inputs = rng.random((3,) + model.input_shape).astype(np.float32)
        model.predict(inputs)
        corrupted = model.layers[index].get_weights()
        corrupted.flat[0] += 1.0
        entry.quarantine([index])
        model.layers[index].set_weights(corrupted)
        entry.clear_quarantine([index])
        assert entry.stats.plan_invalidations >= 1
        # The next serve recompiles against the live weights and stays
        # bit-identical to the seed forward.
        assert model.predict(inputs).tobytes() == model.predict(
            inputs, use_plan=False
        ).tobytes()
