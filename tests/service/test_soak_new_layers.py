"""End-to-end soak tests for the handler-registry layer types.

The ISSUE's acceptance scenario, run against the two zoo networks that enter
purely through new handler modules: ``mnist_bn`` (folded BatchNorm affines in
conv and dense positions) and ``cifar_depthwise`` (a MobileNet-style
depthwise + batch-norm block).  Staggered Poisson bit flips land under
continuous inference -- targeted so the new layer types are guaranteed to be
corrupted -- and every corruption must be detected, every layer restored
bit-exactly, and availability stay >= 0.99.
"""

from __future__ import annotations

import pytest

from repro.service import ServiceConfig, run_soak
from repro.zoo import network_table


def _layer_indices(network: str, *kinds: str) -> list[int]:
    model = network_table()[network].builder()
    return [
        index
        for index, layer in enumerate(model.layers)
        if type(layer).__name__ in kinds
    ]


@pytest.fixture(scope="module")
def bn_soak_result():
    # Target the three BatchNorm layers plus the two convs, so conv
    # recoveries exercise affine inversion through their BatchNorm neighbours.
    targets = _layer_indices("mnist_bn", "BatchNorm", "Conv2D")
    return run_soak(
        network="mnist_bn",
        duration_seconds=5.0,
        mean_fault_interval_seconds=0.04,
        max_fault_events=20,
        scrub_period_seconds=ServiceConfig().scrub_period_seconds,
        request_interval_seconds=0.002,
        seed=3,
        fault_layer_indices=targets,
    )


@pytest.fixture(scope="module")
def depthwise_soak_result():
    targets = _layer_indices("cifar_depthwise", "DepthwiseConv2D", "BatchNorm", "Conv2D")
    return run_soak(
        network="cifar_depthwise",
        duration_seconds=5.0,
        mean_fault_interval_seconds=0.04,
        max_fault_events=20,
        scrub_period_seconds=ServiceConfig().scrub_period_seconds,
        request_interval_seconds=0.002,
        seed=3,
        fault_layer_indices=targets,
    )


class TestBatchNormSoak:
    def test_staggered_flips_hit_batchnorm_layers(self, bn_soak_result):
        assert len(bn_soak_result.fault_events) >= 20
        stamps = [event.timestamp for event in bn_soak_result.fault_events]
        assert max(stamps) - min(stamps) > 0.2
        bn_indices = set(_layer_indices("mnist_bn", "BatchNorm"))
        assert bn_soak_result.injected_layers & bn_indices, (
            "no BatchNorm layer was ever corrupted -- the scenario did not "
            "exercise the new handler"
        )

    def test_every_corruption_detected(self, bn_soak_result):
        assert bn_soak_result.injected_layers
        assert bn_soak_result.all_errors_detected

    def test_recovered_bit_exact(self, bn_soak_result):
        assert bn_soak_result.converged
        assert bn_soak_result.bit_exact
        assert bn_soak_result.sla.layers_degraded == 0

    def test_serving_contract_held(self, bn_soak_result):
        assert bn_soak_result.requests_completed > 0
        assert bn_soak_result.served_during_quarantine == 0
        assert bn_soak_result.requests_failed == 0

    def test_availability_sla(self, bn_soak_result):
        assert bn_soak_result.sla.availability >= 0.99


class TestDepthwiseSoak:
    def test_staggered_flips_hit_depthwise_and_batchnorm(self, depthwise_soak_result):
        assert len(depthwise_soak_result.fault_events) >= 20
        stamps = [event.timestamp for event in depthwise_soak_result.fault_events]
        assert max(stamps) - min(stamps) > 0.2
        new_type_indices = set(
            _layer_indices("cifar_depthwise", "DepthwiseConv2D", "BatchNorm")
        )
        assert depthwise_soak_result.injected_layers & new_type_indices, (
            "neither the depthwise kernel nor the batch norm was ever "
            "corrupted -- the scenario did not exercise the new handlers"
        )

    def test_every_corruption_detected(self, depthwise_soak_result):
        assert depthwise_soak_result.injected_layers
        assert depthwise_soak_result.all_errors_detected

    def test_recovered_bit_exact(self, depthwise_soak_result):
        assert depthwise_soak_result.converged
        assert depthwise_soak_result.bit_exact
        assert depthwise_soak_result.sla.layers_degraded == 0

    def test_serving_contract_held(self, depthwise_soak_result):
        assert depthwise_soak_result.requests_completed > 0
        assert depthwise_soak_result.served_during_quarantine == 0
        assert depthwise_soak_result.requests_failed == 0

    def test_availability_sla(self, depthwise_soak_result):
        assert depthwise_soak_result.sla.availability >= 0.99
