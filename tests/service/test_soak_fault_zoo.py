"""End-to-end soaks for the fault-model zoo (the ISSUE's acceptance scenarios).

Two scenarios beyond the classic bit-flip soak:

* **Stuck-at cells** -- persistent faults re-assert after every bit-exact
  repair, so the scrubber's repeat-offender tracking must promote the cells
  to the blacklist and heal them via the remap pass, keeping availability
  >= 0.99 at the default scrub period.
* **Activation/scratch corruption** -- faults land in ForwardPlan-owned pad
  buffers that CheckpointStore cannot see; the per-serve scratch canary must
  catch (and heal) them with zero weight-checkpoint involvement.
"""

from __future__ import annotations

import pytest

from repro.service import SCRATCH_LAYER_NAME, run_soak


@pytest.fixture(scope="module")
def stuck_at_result():
    return run_soak(
        network="mnist_reduced",
        duration_seconds=5.0,
        mean_fault_interval_seconds=0.8,
        scrub_period_seconds=0.25,
        request_interval_seconds=0.002,
        seed=3,
        fault_models={"stuck_at": 1.0},
        reassert_interval_seconds=0.1,
    )


@pytest.fixture(scope="module")
def activation_result():
    return run_soak(
        network="cifar_reduced",
        duration_seconds=4.0,
        mean_fault_interval_seconds=0.3,
        scrub_period_seconds=0.25,
        request_interval_seconds=0.002,
        seed=5,
        fault_models={"activation": 1.0},
    )


@pytest.fixture(scope="module")
def fused_pressure_result():
    # mnist_bn folds its BatchNorms into the conv kernels, so fused serving
    # here exercises the full certification surface under weight pressure.
    return run_soak(
        network="mnist_bn",
        duration_seconds=4.0,
        mean_fault_interval_seconds=0.4,
        scrub_period_seconds=0.25,
        request_interval_seconds=0.002,
        seed=7,
    )


class TestFusedServingSoak:
    def test_fused_serving_stays_certified_under_pressure(
        self, fused_pressure_result
    ):
        # The certified-fusion invariant (ISSUE satellite): every fused serve
        # is backed by a passing certificate, no matter how the fault driver
        # mangles the weights mid-flight.  Corruption invalidates the plan
        # (stale epoch), recompiles pick up a new digest, and the new digest
        # either re-certifies or falls back to the bit-exact plan.
        result = fused_pressure_result
        assert result.fault_events
        assert result.fused_served > 0
        assert result.uncertified_fused_served == 0

    def test_recovery_invariants_hold_with_fusion_on(self, fused_pressure_result):
        result = fused_pressure_result
        assert result.all_errors_detected
        assert result.bit_exact
        assert result.converged
        assert result.requests_completed > 0
        assert result.requests_failed == 0
        assert result.sla.availability >= 0.99


class TestStuckAtSoak:
    def test_persistent_faults_reasserted(self, stuck_at_result):
        fresh = [e for e in stuck_at_result.fault_events if not e.reasserted]
        reasserted = [e for e in stuck_at_result.fault_events if e.reasserted]
        assert fresh and reasserted
        assert all(e.fault_model == "stuck_at" for e in stuck_at_result.fault_events)

    def test_repeat_offenders_blacklisted_and_remapped(self, stuck_at_result):
        # The scrubber saw the same cells dirty after bit-exact repairs,
        # promoted them to stuck-at hardware, and healed later re-assertions
        # through the remap pass instead of full recovery cycles.
        assert stuck_at_result.blacklisted_cells >= 1
        assert stuck_at_result.remap_repairs >= 1

    def test_detected_recovered_bit_exact(self, stuck_at_result):
        assert stuck_at_result.injected_layers
        assert stuck_at_result.all_errors_detected
        assert stuck_at_result.bit_exact
        assert stuck_at_result.converged

    def test_availability_sla(self, stuck_at_result):
        assert stuck_at_result.sla.availability >= 0.99
        assert stuck_at_result.requests_completed > 0
        assert stuck_at_result.requests_failed == 0


class TestActivationSoak:
    def test_scratch_canary_detects_the_corruption(self, activation_result):
        events = activation_result.fault_events
        assert events
        assert all(e.layer_name == SCRATCH_LAYER_NAME for e in events)
        assert all(e.layer_index == -1 for e in events)
        # One serve heals *all* standing scratch dirt, so two injections
        # landing between consecutive serves coalesce into a single canary
        # detection; the count is therefore >= 1 but not >= len(events).
        assert activation_result.scratch_detections >= 1

    def test_checkpoint_store_never_involved(self, activation_result):
        # Ground truth: no weight layer was corrupted, and the scrubber's
        # checkpoint-based detection never quarantined anything.
        assert activation_result.injected_layers == frozenset()
        assert activation_result.detected_layers == frozenset()

    def test_weights_untouched_and_serving_clean(self, activation_result):
        assert activation_result.bit_exact
        assert activation_result.converged
        assert activation_result.requests_completed > 0
        assert activation_result.requests_failed == 0
        assert activation_result.sla.availability >= 0.99
