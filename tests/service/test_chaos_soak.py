"""Acceptance tests for the chaos harness: overload soaks and SLO gating.

The tentpole criterion: a chaos soak at 3x the measured sustained capacity
under mixed fault pressure keeps admitted-request availability >= 0.99 with
bounded queue memory, drains without hangs, and emits a machine-readable
:class:`SLOReport`.  Capacity is measured on this machine (via
:func:`calibrate_capacity`), so the overload factor means the same thing
everywhere.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ExperimentError
from repro.service import (
    BurstTraffic,
    ConstantTraffic,
    ServiceConfig,
    calibrate_capacity,
    run_chaos_scenario,
    run_soak,
)


@pytest.fixture(scope="module")
def capacity_rps():
    return calibrate_capacity(samples=192, seed=0)


class TestCalibration:
    def test_capacity_is_a_sane_rate(self, capacity_rps):
        # Even a slow CI box clears hundreds of single-sample requests/s on
        # the tiny reduced network.
        assert capacity_rps > 50.0


class TestSoakWithTraffic:
    def test_overloaded_soak_drains_clean(self, capacity_rps):
        """Drain-after-overload: every request resolves, nothing hangs."""
        result = run_soak(
            duration_seconds=1.5,
            traffic=ConstantTraffic(rate_rps=3.0 * capacity_rps),
            mean_fault_interval_seconds=0.4,
            scrub_period_seconds=0.1,
            seed=2,
            service_config=ServiceConfig(max_queue_depth=64, admission_policy="reject"),
        )
        assert result.errors == ()
        assert result.converged
        assert result.requests_completed > 0
        assert result.requests_shed > 0  # 3x overload must shed
        assert result.queue_depth_highwater <= 64
        assert result.slo is not None
        # Shed requests never count against admitted availability.
        assert result.slo.shed_total == result.requests_shed

    def test_slo_accounting_balances(self, capacity_rps):
        result = run_soak(
            duration_seconds=1.0,
            traffic=ConstantTraffic(rate_rps=0.5 * capacity_rps),
            mean_fault_interval_seconds=0.5,
            scrub_period_seconds=0.1,
            seed=3,
            service_config=ServiceConfig(max_queue_depth=128),
        )
        slo = result.slo
        assert slo.admitted == slo.served + slo.failed + slo.shed_deadline + slo.pending
        assert slo.served == slo.served_healthy + slo.served_degraded
        assert 0.0 <= slo.admitted_availability <= 1.0


class TestChaosAcceptance:
    def test_three_x_overload_meets_the_slo(self, capacity_rps):
        """The headline acceptance run: 3x capacity, mixed faults, SLO >= 0.99."""
        result = run_chaos_scenario(
            "burst-storm",
            duration_seconds=2.0,
            seed=0,
            capacity_rps=capacity_rps,
        )
        soak = result.soak
        assert result.passed, result.violations
        assert soak.slo.admitted_availability >= 0.99
        assert soak.converged
        assert soak.uncertified_fused_served == 0
        assert soak.queue_depth_highwater <= 256  # the scenario's bound
        assert soak.errors == ()
        # Overload actually happened: the bursts run at 3x capacity.
        assert soak.requests_shed > 0

    def test_result_is_machine_readable(self, capacity_rps):
        result = run_chaos_scenario(
            "straggler-flood",
            duration_seconds=1.0,
            seed=1,
            capacity_rps=capacity_rps,
        )
        payload = result.as_dict()
        encoded = json.loads(json.dumps(payload))
        assert encoded["scenario"] == "straggler-flood"
        assert "slo" in encoded
        assert encoded["slo"]["admitted_availability"] == pytest.approx(
            result.soak.slo.admitted_availability
        )
        assert isinstance(encoded["violations"], list)

    def test_unknown_scenario_raises_with_the_valid_names(self):
        with pytest.raises(ExperimentError, match="burst-storm"):
            run_chaos_scenario("not-a-scenario", capacity_rps=100.0)

    def test_violations_flag_a_failing_run(self, capacity_rps):
        """An availability miss turns into a reported violation, not a crash."""
        result = run_chaos_scenario(
            "diurnal-with-stuck-at",
            duration_seconds=1.5,
            seed=4,
            capacity_rps=capacity_rps,
            service_config=ServiceConfig(
                # A quarantine wait too short to ride out recovery: batches
                # that land during a quarantine fail, and the judge reports
                # the availability miss instead of crashing.
                quarantine_wait_seconds=0.001,
            ),
        )
        assert isinstance(result.violations, tuple)
        if result.soak.slo.admitted_availability < 0.99:
            assert not result.passed
            assert any("availability" in v for v in result.violations)


class TestTrafficDeterminism:
    def test_same_seed_same_trace_same_admission_sim(self, capacity_rps):
        shape_a = BurstTraffic(
            base_rate_rps=0.5 * capacity_rps,
            burst_rate_rps=3.0 * capacity_rps,
            duty=0.35,
            seed=7,
        )
        shape_b = BurstTraffic(
            base_rate_rps=0.5 * capacity_rps,
            burst_rate_rps=3.0 * capacity_rps,
            duty=0.35,
            seed=7,
        )
        assert (
            shape_a.arrivals(2.0).offsets.tobytes()
            == shape_b.arrivals(2.0).offsets.tobytes()
        )
