"""Unit tests for the bit-exact repair toolbox."""

from __future__ import annotations

import numpy as np

from repro.core.checkpoint import weight_fingerprint
from repro.crc.twod import TwoDimensionalCRC
from repro.service.repair import (
    crc_guided_kernel_repair,
    estimate_guided_repair,
    snap_to_bit_flips,
    sparse_bias_repair,
    sparse_kernel_repair,
)


def _flip(values: np.ndarray, index: int, bit: int) -> np.ndarray:
    bits = np.ascontiguousarray(values, dtype=np.float32).view(np.uint32).ravel().copy()
    bits[index] ^= np.uint32(1 << bit)
    return bits.view(np.float32).reshape(values.shape)


class TestSnapToBitFlips:
    def test_restores_single_flip_bit_exactly(self, rng):
        golden = rng.uniform(-1, 1, size=(6, 4)).astype(np.float32)
        corrupted = _flip(golden, 7, 27)
        estimate = golden + rng.normal(0, 1e-7, golden.shape).astype(np.float32)
        refined, snapped, kept = snap_to_bit_flips(
            corrupted, estimate, rtol=1e-3, atol=1e-5
        )
        assert np.array_equal(refined.view(np.uint32), golden.view(np.uint32))
        assert snapped == 1
        assert kept == golden.size - 1

    def test_clean_words_keep_their_bit_patterns(self, rng):
        golden = rng.uniform(-1, 1, size=(10,)).astype(np.float32)
        estimate = golden + rng.normal(0, 1e-7, golden.shape).astype(np.float32)
        refined, snapped, kept = snap_to_bit_flips(
            golden, estimate, rtol=1e-3, atol=1e-5
        )
        assert np.array_equal(refined.view(np.uint32), golden.view(np.uint32))
        assert snapped == 0 and kept == golden.size

    def test_two_flips_in_one_word(self, rng):
        golden = rng.uniform(0.1, 1, size=(8,)).astype(np.float32)
        corrupted = _flip(_flip(golden, 3, 24), 3, 30)
        refined, snapped, _ = snap_to_bit_flips(
            corrupted, golden.copy(), rtol=1e-3, atol=1e-5, max_flips=2
        )
        assert np.array_equal(refined.view(np.uint32), golden.view(np.uint32))
        assert snapped == 1

    def test_unreachable_word_falls_back_to_estimate(self, rng):
        golden = rng.uniform(0.1, 1, size=(5,)).astype(np.float32)
        # Corrupt three bits; a 2-flip search cannot reach the golden word.
        corrupted = _flip(_flip(_flip(golden, 2, 23), 2, 27), 2, 30)
        estimate = golden.copy()
        refined, snapped, _ = snap_to_bit_flips(
            corrupted, estimate, rtol=1e-6, atol=1e-8, max_flips=2
        )
        assert snapped == 0
        assert refined[2] == estimate[2]


class TestSparseKernelRepair:
    def test_full_rank_single_corruption(self, rng):
        A = rng.uniform(-1, 1, size=(40, 12))
        golden = rng.uniform(-1, 1, size=(12, 4)).astype(np.float32)
        B = A @ golden.astype(np.float64)
        corrupted = _flip(golden, 17, 28)
        estimate, complete = sparse_kernel_repair(
            A, B, corrupted, rtol=1e-4, atol=1e-7
        )
        assert complete
        # Clean words keep their exact bit patterns; the corrupted one is
        # re-estimated to solver precision.
        mask = np.ones(golden.size, dtype=bool)
        mask[17] = False
        assert np.array_equal(
            estimate.ravel()[mask].view(np.uint32), golden.ravel()[mask].view(np.uint32)
        )
        assert abs(float(estimate.ravel()[17]) - float(golden.ravel()[17])) < 1e-5

    def test_extreme_corruption_does_not_cancel(self, rng):
        A = rng.uniform(-1, 1, size=(50, 10))
        golden = rng.uniform(-1, 1, size=(10, 3)).astype(np.float32)
        B = A @ golden.astype(np.float64)
        corrupted = golden.copy()
        corrupted.ravel()[4] = np.float32(1.7e38)  # exponent-bit scale damage
        estimate, complete = sparse_kernel_repair(
            A, B, corrupted, rtol=1e-4, atol=1e-7
        )
        assert complete
        assert abs(float(estimate.ravel()[4]) - float(golden.ravel()[4])) < 1e-5

    def test_unexplainable_residual_reports_incomplete(self, rng):
        A = rng.uniform(-1, 1, size=(30, 8))
        golden = rng.uniform(-1, 1, size=(8, 2)).astype(np.float32)
        B = A @ golden.astype(np.float64) + 0.5  # offset no kernel row explains
        _, complete = sparse_kernel_repair(
            A, B, golden, rtol=1e-6, atol=1e-8, max_support=2
        )
        assert not complete


class TestSparseBiasRepair:
    def _repair(self, golden, corrupted, **kwargs):
        stored_sum = np.asarray([np.float64(golden.sum(dtype=np.float64))])
        return sparse_bias_repair(
            corrupted,
            stored_sum,
            uses_sum=True,
            golden_fingerprint=weight_fingerprint(golden),
            rtol=1e-3,
            atol=1e-5,
            **kwargs,
        )

    def test_single_flip_recovered(self, rng):
        golden = rng.uniform(-0.05, 0.05, size=(16,)).astype(np.float32)
        corrupted = _flip(golden, 5, 26)
        repaired = self._repair(golden, corrupted)
        assert repaired is not None
        assert np.array_equal(repaired.view(np.uint32), golden.view(np.uint32))

    def test_huge_corrupted_word_no_cancellation(self, rng):
        golden = rng.uniform(-0.05, 0.05, size=(8,)).astype(np.float32)
        # Flipping the exponent MSB of a small value yields an astronomically
        # large word -- the case that defeats naive sum arithmetic.
        corrupted = _flip(golden, 2, 30)
        assert abs(float(corrupted[2])) > 1e20
        repaired = self._repair(golden, corrupted)
        assert repaired is not None
        assert np.array_equal(repaired.view(np.uint32), golden.view(np.uint32))

    def test_two_corrupted_words_return_none(self, rng):
        golden = rng.uniform(-0.05, 0.05, size=(12,)).astype(np.float32)
        corrupted = _flip(_flip(golden, 1, 25), 7, 26)
        assert self._repair(golden, corrupted) is None

    def test_full_copy_mode(self, rng):
        golden = rng.uniform(-0.05, 0.05, size=(6,)).astype(np.float32)
        corrupted = _flip(golden, 0, 30)
        repaired = sparse_bias_repair(
            corrupted,
            golden.copy(),
            uses_sum=False,
            golden_fingerprint=weight_fingerprint(golden),
            rtol=1e-3,
            atol=1e-5,
        )
        assert repaired is not None
        assert np.array_equal(repaired.view(np.uint32), golden.view(np.uint32))


class TestCRCGuidedRepair:
    def test_multiple_corrupted_words_restored(self, rng):
        crc = TwoDimensionalCRC(group_size=4, crc_bits=8)
        golden = rng.uniform(-1, 1, size=(3, 3, 8, 8)).astype(np.float32)
        codes = crc.encode_kernel(golden)
        corrupted = _flip(_flip(_flip(golden, 17, 30), 211, 25), 500, 28)
        repaired, complete = crc_guided_kernel_repair(corrupted, codes, crc)
        assert complete
        assert np.array_equal(repaired.view(np.uint32), golden.view(np.uint32))

    def test_clean_kernel_untouched(self, rng):
        crc = TwoDimensionalCRC(group_size=4, crc_bits=8)
        golden = rng.uniform(-1, 1, size=(2, 2, 4, 4)).astype(np.float32)
        codes = crc.encode_kernel(golden)
        repaired, complete = crc_guided_kernel_repair(golden.copy(), codes, crc)
        assert complete
        assert np.array_equal(repaired.view(np.uint32), golden.view(np.uint32))


class TestEstimateGuidedRepair:
    def test_repairs_despite_noisy_estimate(self, rng):
        golden = rng.uniform(-0.05, 0.05, size=(32,)).astype(np.float32)
        corrupted = _flip(_flip(golden, 3, 27), 20, 29)
        # Noise well above the snap tolerances, as a bias recovered through a
        # dense inversion would produce.
        estimate = (golden.astype(np.float64) + rng.normal(0, 2e-4, golden.shape)).astype(
            np.float32
        )
        repaired = estimate_guided_repair(
            corrupted,
            estimate,
            weight_fingerprint(golden),
            atol=1e-5,
        )
        assert repaired is not None
        assert np.array_equal(repaired.view(np.uint32), golden.view(np.uint32))

    def test_gives_up_when_everything_is_suspect(self, rng):
        golden = rng.uniform(-0.05, 0.05, size=(16,)).astype(np.float32)
        estimate = golden + np.float32(1.0)  # estimate disagrees everywhere
        assert (
            estimate_guided_repair(
                golden, estimate, weight_fingerprint(golden), atol=1e-5
            )
            is None
        )
