"""Acceptance tests for the unified telemetry layer.

Two contracts from the ISSUE:

* Every weight fault injected during a stuck-at soak yields a *complete*
  correlated lifecycle chain (inject -> detect -> quarantine -> repair ->
  verify) in the exported trace, including reassert -> redetect cycles for
  the persistent faults.
* With telemetry disabled the runtime follows today's exact code paths:
  a deterministic fault/repair/serve scenario produces bit-identical
  predictions, weights and injected-event sequences either way (telemetry
  never consumes service RNG).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import TelemetryConfig
from repro.service import (
    FaultPressureDriver,
    ModelRegistry,
    Scrubber,
    ServiceConfig,
    run_soak,
)
from repro.types import FLOAT_DTYPE


@pytest.fixture(scope="module")
def soak(tmp_path_factory):
    out = tmp_path_factory.mktemp("telemetry")
    result = run_soak(
        network="mnist_reduced",
        duration_seconds=5.0,
        mean_fault_interval_seconds=0.8,
        seed=3,
        fault_models={"stuck_at": 1.0},
        reassert_interval_seconds=0.1,
        trace_out=str(out / "trace.jsonl"),
        metrics_out=str(out / "metrics.jsonl"),
    )
    return result, out


class TestLifecycleChainCompleteness:
    def test_soak_healed_and_clean(self, soak):
        result, _ = soak
        assert result.fault_events
        assert result.converged and result.bit_exact
        assert result.errors == ()

    def test_every_fresh_weight_fault_has_a_complete_chain(self, soak):
        result, _ = soak
        fresh_weight_events = [
            event
            for event in result.fault_events
            if event.layer_index >= 0 and not event.reasserted
        ]
        assert len(result.fault_chains) == len(fresh_weight_events)
        assert all(chain.complete for chain in result.fault_chains)
        assert {chain.layer_index for chain in result.fault_chains} == {
            event.layer_index for event in fresh_weight_events
        }

    def test_stuck_at_chains_record_reassert_redetect_cycles(self, soak):
        result, _ = soak
        reasserted = [event for event in result.fault_events if event.reasserted]
        assert reasserted, "stuck-at soak produced no reassertion events"
        cycles = [chain for chain in result.fault_chains if chain.reassert_cycles > 0]
        assert cycles
        for chain in cycles:
            assert "reassert" in chain.stages
            assert "redetect" in chain.stages
        assert sum(chain.reassert_cycles for chain in result.fault_chains) == len(
            reasserted
        )

    def test_per_fault_td_tr_positive(self, soak):
        result, _ = soak
        for chain in result.fault_chains:
            assert chain.detection_seconds >= 0.0
            assert chain.repair_seconds >= 0.0
            assert chain.total_seconds >= chain.detection_seconds


class TestTraceExport:
    def test_exported_trace_contains_correlated_chains(self, soak):
        result, out = soak
        spans = [
            json.loads(line)
            for line in (out / "trace.jsonl").read_text().splitlines()
        ]
        assert spans
        by_chain: dict[str, list[str]] = {}
        for span in spans:
            trace_id = span["trace_id"]
            if trace_id and trace_id.startswith("fault-"):
                by_chain.setdefault(trace_id, []).append(span["name"])
        assert set(by_chain) == {chain.fault_id for chain in result.fault_chains}
        for names in by_chain.values():
            assert names[0] == "fault.inject"
            assert "fault.detect" in names
            assert "fault.quarantine" in names
            assert "fault.repair" in names
            assert "fault.verify" in names

    def test_trace_includes_serve_and_scrub_spans(self, soak):
        _, out = soak
        names = {
            json.loads(line)["name"]
            for line in (out / "trace.jsonl").read_text().splitlines()
        }
        assert "serve.batch" in names
        assert "scrub.detect_slice" in names
        assert "scrub.recover" in names


class TestMetricsExport:
    def test_snapshots_appended_while_running(self, soak):
        _, out = soak
        lines = (out / "metrics.jsonl").read_text().splitlines()
        # ~1/s during a 5 s soak plus the final snapshot.
        assert len(lines) >= 3

    def test_final_snapshot_consistent_with_result(self, soak):
        result, out = soak
        snapshot = json.loads((out / "metrics.jsonl").read_text().splitlines()[-1])
        counters = snapshot["counters"]
        injected = sum(
            value
            for name, value in counters.items()
            if name.startswith("repro_faults_injected_total")
        )
        assert injected == len(result.fault_events)
        served = counters['repro_serve_requests_total{model="mnist_reduced"}']
        assert served == result.requests_completed
        verified = counters['repro_faults_verified_total{model="mnist_reduced"}']
        assert verified >= len(result.fault_chains)


def _controlled_run(enabled: bool):
    """Deterministic inject/scrub/repair/serve scenario, single-threaded."""
    config = ServiceConfig(
        recovery_async=False, telemetry=TelemetryConfig(enabled=enabled)
    )
    registry = ModelRegistry(config)
    entry = registry.load("mnist_reduced")
    scrubber = Scrubber(registry, config)
    driver = FaultPressureDriver(
        entry,
        seed=11,
        fault_models={"stuck_at": 1.0},
        telemetry=registry.telemetry,
    )
    batch = (
        np.random.default_rng(5)
        .random((4,) + entry.model.input_shape)
        .astype(FLOAT_DTYPE)
    )
    events = []
    outputs = []
    for _ in range(4):
        event = driver.inject_once()
        if event is not None:
            events.append(
                (event.layer_index, event.flipped_bits, event.affected_weight_indices)
            )
        scrubber.scrub_model(entry)
        driver.reassert_once()
        scrubber.scrub_model(entry)
        outputs.append(entry.model.predict(batch).tobytes())
    weights = [
        entry.model.layers[index].get_weights().tobytes()
        for index in entry.parameterized_indices
    ]
    return registry, events, outputs, weights


class TestDisabledTelemetryBitExactness:
    def test_disabled_matches_enabled_bit_for_bit(self):
        enabled_registry, e_events, e_outputs, e_weights = _controlled_run(True)
        disabled_registry, d_events, d_outputs, d_weights = _controlled_run(False)
        assert e_events == d_events  # telemetry consumed no driver RNG
        assert e_outputs == d_outputs  # predictions byte-identical
        assert e_weights == d_weights  # repaired weights byte-identical
        assert enabled_registry.telemetry.fault_chains()
        assert disabled_registry.telemetry.fault_chains() == []
        assert len(disabled_registry.telemetry.tracer) == 0
        assert disabled_registry.telemetry.snapshot()["counters"] == {}
