"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MILRConfig, MILRProtector
from repro.data import make_mnist_like, train_test_split
from repro.nn import (
    Bias,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.nn.training import Adam, Trainer


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_dense_model() -> Sequential:
    """A small dense network: Dense -> Bias -> ReLU -> Dense -> Bias."""
    model = Sequential(
        [
            Dense(16, seed=1, name="d1"),
            Bias(name="b1", seed=2),
            ReLU(name="r1"),
            Dense(8, seed=3, name="d2"),
            Bias(name="b2", seed=4),
        ],
        name="tiny_dense",
    )
    model.build((12,))
    return model


@pytest.fixture
def tiny_conv_model() -> Sequential:
    """A small CNN exercising conv, bias, relu, pooling, flatten and dense layers."""
    model = Sequential(
        [
            Conv2D(6, 3, padding="valid", seed=1, name="c1"),
            Bias(name="cb1", seed=2),
            ReLU(name="r1"),
            MaxPool2D(2, name="p1"),
            Flatten(name="f1"),
            Dense(10, seed=3, name="d1"),
            Bias(name="db1", seed=4),
        ],
        name="tiny_conv",
    )
    model.build((10, 10, 2))
    return model


@pytest.fixture
def partial_conv_model() -> Sequential:
    """A conv layer with G^2 < F^2 Z, forcing partial recoverability."""
    model = Sequential(
        [Conv2D(4, 3, padding="valid", seed=5, name="c1"), Bias(name="b1", seed=6)],
        name="partial_conv",
    )
    model.build((6, 6, 8))
    return model


@pytest.fixture
def protected_conv(tiny_conv_model) -> tuple[Sequential, MILRProtector]:
    """A tiny conv model with MILR initialized."""
    protector = MILRProtector(tiny_conv_model, MILRConfig(master_seed=7))
    protector.initialize()
    return tiny_conv_model, protector


@pytest.fixture(scope="session")
def trained_tiny_network():
    """A very small trained classifier used by integration tests.

    Session-scoped because training (even a tiny network) costs a couple of
    seconds; tests must not mutate the returned model's weights without
    restoring them.
    """
    dataset = make_mnist_like(samples_per_class=40, seed=5)
    train_set, test_set = train_test_split(dataset, test_fraction=0.25, seed=5)
    model = Sequential(
        [
            Conv2D(6, 3, padding="valid", seed=11, name="c1"),
            Bias(name="cb1", seed=12),
            ReLU(name="r1"),
            MaxPool2D(2, name="p1"),
            Flatten(name="f1"),
            Dense(32, seed=13, name="d1"),
            Bias(name="db1", seed=14),
            ReLU(name="r2"),
            Dense(10, seed=15, name="d2"),
            Bias(name="db2", seed=16),
        ],
        name="trained_tiny",
    )
    model.build((28, 28, 1))
    trainer = Trainer(model, optimizer=Adam(learning_rate=0.004), shuffle_seed=3)
    trainer.fit(train_set.images, train_set.labels, epochs=8, batch_size=32)
    baseline = model.accuracy(test_set.images, test_set.labels)
    return {
        "model": model,
        "test_images": test_set.images,
        "test_labels": test_set.labels,
        "baseline_accuracy": baseline,
    }
