"""Tests for Bias and Activation layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import LayerConfigurationError, ShapeError
from repro.nn.layers import Activation, Bias, ReLU, Softmax


class TestBias:
    def test_output_shape_preserved(self):
        layer = Bias(seed=0)
        layer.build((4, 4, 3))
        assert layer.output_shape == (4, 4, 3)

    def test_parameter_count_is_channels(self):
        layer = Bias(seed=0)
        layer.build((4, 4, 3))
        assert layer.parameter_count == 3
        assert layer.channels == 3

    def test_replication_factor(self):
        layer = Bias(seed=0)
        layer.build((4, 4, 3))
        assert layer.replication_factor == 16

    def test_forward_adds_per_channel(self):
        layer = Bias(seed=0)
        layer.build((2, 2, 3))
        layer.set_weights(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        x = np.zeros((1, 2, 2, 3), dtype=np.float32)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0, 0], [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(out[0, 1, 1], [1.0, 2.0, 3.0])

    def test_forward_dense_style(self):
        layer = Bias(seed=0)
        layer.build((4,))
        layer.set_weights(np.arange(4, dtype=np.float32))
        out = layer.forward(np.ones((2, 4), dtype=np.float32))
        np.testing.assert_array_equal(out[1], [1.0, 2.0, 3.0, 4.0])

    def test_backward_sums_gradient(self):
        layer = Bias(seed=0)
        layer.build((2, 2, 3))
        grad = np.ones((2, 2, 2, 3), dtype=np.float32)
        grad_in = layer.backward(grad)
        np.testing.assert_array_equal(grad_in, grad)
        np.testing.assert_array_equal(layer.grad_weights, [8.0, 8.0, 8.0])

    def test_set_weights_wrong_shape(self):
        layer = Bias(seed=0)
        layer.build((2, 2, 3))
        with pytest.raises(ShapeError):
            layer.set_weights(np.zeros(4, dtype=np.float32))

    def test_initial_values_small(self):
        layer = Bias(seed=1)
        layer.build((8,))
        assert np.max(np.abs(layer.get_weights())) <= 0.01


class TestActivation:
    def test_unknown_function(self):
        with pytest.raises(LayerConfigurationError):
            Activation("swish")

    def test_relu_forward(self):
        layer = ReLU()
        layer.build((4,))
        out = layer.forward(np.array([[-1.0, 0.0, 2.0, -3.0]], dtype=np.float32))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0, 0.0]])

    def test_relu_backward_masks_negative(self):
        layer = ReLU()
        layer.build((3,))
        layer.forward(np.array([[-1.0, 1.0, 2.0]], dtype=np.float32), training=True)
        grad = layer.backward(np.ones((1, 3), dtype=np.float32))
        np.testing.assert_array_equal(grad, [[0.0, 1.0, 1.0]])

    def test_linear_is_identity(self):
        layer = Activation("linear")
        layer.build((5,))
        x = np.random.default_rng(0).random((2, 5)).astype(np.float32)
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_sigmoid_range(self):
        layer = Activation("sigmoid")
        layer.build((4,))
        out = layer.forward(np.array([[-10.0, -1.0, 1.0, 10.0]], dtype=np.float32))
        assert np.all(out > 0.0) and np.all(out < 1.0)

    def test_tanh_matches_numpy(self):
        layer = Activation("tanh")
        layer.build((3,))
        x = np.array([[-1.0, 0.0, 1.0]], dtype=np.float32)
        np.testing.assert_allclose(layer.forward(x), np.tanh(x), rtol=1e-6)

    def test_softmax_rows_sum_to_one(self):
        layer = Softmax()
        layer.build((6,))
        x = np.random.default_rng(1).random((4, 6)).astype(np.float32) * 10
        out = layer.forward(x)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(4), rtol=1e-5)

    def test_softmax_large_logits_stable(self):
        layer = Softmax()
        layer.build((3,))
        out = layer.forward(np.array([[1000.0, 0.0, -1000.0]], dtype=np.float32))
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0, abs=1e-5)

    def test_sigmoid_gradient_matches_numerical(self):
        layer = Activation("sigmoid")
        layer.build((4,))
        x = np.random.default_rng(2).random((3, 4)).astype(np.float32)
        out = layer.forward(x, training=True)
        analytic = layer.backward(np.ones_like(out))
        epsilon = 1e-3
        numeric = (1.0 / (1.0 + np.exp(-(x + epsilon))) - 1.0 / (1.0 + np.exp(-(x - epsilon)))) / (
            2 * epsilon
        )
        np.testing.assert_allclose(analytic, numeric, rtol=1e-2, atol=1e-3)

    def test_backward_before_forward_raises(self):
        layer = ReLU()
        layer.build((2,))
        with pytest.raises(ShapeError):
            layer.backward(np.zeros((1, 2), dtype=np.float32))

    def test_no_parameters(self):
        layer = ReLU()
        layer.build((2,))
        assert layer.parameter_count == 0
        assert layer.get_weights().size == 0
