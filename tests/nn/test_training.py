"""Tests for losses, optimizers, metrics and the training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn import Bias, Dense, ReLU, Sequential
from repro.nn.training import (
    SGD,
    Adam,
    CategoricalCrossEntropy,
    MeanSquaredError,
    SoftmaxCrossEntropy,
    Trainer,
    accuracy_score,
    confusion_matrix,
    top_k_accuracy,
)


class TestLosses:
    def test_mse_zero_for_equal(self):
        loss = MeanSquaredError()
        x = np.ones((3, 4), dtype=np.float32)
        assert loss.value(x, x) == 0.0

    def test_mse_value(self):
        loss = MeanSquaredError()
        predictions = np.zeros((1, 2), dtype=np.float32)
        targets = np.array([[1.0, 1.0]], dtype=np.float32)
        assert loss.value(predictions, targets) == pytest.approx(1.0)

    def test_mse_gradient_direction(self):
        loss = MeanSquaredError()
        predictions = np.array([[2.0]], dtype=np.float32)
        targets = np.array([[0.0]], dtype=np.float32)
        assert loss.gradient(predictions, targets)[0, 0] > 0

    def test_cce_accepts_integer_labels(self):
        loss = CategoricalCrossEntropy()
        predictions = np.array([[0.9, 0.05, 0.05]], dtype=np.float32)
        assert loss.value(predictions, np.array([0])) == pytest.approx(-np.log(0.9), rel=1e-4)

    def test_cce_rejects_bad_labels(self):
        loss = CategoricalCrossEntropy()
        with pytest.raises(ShapeError):
            loss.value(np.ones((2, 3), dtype=np.float32) / 3, np.array([3, 0]))

    def test_softmax_ce_matches_manual(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[2.0, 1.0, 0.0]], dtype=np.float32)
        probabilities = np.exp(logits) / np.exp(logits).sum()
        assert loss.value(logits, np.array([0])) == pytest.approx(
            -np.log(probabilities[0, 0]), rel=1e-4
        )

    def test_softmax_ce_gradient_sums_to_zero(self):
        loss = SoftmaxCrossEntropy()
        logits = np.random.default_rng(0).random((4, 5)).astype(np.float32)
        gradient = loss.gradient(logits, np.array([0, 1, 2, 3]))
        np.testing.assert_allclose(gradient.sum(axis=1), np.zeros(4), atol=1e-6)

    def test_softmax_ce_gradient_matches_numerical(self):
        loss = SoftmaxCrossEntropy()
        logits = np.random.default_rng(1).random((2, 3)).astype(np.float64)
        labels = np.array([1, 2])
        analytic = loss.gradient(logits.astype(np.float32), labels)
        epsilon = 1e-4
        numeric = np.zeros_like(logits)
        for i in range(2):
            for j in range(3):
                up = logits.copy()
                up[i, j] += epsilon
                down = logits.copy()
                down[i, j] -= epsilon
                numeric[i, j] = (
                    loss.value(up.astype(np.float32), labels)
                    - loss.value(down.astype(np.float32), labels)
                ) / (2 * epsilon)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-2, atol=1e-4)

    def test_target_shape_mismatch(self):
        loss = MeanSquaredError()
        with pytest.raises(ShapeError):
            loss.value(np.ones((2, 3), dtype=np.float32), np.ones((2, 4), dtype=np.float32))


class TestOptimizers:
    def test_sgd_moves_against_gradient(self):
        optimizer = SGD(learning_rate=0.1)
        weights = np.ones(3, dtype=np.float32)
        updated = optimizer.update("w", weights, np.ones(3, dtype=np.float32))
        np.testing.assert_allclose(updated, 0.9 * np.ones(3), rtol=1e-6)

    def test_sgd_momentum_accumulates(self):
        optimizer = SGD(learning_rate=0.1, momentum=0.9)
        weights = np.zeros(1, dtype=np.float32)
        gradient = np.ones(1, dtype=np.float32)
        first = optimizer.update("w", weights, gradient)
        second = optimizer.update("w", first, gradient)
        assert (weights[0] - first[0]) < (first[0] - second[0])

    def test_sgd_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD(momentum=1.0)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)

    def test_adam_first_step_magnitude(self):
        optimizer = Adam(learning_rate=0.001)
        weights = np.zeros(4, dtype=np.float32)
        updated = optimizer.update("w", weights, np.full(4, 10.0, dtype=np.float32))
        np.testing.assert_allclose(np.abs(updated), np.full(4, 0.001), rtol=1e-3)

    def test_adam_per_slot_state(self):
        optimizer = Adam()
        a = optimizer.update("a", np.zeros(1, dtype=np.float32), np.ones(1, dtype=np.float32))
        b = optimizer.update("b", np.zeros(1, dtype=np.float32), np.ones(1, dtype=np.float32))
        np.testing.assert_allclose(a, b)

    def test_reset_clears_state(self):
        optimizer = SGD(learning_rate=0.1, momentum=0.9)
        optimizer.update("w", np.zeros(1, dtype=np.float32), np.ones(1, dtype=np.float32))
        optimizer.reset()
        assert optimizer._velocity == {}

    def test_adam_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)


class TestMetrics:
    def test_accuracy_from_scores(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8]], dtype=np.float32)
        assert accuracy_score(scores, np.array([0, 1])) == 1.0

    def test_accuracy_from_labels(self):
        assert accuracy_score(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_accuracy_length_mismatch(self):
        with pytest.raises(ShapeError):
            accuracy_score(np.array([0, 1]), np.array([0]))

    def test_top_k(self):
        scores = np.array([[0.1, 0.2, 0.7], [0.5, 0.3, 0.2]], dtype=np.float32)
        assert top_k_accuracy(scores, np.array([1, 1]), k=2) == pytest.approx(1.0)
        assert top_k_accuracy(scores, np.array([0, 2]), k=1) == pytest.approx(0.0)

    def test_top_k_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.ones((1, 3), dtype=np.float32), np.array([0]), k=0)

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1]), np.array([0, 1, 0]), num_classes=2)
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 1]])


class TestTrainer:
    def _separable_data(self):
        rng = np.random.default_rng(0)
        class0 = rng.normal(loc=-1.0, scale=0.3, size=(40, 8))
        class1 = rng.normal(loc=1.0, scale=0.3, size=(40, 8))
        inputs = np.concatenate([class0, class1]).astype(np.float32)
        labels = np.concatenate([np.zeros(40), np.ones(40)]).astype(np.int64)
        return inputs, labels

    def _model(self):
        model = Sequential(
            [Dense(8, seed=1, name="d1"), Bias(name="b1", seed=2), ReLU(), Dense(2, seed=3, name="d2")]
        )
        model.build((8,))
        return model

    def test_loss_decreases(self):
        inputs, labels = self._separable_data()
        model = self._model()
        trainer = Trainer(model, optimizer=Adam(learning_rate=0.01), shuffle_seed=0)
        history = trainer.fit(inputs, labels, epochs=5, batch_size=16)
        assert history.loss[-1] < history.loss[0]

    def test_reaches_high_accuracy_on_separable_data(self):
        inputs, labels = self._separable_data()
        model = self._model()
        trainer = Trainer(model, optimizer=Adam(learning_rate=0.02), shuffle_seed=0)
        history = trainer.fit(inputs, labels, epochs=10, batch_size=16)
        assert history.accuracy[-1] >= 0.95

    def test_validation_accuracy_recorded(self):
        inputs, labels = self._separable_data()
        model = self._model()
        trainer = Trainer(model, shuffle_seed=0)
        history = trainer.fit(
            inputs, labels, epochs=2, batch_size=16, validation_data=(inputs, labels)
        )
        assert len(history.validation_accuracy) == 2
        assert history.final_accuracy() == history.validation_accuracy[-1]

    def test_mismatched_lengths_rejected(self):
        model = self._model()
        trainer = Trainer(model)
        with pytest.raises(ShapeError):
            trainer.fit(np.zeros((4, 8), dtype=np.float32), np.zeros(3), epochs=1)

    def test_invalid_batch_size(self):
        model = self._model()
        trainer = Trainer(model)
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((4, 8), dtype=np.float32), np.zeros(4), batch_size=0)

    def test_history_epochs(self):
        inputs, labels = self._separable_data()
        trainer = Trainer(self._model(), shuffle_seed=0)
        history = trainer.fit(inputs, labels, epochs=3, batch_size=32)
        assert history.epochs == 3
