"""Tests for the compiled forward-plan fast path (`repro.nn.plan`).

The contract under test: the planned forward is *bit-identical* to the seed
layer-by-layer forward for every zoo network and for adversarial layer
combinations (padding buffers, in-place elementwise steps, signed zeros,
NaNs), plans notice weight mutations, and the fingerprint revalidation sweep
keeps byte-identical plans alive while dropping the rest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NotBuiltError, ShapeError
from repro.nn import (
    AvgPool2D,
    Bias,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    InputLayer,
    MaxPool2D,
    ReLU,
    Sequential,
    Softmax,
    ZeroPadding2D,
    compile_plan,
)
from repro.nn.model import PLAN_CACHE_SIZE
from repro.nn.plan import plan_weight_fingerprint
from repro.zoo import network_table


def assert_bit_identical(model: Sequential, inputs: np.ndarray, repeats: int = 2):
    """Planned forward must equal the seed forward byte for byte.

    Runs the comparison ``repeats`` times: scratch-buffer reuse or in-place
    step bugs typically only show up from the second call on.
    """
    for _ in range(repeats):
        seed = model.predict(inputs, use_plan=False)
        planned = model.predict(inputs)
        assert planned.shape == seed.shape
        assert planned.dtype == seed.dtype
        assert planned.tobytes() == seed.tobytes()


class TestZooBitIdentity:
    @pytest.mark.parametrize("name", sorted(network_table()))
    def test_every_zoo_network_is_bit_identical(self, name):
        spec = network_table()[name]
        model = spec.builder()
        rng = np.random.default_rng(7)
        inputs = rng.random((4,) + spec.input_shape).astype(np.float32)
        assert_bit_identical(model, inputs)

    @pytest.mark.parametrize("batch", [1, 3, 32])
    def test_variable_batch_sizes(self, batch):
        spec = network_table()["mnist_reduced"]
        model = spec.builder()
        rng = np.random.default_rng(3)
        inputs = rng.random((batch,) + spec.input_shape).astype(np.float32)
        assert_bit_identical(model, inputs)

    def test_fused_mode_matches_to_tolerance(self):
        for name in ("mnist_reduced", "mnist_bn", "cifar_depthwise"):
            spec = network_table()[name]
            model = spec.builder()
            rng = np.random.default_rng(11)
            inputs = rng.random((5,) + spec.input_shape).astype(np.float32)
            seed = model.predict(inputs, use_plan=False)
            fused = model.predict(inputs, fused=True)
            np.testing.assert_allclose(fused, seed, rtol=1e-5, atol=1e-6)


class TestAdversarialStacks:
    def test_zeropad_borders_survive_inplace_neighbours(self):
        # Bias/ReLU directly after ZeroPadding2D must not corrupt the padding
        # buffer's pre-zeroed borders across calls.
        model = Sequential(
            [ZeroPadding2D(1), Bias(seed=1), ReLU(), Conv2D(4, 3, seed=2)]
        )
        model.build((5, 5, 2))
        rng = np.random.default_rng(0)
        for _ in range(3):
            inputs = rng.standard_normal((3, 5, 5, 2)).astype(np.float32)
            assert_bit_identical(model, inputs)

    def test_user_input_never_mutated(self):
        # First-layer elementwise steps must not run in place on the caller's
        # array; pass-through layers forward the caller's array itself.
        model = Sequential([InputLayer((4,)), Dropout(0.5, seed=0), Bias(seed=5), ReLU()])
        model.build((4,))
        rng = np.random.default_rng(1)
        inputs = rng.standard_normal((2, 4)).astype(np.float32)
        pristine = inputs.copy()
        assert_bit_identical(model, inputs)
        np.testing.assert_array_equal(inputs, pristine)

    def test_signed_zeros_and_nan_through_pooling(self):
        # Max pooling's strided-maximum fold must keep the seed's tie (signed
        # zero) and NaN semantics; mean pooling keeps the windowed form.
        for pool in (
            MaxPool2D(2),
            MaxPool2D(2, stride=1),
            MaxPool2D((2, 3), stride=(1, 2)),
            AvgPool2D(2),
            AvgPool2D(3, stride=2),
        ):
            model = Sequential([pool])
            model.build((7, 7, 3))
            rng = np.random.default_rng(9)
            inputs = rng.standard_normal((2, 7, 7, 3)).astype(np.float32)
            inputs[np.abs(inputs) < 0.4] = np.float32(-0.0)
            inputs[0, 2, 2, 1] = np.nan
            assert_bit_identical(model, inputs)

    def test_mid_stack_softmax_and_head(self):
        model = Sequential(
            [Flatten(), Dense(6, seed=3), Softmax(), Bias(seed=4), ReLU()]
        )
        model.build((2, 3, 1))
        rng = np.random.default_rng(2)
        inputs = rng.standard_normal((4, 2, 3, 1)).astype(np.float32)
        assert_bit_identical(model, inputs)

    def test_unknown_layer_falls_back_to_layer_forward(self):
        from repro.nn.layers.base import Layer

        class Doubling(Layer):
            def compute_output_shape(self, input_shape):
                return input_shape

            def forward(self, inputs, training=False):
                return (inputs * 2.0).astype(np.float32)

        model = Sequential([Doubling(), Bias(seed=6)])
        model.build((3,))
        rng = np.random.default_rng(4)
        inputs = rng.standard_normal((2, 3)).astype(np.float32)
        assert_bit_identical(model, inputs)


class TestPlanCacheAndInvalidation:
    def _model(self):
        return network_table()["mnist_reduced"].builder()

    def test_plan_cache_hit_and_compile_counters(self):
        model = self._model()
        rng = np.random.default_rng(0)
        inputs = rng.random((2, 28, 28, 1)).astype(np.float32)
        model.predict(inputs)
        assert model.plan_stats.compiles == 1
        model.predict(inputs)
        assert model.plan_stats.compiles == 1
        assert model.plan_stats.hits == 1

    def test_weight_mutation_invalidates_and_recompiles(self):
        model = self._model()
        rng = np.random.default_rng(0)
        inputs = rng.random((2, 28, 28, 1)).astype(np.float32)
        model.predict(inputs)
        layer = next(x for x in model.layers if x.has_parameters)
        weights = layer.get_weights()
        weights.flat[0] += 1.0
        layer.set_weights(weights)
        assert_bit_identical(model, inputs)  # recompiled against new weights
        assert model.plan_stats.invalidations >= 1

    def test_lru_eviction_keeps_cache_bounded(self):
        model = self._model()
        rng = np.random.default_rng(0)
        for batch in range(1, PLAN_CACHE_SIZE + 3):
            model.predict(rng.random((batch, 28, 28, 1)).astype(np.float32))
        assert len(model._plan_cache) == PLAN_CACHE_SIZE

    def test_invalidate_plans_drops_everything(self):
        model = self._model()
        rng = np.random.default_rng(0)
        model.predict(rng.random((2, 28, 28, 1)).astype(np.float32))
        model.predict(rng.random((3, 28, 28, 1)).astype(np.float32))
        assert model.invalidate_plans() == 2
        assert model.plan_stats.invalidations == 2
        assert len(model._plan_cache) == 0

    def test_revalidate_keeps_byte_identical_weights(self):
        # A bit-exact repair rebinds the weight arrays with the *same bytes*;
        # the fingerprint sweep must keep (and re-arm) such plans.
        model = self._model()
        rng = np.random.default_rng(0)
        inputs = rng.random((2, 28, 28, 1)).astype(np.float32)
        expected = model.predict(inputs)
        layer = next(x for x in model.layers if x.has_parameters)
        layer.set_weights(layer.get_weights())  # same bytes, new epoch
        assert model.revalidate_plans() == 0
        assert model.plan_stats.hits == 0
        got = model.predict(inputs)
        assert model.plan_stats.compiles == 1  # plan survived, no recompile
        assert model.plan_stats.hits == 1
        assert got.tobytes() == expected.tobytes()

    def test_revalidate_drops_changed_weights(self):
        model = self._model()
        rng = np.random.default_rng(0)
        inputs = rng.random((2, 28, 28, 1)).astype(np.float32)
        model.predict(inputs)
        layer = next(x for x in model.layers if x.has_parameters)
        weights = layer.get_weights()
        weights.flat[0] += 1.0
        layer.set_weights(weights)
        assert model.revalidate_plans() == 1
        assert len(model._plan_cache) == 0
        assert_bit_identical(model, inputs)

    def test_training_path_bypasses_plans(self):
        model = self._model()
        rng = np.random.default_rng(0)
        inputs = rng.random((2, 28, 28, 1)).astype(np.float32)
        model.predict(inputs, training=True)
        assert model.plan_stats.compiles == 0

    def test_fingerprint_matches_core_checkpoint_digest(self):
        from repro.core.checkpoint import weight_fingerprint

        weights = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert plan_weight_fingerprint(weights) == weight_fingerprint(weights)


class TestAdversarialZooBitIdentity:
    """Exact plans (direct stride-1 matmul + chain fusion) must stay byte-equal
    to the seed forward on hostile inputs, not just well-behaved ones."""

    @staticmethod
    def _adversarial(rng, shape):
        # Dense signed zeros plus scattered NaNs: the inputs most likely to
        # expose a reordered reduction or a max/tie semantics drift.
        inputs = rng.standard_normal(shape).astype(np.float32)
        inputs[np.abs(inputs) < 0.3] = np.float32(-0.0)
        flat = inputs.reshape(-1)
        flat[:: max(1, flat.size // 17)] = np.nan
        return inputs

    @pytest.mark.parametrize("name", sorted(network_table()))
    def test_adversarial_inputs_all_zoo(self, name):
        spec = network_table()[name]
        model = spec.builder()
        rng = np.random.default_rng(23)
        inputs = self._adversarial(rng, (4,) + spec.input_shape)
        assert_bit_identical(model, inputs)

    @pytest.mark.parametrize("batch", [1, 5, 33])
    def test_partial_occupancy_batches(self, batch):
        # 5 and 33 straddle the conv batch-chunk width (32): a partial chunk
        # and a full chunk plus remainder must both stay bit-identical.
        for name in ("mnist_reduced", "cifar_reduced"):
            spec = network_table()[name]
            model = spec.builder()
            rng = np.random.default_rng(batch)
            inputs = self._adversarial(rng, (batch,) + spec.input_shape)
            assert_bit_identical(model, inputs)


class TestFusionCertification:
    def _model(self, name="mnist_reduced"):
        return network_table()[name].builder()

    def test_certified_fused_serve_and_memoized_recheck(self):
        model = self._model()
        rng = np.random.default_rng(0)
        inputs = rng.random((4, 28, 28, 1)).astype(np.float32)
        outputs, info = model.predict_served(inputs, fused=True)
        assert info["mode"] == "fused"
        assert info["certificate"] is not None and info["certificate"].certified
        assert info["certified_now"]
        assert not info["uncertified"]
        assert info["certificate"].max_ulp <= info["certificate"].ulp_bound
        assert model.plan_stats.certifications == 1
        seed = model.predict(inputs, use_plan=False)
        np.testing.assert_allclose(outputs, seed, rtol=1e-5, atol=1e-6)
        # Second serve is a cache hit: no re-calibration.
        _again, info2 = model.predict_served(inputs, fused=True)
        assert info2["mode"] == "fused"
        assert not info2["certified_now"]
        assert model.plan_stats.certifications == 1
        assert model.plan_stats.fused_hits == 1

    def test_uncertifiable_network_falls_back_bit_exact(self):
        model = self._model()
        model.fusion_ulp_bound = -1  # nothing can pass: force the fallback
        rng = np.random.default_rng(1)
        inputs = rng.random((3, 28, 28, 1)).astype(np.float32)
        outputs, info = model.predict_served(inputs, fused=True)
        assert info["mode"] == "fallback"
        assert info["certificate"] is not None
        assert not info["certificate"].certified
        assert not info["uncertified"]  # fallback never serves the fused plan
        assert model.plan_stats.fallbacks == 1
        assert outputs.tobytes() == model.predict(inputs, use_plan=False).tobytes()

    def test_hit_buckets_split_fused_and_exact(self):
        model = self._model()
        rng = np.random.default_rng(2)
        inputs = rng.random((2, 28, 28, 1)).astype(np.float32)
        model.predict(inputs)  # exact compile
        model.predict(inputs)  # exact hit
        model.predict(inputs, fused=True)  # fused compile + certification
        model.predict(inputs, fused=True)  # fused hit
        stats = model.plan_stats
        assert stats.exact_hits == 1
        assert stats.fused_hits == 1
        assert stats.fallbacks == 0

    def test_bit_exact_repair_keeps_certificate(self):
        # Fingerprint revalidation after a byte-identical weight restore must
        # keep the fused plan *and* its certificate: no second calibration.
        model = self._model()
        rng = np.random.default_rng(3)
        inputs = rng.random((2, 28, 28, 1)).astype(np.float32)
        model.predict(inputs, fused=True)
        assert model.plan_stats.certifications == 1
        layer = next(x for x in model.layers if x.has_parameters)
        layer.set_weights(layer.get_weights())  # same bytes, new epoch
        assert model.revalidate_plans() == 0
        _outputs, info = model.predict_served(inputs, fused=True)
        assert info["mode"] == "fused"
        assert not info["certified_now"]
        assert model.plan_stats.certifications == 1

    def test_certificate_memo_survives_recompile(self):
        # Corrupt then restore the exact original bytes: the recompiled fused
        # plan lands on the same weights digest and reuses the memoized
        # certificate instead of re-running calibration.
        model = self._model()
        rng = np.random.default_rng(4)
        inputs = rng.random((2, 28, 28, 1)).astype(np.float32)
        model.predict(inputs, fused=True)
        assert model.plan_stats.certifications == 1
        layer = next(x for x in model.layers if x.has_parameters)
        original = layer.get_weights().copy()
        corrupted = original.copy()
        corrupted.flat[0] += 1.0
        layer.set_weights(corrupted)
        model.predict(inputs, fused=True)  # new digest: fresh certification
        assert model.plan_stats.certifications == 2
        layer.set_weights(original)
        model.invalidate_plans()
        _outputs, info = model.predict_served(inputs, fused=True)
        assert info["mode"] == "fused"
        assert not info["certified_now"]
        assert model.plan_stats.certifications == 2

    def test_blocklisted_affine_is_not_folded(self):
        spec = network_table()["mnist_bn"]
        free = spec.builder()
        folded = compile_plan(free, 2, fused=True).folded_affines
        assert folded  # mnist_bn folds its BatchNorms when unblocked
        blocked_model = spec.builder()
        blocked_model.fusion_blocklist.add(folded[0])
        plan = compile_plan(blocked_model, 2, fused=True)
        assert folded[0] not in plan.folded_affines
        rng = np.random.default_rng(5)
        inputs = rng.random((2,) + spec.input_shape).astype(np.float32)
        seed = blocked_model.predict(inputs, use_plan=False)
        np.testing.assert_allclose(
            plan.execute(inputs), seed, rtol=1e-5, atol=1e-6
        )


class TestSlicedPlans:
    def test_batch_slices_merge_deterministically(self):
        from repro.nn.plan import SlicedForwardPlan

        spec = network_table()["mnist_reduced"]
        model = spec.builder()
        # Force an uneven split (256 = 86 + 85 + 85) regardless of host CPUs.
        plan = compile_plan(model, 256, fused=True, slice_workers=3)
        assert isinstance(plan, SlicedForwardPlan)
        assert sum(plan.slice_sizes) == 256
        assert max(plan.slice_sizes) - min(plan.slice_sizes) <= 1
        rng = np.random.default_rng(6)
        inputs = rng.random((256,) + spec.input_shape).astype(np.float32)
        first = plan.execute(inputs)
        # Byte-stable across calls and thread schedules: the merge is ordered
        # by slice index, never by completion order.
        for _ in range(2):
            assert plan.execute(inputs).tobytes() == first.tobytes()
        seed = model.predict(inputs, use_plan=False)
        np.testing.assert_allclose(first, seed, rtol=1e-5, atol=1e-6)

    def test_small_batches_stay_monolithic(self):
        from repro.nn.plan import SlicedForwardPlan

        model = network_table()["mnist_reduced"].builder()
        plan = compile_plan(model, 32, fused=True, slice_workers=3)
        assert not isinstance(plan, SlicedForwardPlan)


class TestPlanErrors:
    def test_unbuilt_model_rejected(self):
        model = Sequential([Dense(4, seed=0)])
        with pytest.raises(NotBuiltError):
            model.predict(np.zeros((1, 3), dtype=np.float32))
        with pytest.raises(NotBuiltError):
            model.compile_plan(4)

    def test_bad_shape_rejected(self):
        model = network_table()["mnist_reduced"].builder()
        with pytest.raises(ShapeError):
            model.predict(np.zeros((2, 5, 5, 1), dtype=np.float32))

    def test_plan_rejects_wrong_batch(self):
        model = network_table()["mnist_reduced"].builder()
        plan = compile_plan(model, 4)
        with pytest.raises(ShapeError):
            plan.execute(np.zeros((2, 28, 28, 1), dtype=np.float32))

    def test_precompiled_plan_is_reused(self):
        model = network_table()["mnist_reduced"].builder()
        plan = model.compile_plan(4)
        assert model.compile_plan(4) is plan
        assert model.plan_stats.compiles == 1
