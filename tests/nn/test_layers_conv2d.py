"""Tests for the Conv2D layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import LayerConfigurationError, ShapeError
from repro.nn.layers import Conv2D


def direct_convolution(inputs, kernel):
    """Reference valid-padding stride-1 convolution (slow but obviously correct)."""
    batch, height, width, _ = inputs.shape
    f1, f2, _, filters = kernel.shape
    out_h, out_w = height - f1 + 1, width - f2 + 1
    output = np.zeros((batch, out_h, out_w, filters), dtype=np.float64)
    for b in range(batch):
        for i in range(out_h):
            for j in range(out_w):
                window = inputs[b, i : i + f1, j : j + f2, :]
                for k in range(filters):
                    output[b, i, j, k] = np.sum(window * kernel[:, :, :, k])
    return output


class TestConv2DConstruction:
    def test_invalid_filters(self):
        with pytest.raises(LayerConfigurationError):
            Conv2D(0, 3)

    def test_invalid_padding(self):
        with pytest.raises(LayerConfigurationError):
            Conv2D(4, 3, padding="reflect")

    def test_invalid_stride(self):
        with pytest.raises(LayerConfigurationError):
            Conv2D(4, 3, stride=0)

    def test_requires_3d_input(self):
        layer = Conv2D(4, 3)
        with pytest.raises(ShapeError):
            layer.build((10,))

    def test_kernel_shape(self):
        layer = Conv2D(5, 3, seed=0)
        layer.build((8, 8, 2))
        assert layer.get_weights().shape == (3, 3, 2, 5)

    def test_output_shape_valid(self):
        layer = Conv2D(5, 3, padding="valid", seed=0)
        layer.build((8, 8, 2))
        assert layer.output_shape == (6, 6, 5)

    def test_output_shape_same(self):
        layer = Conv2D(5, 3, padding="same", seed=0)
        layer.build((8, 8, 2))
        assert layer.output_shape == (8, 8, 5)

    def test_output_shape_stride(self):
        layer = Conv2D(5, 3, stride=2, padding="valid", seed=0)
        layer.build((9, 9, 1))
        assert layer.output_shape == (4, 4, 5)

    def test_parameter_count_matches_paper_first_layer(self):
        # Table I first layer: 3x3x1x32 = 288 kernel weights (bias separate).
        layer = Conv2D(32, 3, padding="valid", seed=0)
        layer.build((28, 28, 1))
        assert layer.parameter_count == 288

    def test_derived_quantities(self):
        layer = Conv2D(4, 3, seed=0)
        layer.build((6, 6, 8))
        assert layer.receptive_field_size == 72
        assert layer.output_positions == 16
        assert layer.input_channels == 8


class TestConv2DForward:
    def test_matches_direct_convolution_valid(self):
        rng = np.random.default_rng(0)
        layer = Conv2D(4, 3, padding="valid", seed=1)
        layer.build((7, 7, 2))
        x = rng.random((2, 7, 7, 2)).astype(np.float32)
        np.testing.assert_allclose(
            layer.forward(x), direct_convolution(x, layer.get_weights()), rtol=1e-4, atol=1e-5
        )

    def test_same_padding_matches_padded_valid(self):
        rng = np.random.default_rng(1)
        layer = Conv2D(3, 3, padding="same", seed=2)
        layer.build((6, 6, 1))
        x = rng.random((1, 6, 6, 1)).astype(np.float32)
        padded = np.pad(x, ((0, 0), (1, 1), (1, 1), (0, 0)))
        np.testing.assert_allclose(
            layer.forward(x), direct_convolution(padded, layer.get_weights()), rtol=1e-4, atol=1e-5
        )

    def test_kernel_matrix_consistent_with_forward(self):
        rng = np.random.default_rng(2)
        layer = Conv2D(4, 3, padding="valid", seed=3)
        layer.build((6, 6, 2))
        x = rng.random((1, 6, 6, 2)).astype(np.float32)
        patches = layer.extract_patches(x)
        manual = patches.reshape(-1, layer.receptive_field_size) @ layer.kernel_matrix()
        np.testing.assert_allclose(layer.forward(x).reshape(-1, 4), manual, rtol=1e-5)

    def test_rejects_wrong_channels(self):
        layer = Conv2D(4, 3, seed=0)
        layer.build((6, 6, 2))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 6, 6, 3), dtype=np.float32))

    def test_padded_input_shape(self):
        layer = Conv2D(4, 3, padding="same", seed=0)
        layer.build((6, 6, 2))
        assert layer.padded_input_shape(2) == (2, 8, 8, 2)


class TestConv2DBackward:
    def test_gradient_shapes(self):
        layer = Conv2D(3, 3, padding="valid", seed=1)
        layer.build((6, 6, 2))
        x = np.random.default_rng(0).random((2, 6, 6, 2)).astype(np.float32)
        out = layer.forward(x, training=True)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert layer.grad_weights.shape == layer.get_weights().shape

    def test_kernel_gradient_matches_numerical(self):
        layer = Conv2D(2, 2, padding="valid", seed=4)
        layer.build((4, 4, 1))
        x = np.random.default_rng(3).random((1, 4, 4, 1)).astype(np.float32)
        kernel = layer.get_weights()

        def loss_for(k):
            return float(np.sum(direct_convolution(x, k) ** 2))

        out = layer.forward(x, training=True)
        layer.backward(2.0 * out)
        epsilon = 1e-3
        numeric = np.zeros_like(kernel)
        it = np.nditer(kernel, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            perturbed = kernel.copy()
            perturbed[idx] += epsilon
            upper = loss_for(perturbed)
            perturbed[idx] -= 2 * epsilon
            lower = loss_for(perturbed)
            numeric[idx] = (upper - lower) / (2 * epsilon)
            it.iternext()
        np.testing.assert_allclose(layer.grad_weights, numeric, rtol=5e-2, atol=5e-2)

    def test_same_padding_backward_shape(self):
        layer = Conv2D(3, 3, padding="same", seed=1)
        layer.build((5, 5, 2))
        x = np.random.default_rng(0).random((2, 5, 5, 2)).astype(np.float32)
        out = layer.forward(x, training=True)
        assert layer.backward(np.ones_like(out)).shape == x.shape

    def test_backward_before_forward_raises(self):
        layer = Conv2D(3, 3, seed=1)
        layer.build((5, 5, 2))
        with pytest.raises(ShapeError):
            layer.backward(np.zeros((1, 3, 3, 3), dtype=np.float32))


class TestConv2DWeights:
    def test_set_weights_roundtrip(self):
        layer = Conv2D(4, 3, seed=1)
        layer.build((6, 6, 2))
        new_kernel = np.random.default_rng(5).random((3, 3, 2, 4)).astype(np.float32)
        layer.set_weights(new_kernel)
        np.testing.assert_array_equal(layer.get_weights(), new_kernel)

    def test_set_weights_wrong_shape(self):
        layer = Conv2D(4, 3, seed=1)
        layer.build((6, 6, 2))
        with pytest.raises(ShapeError):
            layer.set_weights(np.zeros((3, 3, 2, 5), dtype=np.float32))
