"""Tests for weight initializers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.initializers import get_initializer, glorot_uniform, he_normal, uniform, zeros


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestInitializers:
    def test_glorot_bounds(self, rng):
        weights = glorot_uniform((100, 100), rng, fan_in=100, fan_out=100)
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(weights) <= limit)

    def test_glorot_dtype(self, rng):
        assert glorot_uniform((3, 3), rng, 3, 3).dtype == np.float32

    def test_he_normal_scale(self, rng):
        weights = he_normal((200, 200), rng, fan_in=200, fan_out=200)
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 200), rel=0.15)

    def test_zeros(self, rng):
        assert np.all(zeros((5, 5), rng, 5, 5) == 0.0)

    def test_uniform_bounds(self, rng):
        weights = uniform((1000,), rng, 1, 1)
        assert np.all(np.abs(weights) <= 0.05)

    def test_get_initializer_known(self):
        assert get_initializer("he_normal") is he_normal

    def test_get_initializer_unknown(self):
        with pytest.raises(ValueError, match="unknown initializer"):
            get_initializer("nope")

    def test_shapes_preserved(self, rng):
        for name in ("glorot_uniform", "he_normal", "zeros", "uniform"):
            init = get_initializer(name)
            assert init((2, 3, 4), rng, 6, 4).shape == (2, 3, 4)
