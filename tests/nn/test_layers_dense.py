"""Tests for the Dense layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NotBuiltError, ShapeError
from repro.nn.layers import Dense


class TestDenseConstruction:
    def test_invalid_units(self):
        with pytest.raises(ShapeError):
            Dense(0)

    def test_requires_flat_input(self):
        layer = Dense(4)
        with pytest.raises(ShapeError):
            layer.build((3, 3, 1))

    def test_build_allocates_weights(self):
        layer = Dense(4, seed=0)
        layer.build((6,))
        assert layer.get_weights().shape == (6, 4)

    def test_not_built_error(self):
        layer = Dense(4)
        with pytest.raises(NotBuiltError):
            _ = layer.output_shape

    def test_parameter_count(self):
        layer = Dense(5, seed=0)
        layer.build((7,))
        assert layer.parameter_count == 35
        assert layer.parameter_bytes == 140

    def test_features_properties(self):
        layer = Dense(5, seed=0)
        layer.build((7,))
        assert layer.features_in == 7
        assert layer.features_out == 5

    def test_deterministic_initialization(self):
        a = Dense(4, seed=9)
        b = Dense(4, seed=9)
        a.build((6,))
        b.build((6,))
        np.testing.assert_array_equal(a.get_weights(), b.get_weights())


class TestDenseForward:
    def test_matches_matmul(self):
        layer = Dense(3, seed=1)
        layer.build((4,))
        x = np.random.default_rng(0).random((5, 4)).astype(np.float32)
        np.testing.assert_allclose(layer.forward(x), x @ layer.get_weights(), rtol=1e-6)

    def test_output_shape(self):
        layer = Dense(3, seed=1)
        layer.build((4,))
        assert layer.forward(np.zeros((2, 4), dtype=np.float32)).shape == (2, 3)

    def test_rejects_wrong_shape(self):
        layer = Dense(3, seed=1)
        layer.build((4,))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((2, 5), dtype=np.float32))


class TestDenseBackward:
    def test_gradient_shapes(self):
        layer = Dense(3, seed=1)
        layer.build((4,))
        x = np.random.default_rng(0).random((6, 4)).astype(np.float32)
        layer.forward(x, training=True)
        grad_in = layer.backward(np.ones((6, 3), dtype=np.float32))
        assert grad_in.shape == (6, 4)
        assert layer.grad_weights.shape == (4, 3)

    def test_gradient_matches_numerical(self):
        layer = Dense(2, seed=2)
        layer.build((3,))
        x = np.random.default_rng(1).random((4, 3)).astype(np.float32)
        weights = layer.get_weights()

        def loss_for(w):
            return float(np.sum((x @ w) ** 2))

        layer.forward(x, training=True)
        predictions = x @ weights
        analytic = layer.backward(2.0 * predictions)
        epsilon = 1e-3
        numeric = np.zeros_like(weights)
        for i in range(weights.shape[0]):
            for j in range(weights.shape[1]):
                perturbed = weights.copy()
                perturbed[i, j] += epsilon
                upper = loss_for(perturbed)
                perturbed[i, j] -= 2 * epsilon
                lower = loss_for(perturbed)
                numeric[i, j] = (upper - lower) / (2 * epsilon)
        np.testing.assert_allclose(layer.grad_weights, numeric, rtol=1e-2, atol=1e-2)
        assert analytic.shape == x.shape

    def test_backward_before_forward_raises(self):
        layer = Dense(2, seed=2)
        layer.build((3,))
        with pytest.raises(ShapeError):
            layer.backward(np.zeros((1, 2), dtype=np.float32))


class TestDenseWeights:
    def test_set_weights_roundtrip(self):
        layer = Dense(3, seed=1)
        layer.build((4,))
        new_weights = np.random.default_rng(2).random((4, 3)).astype(np.float32)
        layer.set_weights(new_weights)
        np.testing.assert_array_equal(layer.get_weights(), new_weights)

    def test_set_weights_wrong_shape(self):
        layer = Dense(3, seed=1)
        layer.build((4,))
        with pytest.raises(ShapeError):
            layer.set_weights(np.zeros((3, 4), dtype=np.float32))

    def test_get_weights_returns_copy(self):
        layer = Dense(3, seed=1)
        layer.build((4,))
        weights = layer.get_weights()
        weights[:] = 0.0
        assert not np.all(layer.get_weights() == 0.0)
