"""Tests for the Sequential model container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NotBuiltError, ShapeError
from repro.nn import Conv2D, Dense, ReLU, Sequential


class TestBuild:
    def test_unbuilt_model_raises(self):
        model = Sequential([Dense(4, seed=0)])
        with pytest.raises(NotBuiltError):
            model.predict(np.zeros((1, 3), dtype=np.float32))

    def test_build_propagates_shapes(self, tiny_conv_model):
        assert tiny_conv_model.input_shape == (10, 10, 2)
        assert tiny_conv_model.output_shape == (10,)

    def test_add_after_build_rejected(self, tiny_dense_model):
        with pytest.raises(NotBuiltError):
            tiny_dense_model.add(Dense(2))

    def test_duplicate_names_rejected(self):
        model = Sequential([Dense(4, seed=0, name="dup"), ReLU(name="dup")])
        with pytest.raises(ShapeError):
            model.build((3,))

    def test_build_returns_self(self):
        model = Sequential([Dense(4, seed=0)])
        assert model.build((3,)) is model


class TestExecution:
    def test_predict_shape(self, tiny_conv_model):
        x = np.random.default_rng(0).random((3, 10, 10, 2)).astype(np.float32)
        assert tiny_conv_model.predict(x).shape == (3, 10)

    def test_predict_matches_manual_chain(self, tiny_dense_model):
        x = np.random.default_rng(0).random((4, 12)).astype(np.float32)
        manual = x
        for layer in tiny_dense_model.layers:
            manual = layer.forward(manual)
        np.testing.assert_allclose(tiny_dense_model.predict(x), manual, rtol=1e-6)

    def test_forward_collect_lengths(self, tiny_conv_model):
        x = np.random.default_rng(0).random((1, 10, 10, 2)).astype(np.float32)
        outputs = tiny_conv_model.forward_collect(x)
        assert len(outputs) == len(tiny_conv_model.layers)
        assert outputs[-1].shape == (1, 10)

    def test_forward_from_slices_the_network(self, tiny_dense_model):
        x = np.random.default_rng(0).random((2, 12)).astype(np.float32)
        first_two = tiny_dense_model.forward_from(x, 0, 2)
        rest = tiny_dense_model.forward_from(first_two, 2, len(tiny_dense_model))
        np.testing.assert_allclose(rest, tiny_dense_model.predict(x), rtol=1e-6)

    def test_classify_returns_argmax(self, tiny_conv_model):
        x = np.random.default_rng(0).random((3, 10, 10, 2)).astype(np.float32)
        predictions = tiny_conv_model.classify(x)
        scores = tiny_conv_model.predict(x)
        np.testing.assert_array_equal(predictions, scores.argmax(axis=1))

    def test_accuracy_on_known_labels(self, tiny_conv_model):
        x = np.random.default_rng(0).random((6, 10, 10, 2)).astype(np.float32)
        labels = tiny_conv_model.classify(x)
        assert tiny_conv_model.accuracy(x, labels) == 1.0

    def test_callable(self, tiny_dense_model):
        x = np.random.default_rng(0).random((2, 12)).astype(np.float32)
        np.testing.assert_array_equal(tiny_dense_model(x), tiny_dense_model.predict(x))


class TestWeights:
    def test_get_weights_only_parameterized_layers(self, tiny_conv_model):
        weights = tiny_conv_model.get_weights()
        assert set(weights) == {"c1", "cb1", "d1", "db1"}

    def test_set_weights_roundtrip(self, tiny_conv_model):
        x = np.random.default_rng(0).random((2, 10, 10, 2)).astype(np.float32)
        before = tiny_conv_model.predict(x)
        snapshot = tiny_conv_model.get_weights()
        tiny_conv_model.get_layer("c1").set_weights(
            np.zeros_like(snapshot["c1"])
        )
        assert not np.allclose(tiny_conv_model.predict(x), before)
        tiny_conv_model.set_weights(snapshot)
        np.testing.assert_allclose(tiny_conv_model.predict(x), before, rtol=1e-6)

    def test_parameter_count(self, tiny_conv_model):
        expected = sum(layer.parameter_count for layer in tiny_conv_model.layers)
        assert tiny_conv_model.parameter_count() == expected
        assert tiny_conv_model.parameter_bytes() == expected * 4


class TestIntrospection:
    def test_layer_index_and_get_layer(self, tiny_conv_model):
        assert tiny_conv_model.layer_index("c1") == 0
        assert tiny_conv_model.get_layer("d1").name == "d1"

    def test_layer_index_missing(self, tiny_conv_model):
        with pytest.raises(KeyError):
            tiny_conv_model.layer_index("nope")

    def test_len_and_iter(self, tiny_conv_model):
        assert len(tiny_conv_model) == 7
        assert [layer.name for layer in tiny_conv_model][0] == "c1"

    def test_signatures(self, tiny_conv_model):
        signatures = tiny_conv_model.signatures()
        assert signatures[0].kind == "Conv2D"
        assert signatures[-1].output_shape == (10,)

    def test_summary_contains_totals(self, tiny_conv_model):
        summary = tiny_conv_model.summary()
        assert "Total trainable parameters" in summary
        assert "c1" in summary
