"""Tests for im2col / col2im and padding helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.tensor_utils import (
    col2im,
    conv_output_length,
    im2col,
    im2col_gather_indices,
    im2col_into,
    pad_input,
    pad_same_amounts,
    pool_gather_indices,
    pool_patches,
    unpad_input,
)


class TestConvOutputLength:
    def test_valid_padding(self):
        assert conv_output_length(28, 3, 1, "valid") == 26

    def test_valid_padding_with_stride(self):
        assert conv_output_length(10, 3, 2, "valid") == 4

    def test_same_padding(self):
        assert conv_output_length(28, 3, 1, "same") == 28

    def test_same_padding_with_stride(self):
        assert conv_output_length(9, 3, 2, "same") == 5

    def test_filter_larger_than_input_valid(self):
        with pytest.raises(ShapeError):
            conv_output_length(2, 3, 1, "valid")

    def test_unknown_padding(self):
        with pytest.raises(ShapeError):
            conv_output_length(8, 3, 1, "reflect")


class TestPadSameAmounts:
    def test_odd_filter(self):
        assert pad_same_amounts(8, 3, 1) == (1, 1)

    def test_even_filter(self):
        before, after = pad_same_amounts(8, 2, 1)
        assert before + after == 1

    def test_stride_two(self):
        before, after = pad_same_amounts(7, 3, 2)
        assert (7 + before + after - 3) // 2 + 1 == 4


class TestPadInput:
    def test_valid_is_identity(self):
        inputs = np.random.default_rng(0).random((2, 5, 5, 3)).astype(np.float32)
        padded, amounts = pad_input(inputs, (3, 3), (1, 1), "valid")
        np.testing.assert_array_equal(padded, inputs)
        assert amounts == ((0, 0), (0, 0))

    def test_same_pads_spatially(self):
        inputs = np.ones((1, 5, 5, 2), dtype=np.float32)
        padded, amounts = pad_input(inputs, (3, 3), (1, 1), "same")
        assert padded.shape == (1, 7, 7, 2)
        assert amounts == ((1, 1), (1, 1))
        assert padded[0, 0, 0, 0] == 0.0

    def test_unpad_restores_shape(self):
        inputs = np.random.default_rng(1).random((2, 6, 6, 1)).astype(np.float32)
        padded, amounts = pad_input(inputs, (3, 3), (1, 1), "same")
        np.testing.assert_array_equal(unpad_input(padded, amounts), inputs)

    def test_rejects_non_4d(self):
        with pytest.raises(ShapeError):
            pad_input(np.zeros((5, 5, 3), dtype=np.float32), (3, 3), (1, 1), "same")


class TestIm2Col:
    def test_shapes(self):
        inputs = np.random.default_rng(0).random((2, 6, 6, 3)).astype(np.float32)
        patches = im2col(inputs, (3, 3), (1, 1))
        assert patches.shape == (2, 4, 4, 27)

    def test_stride(self):
        inputs = np.random.default_rng(0).random((1, 8, 8, 1)).astype(np.float32)
        patches = im2col(inputs, (2, 2), (2, 2))
        assert patches.shape == (1, 4, 4, 4)

    def test_patch_content_matches_manual_extraction(self):
        inputs = np.arange(1 * 4 * 4 * 2, dtype=np.float32).reshape(1, 4, 4, 2)
        patches = im2col(inputs, (2, 2), (1, 1))
        manual = inputs[0, 1:3, 2:4, :].reshape(-1)
        np.testing.assert_array_equal(patches[0, 1, 2], manual)

    def test_matches_direct_convolution(self):
        rng = np.random.default_rng(3)
        inputs = rng.random((1, 5, 5, 2)).astype(np.float32)
        kernel = rng.random((3, 3, 2, 4)).astype(np.float32)
        patches = im2col(inputs, (3, 3), (1, 1))
        via_matmul = patches.reshape(-1, 18) @ kernel.reshape(18, 4)
        via_matmul = via_matmul.reshape(1, 3, 3, 4)
        direct = np.zeros((1, 3, 3, 4), dtype=np.float64)
        for i in range(3):
            for j in range(3):
                window = inputs[0, i : i + 3, j : j + 3, :]
                for k in range(4):
                    direct[0, i, j, k] = np.sum(window * kernel[:, :, :, k])
        np.testing.assert_allclose(via_matmul, direct, rtol=1e-5)

    def test_rejects_small_input(self):
        with pytest.raises(ShapeError):
            im2col(np.zeros((1, 2, 2, 1), dtype=np.float32), (3, 3), (1, 1))

    def test_rejects_non_4d(self):
        with pytest.raises(ShapeError):
            im2col(np.zeros((4, 4, 1), dtype=np.float32), (2, 2), (1, 1))


class TestIm2ColPlans:
    """The plan-building APIs must reproduce im2col / pool_patches exactly."""

    CASES = [
        ((2, 6, 6, 3), (3, 3), (1, 1)),
        ((1, 9, 7, 2), (3, 2), (2, 2)),
        ((3, 8, 8, 1), (2, 2), (2, 2)),
        ((2, 10, 10, 4), (5, 5), (3, 3)),
    ]

    @pytest.mark.parametrize("input_shape,filter_size,stride", CASES)
    def test_gather_indices_match_im2col(self, input_shape, filter_size, stride):
        rng = np.random.default_rng(0)
        inputs = rng.standard_normal(input_shape).astype(np.float32)
        patches = im2col(inputs, filter_size, stride)
        indices = im2col_gather_indices(
            input_shape[1], input_shape[2], input_shape[3], filter_size, stride
        )
        batch = input_shape[0]
        gathered = inputs.reshape(batch, -1)[:, indices]
        np.testing.assert_array_equal(
            gathered, patches.reshape(batch, -1, patches.shape[-1])
        )

    @pytest.mark.parametrize("input_shape,filter_size,stride", CASES)
    def test_im2col_into_matches_im2col(self, input_shape, filter_size, stride):
        rng = np.random.default_rng(1)
        inputs = np.ascontiguousarray(
            rng.standard_normal(input_shape).astype(np.float32)
        )
        patches = im2col(inputs, filter_size, stride)
        batch, g1, g2, _ = patches.shape
        f1, f2 = filter_size
        buffer = np.empty(
            (batch, g1, g2, f1 * f2 * input_shape[3]), dtype=np.float32
        )
        im2col_into(
            inputs,
            filter_size,
            stride,
            buffer.reshape(batch, g1, g2, f1, f2, input_shape[3]),
        )
        assert buffer.tobytes() == patches.tobytes()

    def test_gather_indices_are_cached(self):
        first = im2col_gather_indices(8, 8, 3, (3, 3), (1, 1))
        second = im2col_gather_indices(8, 8, 3, (3, 3), (1, 1))
        assert first is second

    def test_gather_indices_reject_small_input(self):
        with pytest.raises(ShapeError):
            im2col_gather_indices(2, 2, 1, (3, 3), (1, 1))

    def test_pool_gather_indices_match_pool_patches(self):
        rng = np.random.default_rng(2)
        inputs = rng.standard_normal((2, 7, 7, 3)).astype(np.float32)
        windows = pool_patches(inputs, (2, 2), (2, 2))
        indices = pool_gather_indices(7, 7, 3, (2, 2), (2, 2))
        gathered = inputs.reshape(2, -1)[:, indices]
        np.testing.assert_array_equal(
            gathered, windows.reshape(2, -1, windows.shape[3], windows.shape[4])
        )


class TestCol2Im:
    def test_roundtrip_mean_reduction(self):
        inputs = np.random.default_rng(2).random((1, 5, 5, 2)).astype(np.float32)
        patches = im2col(inputs, (3, 3), (1, 1))
        reconstructed = col2im(patches, inputs.shape, (3, 3), (1, 1), reduce="mean")
        np.testing.assert_allclose(reconstructed, inputs, rtol=1e-5, atol=1e-6)

    def test_roundtrip_non_overlapping(self):
        inputs = np.random.default_rng(2).random((2, 4, 4, 3)).astype(np.float32)
        patches = im2col(inputs, (2, 2), (2, 2))
        reconstructed = col2im(patches, inputs.shape, (2, 2), (2, 2), reduce="mean")
        np.testing.assert_allclose(reconstructed, inputs, rtol=1e-6)

    def test_sum_reduction_counts_overlaps(self):
        inputs = np.ones((1, 3, 3, 1), dtype=np.float32)
        patches = im2col(inputs, (2, 2), (1, 1))
        summed = col2im(patches, inputs.shape, (2, 2), (1, 1), reduce="sum")
        # The centre pixel is covered by all four 2x2 windows.
        assert summed[0, 1, 1, 0] == pytest.approx(4.0)

    def test_invalid_reduce(self):
        patches = np.zeros((1, 1, 1, 4), dtype=np.float32)
        with pytest.raises(ValueError):
            col2im(patches, (1, 2, 2, 1), (2, 2), (1, 1), reduce="max")

    def test_accumulates_in_float_dtype_without_trailing_copy(self):
        from repro.types import FLOAT_DTYPE

        inputs = np.random.default_rng(5).random((2, 5, 5, 2)).astype(np.float32)
        patches = im2col(inputs, (3, 3), (1, 1))
        for reduce in ("mean", "sum"):
            folded = col2im(patches, inputs.shape, (3, 3), (1, 1), reduce=reduce)
            assert folded.dtype == FLOAT_DTYPE

    @staticmethod
    def _col2im_loop_reference(patches, input_shape, filter_size, stride, reduce):
        """The pre-vectorization double loop, kept as a test oracle."""
        batch, height, width, channels = input_shape
        f1, f2 = filter_size
        s1, s2 = stride
        out_h, out_w = patches.shape[1], patches.shape[2]
        patches = patches.reshape(batch, out_h, out_w, f1, f2, channels)
        accum = np.zeros(input_shape, dtype=np.float64)
        counts = np.zeros((height, width), dtype=np.float64)
        for i in range(out_h):
            for j in range(out_w):
                accum[:, i * s1 : i * s1 + f1, j * s2 : j * s2 + f2, :] += patches[:, i, j]
                counts[i * s1 : i * s1 + f1, j * s2 : j * s2 + f2] += 1.0
        if reduce == "mean":
            accum /= np.maximum(counts, 1.0)[None, :, :, None]
        return accum.astype(np.float32)

    @pytest.mark.parametrize("reduce", ["mean", "sum"])
    def test_scatter_matches_loop_reference(self, reduce):
        # Odd geometries: uneven strides, rectangular filters, positions the
        # windows never reach.
        rng = np.random.default_rng(9)
        cases = [
            ((2, 8, 8, 3), (3, 3), (1, 1)),
            ((1, 9, 7, 2), (3, 2), (2, 2)),
            ((3, 10, 10, 4), (5, 5), (3, 3)),
            ((2, 4, 4, 1), (4, 4), (4, 4)),
            ((2, 6, 5, 2), (2, 3), (1, 2)),
        ]
        for input_shape, filter_size, stride in cases:
            inputs = rng.standard_normal(input_shape).astype(np.float32)
            patches = im2col(inputs, filter_size, stride)
            got = col2im(patches, input_shape, filter_size, stride, reduce=reduce)
            want = self._col2im_loop_reference(
                patches, input_shape, filter_size, stride, reduce
            )
            np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-6)


class TestPoolPatches:
    def test_shape(self):
        inputs = np.random.default_rng(0).random((2, 6, 6, 3)).astype(np.float32)
        windows = pool_patches(inputs, (2, 2), (2, 2))
        assert windows.shape == (2, 3, 3, 4, 3)

    def test_max_matches_manual(self):
        inputs = np.random.default_rng(1).random((1, 4, 4, 2)).astype(np.float32)
        windows = pool_patches(inputs, (2, 2), (2, 2))
        manual = inputs[0, 2:4, 0:2, 1].max()
        assert windows[0, 1, 0, :, 1].max() == pytest.approx(manual)

    def test_rejects_non_4d(self):
        with pytest.raises(ShapeError):
            pool_patches(np.zeros((4, 4, 1), dtype=np.float32), (2, 2), (2, 2))
