"""Tests for the BatchNorm and DepthwiseConv2D layers (nn substrate level)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn import BatchNorm, DepthwiseConv2D, Sequential
from repro.nn.training import Adam, Trainer
from repro.types import FLOAT_DTYPE


class TestBatchNormLayer:
    def test_forward_is_per_channel_affine(self):
        layer = BatchNorm(seed=1, name="bn")
        layer.build((4, 4, 3))
        x = np.random.default_rng(0).random((2, 4, 4, 3)).astype(FLOAT_DTYPE)
        y = layer.forward(x)
        weights = layer.get_weights()
        np.testing.assert_allclose(y, x * weights[0] + weights[1], rtol=1e-6)

    def test_weights_round_trip_and_shape_check(self):
        layer = BatchNorm(seed=2, name="bn")
        layer.build((5,))
        weights = layer.get_weights()
        assert weights.shape == (2, 5)
        replacement = weights + 0.25
        layer.set_weights(replacement)
        np.testing.assert_array_equal(layer.get_weights(), replacement)
        with pytest.raises(ShapeError):
            layer.set_weights(np.zeros((3, 5), dtype=FLOAT_DTYPE))

    def test_invert_roundtrip(self):
        layer = BatchNorm(seed=3, name="bn")
        layer.build((6,))
        x = np.random.default_rng(1).random((3, 6)).astype(FLOAT_DTYPE)
        np.testing.assert_allclose(layer.invert(layer.forward(x)), x, rtol=1e-5, atol=1e-6)

    def test_backward_gradients(self):
        layer = BatchNorm(seed=4, name="bn")
        layer.build((3,))
        x = np.random.default_rng(2).random((5, 3)).astype(FLOAT_DTYPE)
        layer.forward(x, training=True)
        grad_out = np.ones((5, 3), dtype=FLOAT_DTYPE)
        grad_in = layer.backward(grad_out)
        weights = layer.get_weights()
        np.testing.assert_allclose(grad_in, np.tile(weights[0], (5, 1)), rtol=1e-6)
        np.testing.assert_allclose(layer.grad_weights[0], x.sum(axis=0), rtol=1e-5)
        np.testing.assert_allclose(layer.grad_weights[1], np.full(3, 5.0), rtol=1e-6)

    def test_parameter_count(self):
        layer = BatchNorm(seed=5, name="bn")
        layer.build((8, 8, 4))
        assert layer.parameter_count == 8
        assert layer.channels == 4


class TestDepthwiseConv2DLayer:
    def _reference_forward(self, inputs, kernel):
        """Naive per-channel convolution (valid padding, stride 1)."""
        batch, height, width, channels = inputs.shape
        f1, f2, _ = kernel.shape
        out = np.zeros(
            (batch, height - f1 + 1, width - f2 + 1, channels), dtype=np.float64
        )
        for b in range(batch):
            for i in range(out.shape[1]):
                for j in range(out.shape[2]):
                    for c in range(channels):
                        window = inputs[b, i : i + f1, j : j + f2, c]
                        out[b, i, j, c] = np.sum(
                            window.astype(np.float64) * kernel[:, :, c].astype(np.float64)
                        )
        return out.astype(FLOAT_DTYPE)

    def test_forward_matches_naive_reference(self):
        layer = DepthwiseConv2D(3, seed=1, name="dw")
        layer.build((6, 6, 4))
        x = np.random.default_rng(0).random((2, 6, 6, 4)).astype(FLOAT_DTYPE)
        expected = self._reference_forward(x, layer.get_weights())
        np.testing.assert_allclose(layer.forward(x), expected, rtol=1e-5, atol=1e-6)

    def test_same_padding_preserves_spatial_shape(self):
        layer = DepthwiseConv2D(3, padding="same", seed=2, name="dw")
        layer.build((7, 7, 2))
        assert layer.output_shape == (7, 7, 2)
        x = np.random.default_rng(1).random((1, 7, 7, 2)).astype(FLOAT_DTYPE)
        assert layer.forward(x).shape == (1, 7, 7, 2)

    def test_channel_patches_layout_matches_kernel_matrix(self):
        layer = DepthwiseConv2D(2, seed=3, name="dw")
        layer.build((4, 4, 3))
        x = np.random.default_rng(2).random((1, 4, 4, 3)).astype(FLOAT_DTYPE)
        split = layer.channel_patches(x)
        out = np.einsum("bhwkc,kc->bhwc", split, layer.kernel_matrix())
        np.testing.assert_allclose(out, layer.forward(x), rtol=1e-5, atol=1e-6)

    def test_backward_gradient_shapes_and_finite_difference(self):
        layer = DepthwiseConv2D(2, seed=4, name="dw")
        layer.build((4, 4, 2))
        x = np.random.default_rng(3).random((1, 4, 4, 2)).astype(FLOAT_DTYPE)
        out = layer.forward(x, training=True)
        grad_out = np.ones_like(out)
        grad_in = layer.backward(grad_out)
        assert grad_in.shape == x.shape
        assert layer.grad_weights.shape == layer.get_weights().shape
        # Finite-difference check of one kernel gradient entry.
        weights = layer.get_weights()
        eps = 1e-3
        bumped = weights.copy()
        bumped[0, 1, 1] += eps
        layer.set_weights(bumped)
        loss_plus = float(layer.forward(x).sum())
        bumped[0, 1, 1] -= 2 * eps
        layer.set_weights(bumped)
        loss_minus = float(layer.forward(x).sum())
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert numeric == pytest.approx(float(layer.grad_weights[0, 1, 1]), rel=1e-2)

    def test_weights_shape_check(self):
        layer = DepthwiseConv2D(3, seed=5, name="dw")
        layer.build((5, 5, 2))
        with pytest.raises(ShapeError):
            layer.set_weights(np.zeros((3, 3, 4), dtype=FLOAT_DTYPE))


class TestTrainability:
    def test_model_with_new_layers_trains(self):
        """The new layers carry gradients through the standard trainer loop."""
        from repro.nn import Dense, Flatten, ReLU

        model = Sequential(
            [
                DepthwiseConv2D(3, seed=1, name="dw"),
                BatchNorm(name="bn", seed=2),
                ReLU(name="r"),
                Flatten(name="f"),
                Dense(3, seed=3, name="d"),
            ]
        )
        model.build((6, 6, 2))
        rng = np.random.default_rng(0)
        images = rng.random((24, 6, 6, 2)).astype(FLOAT_DTYPE)
        labels = rng.integers(0, 3, size=24)
        before = [layer.get_weights().copy() for layer in model.layers if layer.has_parameters]
        trainer = Trainer(model, optimizer=Adam(learning_rate=0.01), shuffle_seed=1)
        trainer.fit(images, labels, epochs=2, batch_size=8)
        after = [layer.get_weights() for layer in model.layers if layer.has_parameters]
        assert any(not np.array_equal(b, a) for b, a in zip(before, after))
