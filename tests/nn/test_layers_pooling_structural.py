"""Tests for pooling and structural (flatten/dropout/input/padding) layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import LayerConfigurationError, ShapeError
from repro.nn.layers import AvgPool2D, Dropout, Flatten, InputLayer, MaxPool2D, ZeroPadding2D


class TestMaxPool2D:
    def test_output_shape(self):
        layer = MaxPool2D(2)
        layer.build((8, 8, 3))
        assert layer.output_shape == (4, 4, 3)

    def test_forward_takes_window_max(self):
        layer = MaxPool2D(2)
        layer.build((2, 2, 1))
        x = np.array([[[[1.0], [5.0]], [[3.0], [2.0]]]], dtype=np.float32)
        assert layer.forward(x)[0, 0, 0, 0] == 5.0

    def test_channels_independent(self):
        layer = MaxPool2D(2)
        layer.build((2, 2, 2))
        x = np.zeros((1, 2, 2, 2), dtype=np.float32)
        x[0, :, :, 0] = [[1, 2], [3, 4]]
        x[0, :, :, 1] = [[8, 7], [6, 5]]
        out = layer.forward(x)
        assert out[0, 0, 0, 0] == 4.0
        assert out[0, 0, 0, 1] == 8.0

    def test_backward_routes_to_argmax(self):
        layer = MaxPool2D(2)
        layer.build((2, 2, 1))
        x = np.array([[[[1.0], [5.0]], [[3.0], [2.0]]]], dtype=np.float32)
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[[[2.0]]]], dtype=np.float32))
        assert grad[0, 0, 1, 0] == 2.0
        assert grad.sum() == 2.0

    def test_invalid_pool_size(self):
        with pytest.raises(LayerConfigurationError):
            MaxPool2D(0)

    def test_window_larger_than_input(self):
        layer = MaxPool2D(4)
        with pytest.raises(ShapeError):
            layer.build((2, 2, 1))

    def test_not_structurally_invertible(self):
        assert MaxPool2D(2).structurally_invertible is False


class TestAvgPool2D:
    def test_forward_takes_window_mean(self):
        layer = AvgPool2D(2)
        layer.build((2, 2, 1))
        x = np.array([[[[1.0], [2.0]], [[3.0], [6.0]]]], dtype=np.float32)
        assert layer.forward(x)[0, 0, 0, 0] == pytest.approx(3.0)

    def test_backward_distributes_evenly(self):
        layer = AvgPool2D(2)
        layer.build((2, 2, 1))
        x = np.ones((1, 2, 2, 1), dtype=np.float32)
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[[[4.0]]]], dtype=np.float32))
        np.testing.assert_allclose(grad[0, :, :, 0], np.ones((2, 2)))


class TestFlatten:
    def test_shape(self):
        layer = Flatten()
        layer.build((3, 4, 2))
        assert layer.output_shape == (24,)

    def test_roundtrip_with_invert(self):
        layer = Flatten()
        layer.build((3, 4, 2))
        x = np.random.default_rng(0).random((2, 3, 4, 2)).astype(np.float32)
        flat = layer.forward(x)
        np.testing.assert_array_equal(layer.invert(flat), x)

    def test_backward_restores_shape(self):
        layer = Flatten()
        layer.build((3, 4, 2))
        grad = np.ones((5, 24), dtype=np.float32)
        assert layer.backward(grad).shape == (5, 3, 4, 2)


class TestDropout:
    def test_invalid_rate(self):
        with pytest.raises(LayerConfigurationError):
            Dropout(1.0)

    def test_inference_is_identity(self):
        layer = Dropout(0.5, seed=0)
        layer.build((10,))
        x = np.random.default_rng(0).random((4, 10)).astype(np.float32)
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_zeroes_some_values(self):
        layer = Dropout(0.5, seed=0)
        layer.build((1000,))
        x = np.ones((1, 1000), dtype=np.float32)
        out = layer.forward(x, training=True)
        dropped = np.sum(out == 0.0)
        assert 300 < dropped < 700

    def test_training_preserves_expectation(self):
        layer = Dropout(0.3, seed=1)
        layer.build((5000,))
        x = np.ones((1, 5000), dtype=np.float32)
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, rel=0.1)


class TestInputLayer:
    def test_passthrough(self):
        layer = InputLayer((4,))
        layer.build((4,))
        x = np.random.default_rng(0).random((2, 4)).astype(np.float32)
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_shape_mismatch(self):
        layer = InputLayer((4,))
        with pytest.raises(ShapeError):
            layer.build((5,))


class TestZeroPadding2D:
    def test_output_shape(self):
        layer = ZeroPadding2D(2)
        layer.build((4, 4, 3))
        assert layer.output_shape == (8, 8, 3)

    def test_forward_pads_zeros(self):
        layer = ZeroPadding2D(1)
        layer.build((2, 2, 1))
        x = np.ones((1, 2, 2, 1), dtype=np.float32)
        out = layer.forward(x)
        assert out.shape == (1, 4, 4, 1)
        assert out[0, 0, 0, 0] == 0.0
        assert out[0, 1, 1, 0] == 1.0

    def test_invert_strips_padding(self):
        layer = ZeroPadding2D((1, 2))
        layer.build((3, 3, 2))
        x = np.random.default_rng(0).random((2, 3, 3, 2)).astype(np.float32)
        np.testing.assert_array_equal(layer.invert(layer.forward(x)), x)

    def test_negative_padding_rejected(self):
        with pytest.raises(LayerConfigurationError):
            ZeroPadding2D(-1)

    def test_requires_3d_input(self):
        layer = ZeroPadding2D(1)
        with pytest.raises(ShapeError):
            layer.build((4,))
