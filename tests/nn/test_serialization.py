"""Tests for weight save/load."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.nn import Dense, ReLU, Sequential, load_model_weights, save_model_weights


def _make_model(units: int = 4, seed: int = 0) -> Sequential:
    model = Sequential([Dense(units, seed=seed, name="d1"), ReLU(name="r1")])
    model.build((6,))
    return model


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        model = _make_model(seed=1)
        path = tmp_path / "weights.npz"
        save_model_weights(model, path)
        other = _make_model(seed=2)
        assert not np.allclose(other.get_weights()["d1"], model.get_weights()["d1"])
        load_model_weights(other, path)
        np.testing.assert_array_equal(other.get_weights()["d1"], model.get_weights()["d1"])

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_model_weights(_make_model(), tmp_path / "missing.npz")

    def test_missing_layer_in_archive(self, tmp_path):
        model = _make_model()
        path = tmp_path / "weights.npz"
        save_model_weights(model, path)
        bigger = Sequential([Dense(4, seed=0, name="d1"), Dense(2, seed=0, name="d2")])
        bigger.build((6,))
        with pytest.raises(SerializationError, match="missing parameters"):
            load_model_weights(bigger, path)

    def test_shape_mismatch(self, tmp_path):
        model = _make_model(units=4)
        path = tmp_path / "weights.npz"
        save_model_weights(model, path)
        other = Sequential([Dense(5, seed=0, name="d1")])
        other.build((6,))
        with pytest.raises(SerializationError, match="shape"):
            load_model_weights(other, path)

    def test_model_without_parameters(self, tmp_path):
        model = Sequential([ReLU(name="r1")])
        model.build((4,))
        with pytest.raises(SerializationError):
            save_model_weights(model, tmp_path / "x.npz")

    def test_creates_parent_directory(self, tmp_path):
        model = _make_model()
        path = tmp_path / "nested" / "dir" / "weights.npz"
        save_model_weights(model, path)
        assert path.exists()
