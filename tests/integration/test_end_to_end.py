"""End-to-end integration tests: train, protect, attack, self-heal, re-score.

These mirror the paper's evaluation loop on a miniature scale: a trained
classifier is subjected to the three error workloads (RBER bit flips,
whole-weight errors, whole-layer corruption) and MILR's detection + recovery
must restore the classification accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import normalized_accuracy
from repro.core import MILRConfig, MILRProtector
from repro.experiments.injection import (
    ECCProtectedModel,
    corrupt_layer_completely,
    corrupt_model_rber,
    corrupt_model_whole_weight,
    restore_weights,
    snapshot_weights,
)
from repro.memory import XTSMemoryModel


@pytest.fixture()
def setup(trained_tiny_network):
    model = trained_tiny_network["model"]
    protector = MILRProtector(model, MILRConfig(master_seed=99))
    protector.initialize()
    clean = snapshot_weights(model)
    yield {
        "model": model,
        "protector": protector,
        "clean": clean,
        "images": trained_tiny_network["test_images"],
        "labels": trained_tiny_network["test_labels"],
        "baseline": trained_tiny_network["baseline_accuracy"],
    }
    restore_weights(model, clean)


def _normalized(setup_dict) -> float:
    model = setup_dict["model"]
    accuracy = model.accuracy(setup_dict["images"], setup_dict["labels"])
    return normalized_accuracy(accuracy, setup_dict["baseline"])


class TestRBERSelfHealing:
    def test_moderate_rber_recovered(self, setup):
        corrupt_model_rber(setup["model"], 2e-4, np.random.default_rng(0))
        detection, recovery = setup["protector"].detect_and_recover()
        assert _normalized(setup) >= 0.95

    def test_high_rber_still_improves(self, setup):
        corrupt_model_rber(setup["model"], 2e-3, np.random.default_rng(1))
        degraded = _normalized(setup)
        setup["protector"].detect_and_recover()
        assert _normalized(setup) >= degraded


class TestWholeWeightSelfHealing:
    def test_whole_weight_errors_recovered(self, setup):
        corrupt_model_whole_weight(setup["model"], 2e-3, np.random.default_rng(2))
        degraded = _normalized(setup)
        detection, recovery = setup["protector"].detect_and_recover()
        assert recovery is not None
        assert _normalized(setup) >= max(degraded, 0.95)

    def test_xts_block_corruption_recovered(self, setup):
        # Ciphertext-space errors become whole-block plaintext garbage; MILR
        # must recover the affected layers (this is the PSEC scenario).
        xts = XTSMemoryModel(seed=3)
        rng = np.random.default_rng(3)
        for layer in setup["model"].layers:
            if layer.has_parameters:
                corrupted, _ = xts.corrupt_plaintext(layer.get_weights(), 2e-4, rng)
                layer.set_weights(corrupted)
        setup["protector"].detect_and_recover()
        assert _normalized(setup) >= 0.95


class TestWholeLayerSelfHealing:
    def test_targeted_attack_on_dense_layer(self, setup):
        # Security-attack scenario: an attacker overwrites one whole layer.
        corrupt_layer_completely(setup["model"], "d2", np.random.default_rng(4))
        degraded = _normalized(setup)
        detection, recovery = setup["protector"].detect_and_recover()
        assert detection.any_errors
        assert _normalized(setup) >= max(degraded, 0.95)

    def test_every_layer_attack_is_detected(self, setup):
        for name in ("c1", "cb1", "d1", "db1", "d2", "db2"):
            corrupt_layer_completely(setup["model"], name, np.random.default_rng(5))
            detection = setup["protector"].detect()
            assert setup["model"].layer_index(name) in detection.erroneous_layers
            restore_weights(setup["model"], setup["clean"])


class TestECCPlusMILR:
    def test_combined_protection_pipeline(self, setup):
        # ECC first (corrects single-bit errors), then MILR handles the rest.
        ecc = ECCProtectedModel(setup["model"], setup["clean"])
        ecc.inject_codeword_bit_flips(5e-4, np.random.default_rng(6))
        ecc.scrub_into_model()
        setup["protector"].detect_and_recover()
        assert _normalized(setup) >= 0.95


class TestRepeatedCycles:
    def test_multiple_error_recovery_cycles(self, setup):
        # The protector must stay consistent over repeated corrupt/heal cycles
        # (initialization runs only once, as in the paper).
        rng = np.random.default_rng(7)
        for _ in range(3):
            corrupt_model_whole_weight(setup["model"], 1e-3, rng)
            setup["protector"].detect_and_recover()
        assert _normalized(setup) >= 0.95

    def test_detection_clean_after_each_cycle(self, setup):
        rng = np.random.default_rng(8)
        for _ in range(2):
            corrupt_model_whole_weight(setup["model"], 1e-3, rng)
            setup["protector"].detect_and_recover()
            follow_up = setup["protector"].detect()
            assert not follow_up.any_errors
