"""Tests for plain-text report formatting and campaign aggregation."""

from __future__ import annotations

import pytest

from repro.analysis import (
    aggregate_campaign,
    format_campaign_report,
    format_series,
    format_storage_table,
    format_table,
)
from repro.analysis.availability import dram_error_interval_seconds


class TestFormatTable:
    def test_empty(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_contains_headers_and_values(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.125}])
        assert "a" in text and "b" in text
        assert "4.1250" in text

    def test_title_included(self):
        assert format_table([{"x": 1}], title="My Table").startswith("My Table")

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        lines = text.splitlines()
        assert lines[0].strip() == "b"
        assert "a" not in lines[0]

    def test_precision(self):
        text = format_table([{"x": 0.123456}], precision=2)
        assert "0.12" in text and "0.1235" not in text

    def test_missing_column_value_rendered_empty(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in text


class TestFormatStorageTable:
    def test_contains_paper_columns(self):
        rows = [
            {
                "network": "mnist",
                "backup_weights_mb": 6.68,
                "ecc_mb": 1.46,
                "milr_mb": 6.81,
                "ecc_and_milr_mb": 8.27,
            }
        ]
        text = format_storage_table(rows, "Table V")
        assert "Table V" in text
        assert "6.68" in text and "8.27" in text


class TestFormatSeries:
    def test_two_columns(self):
        text = format_series("error_rate", "accuracy", [(1e-5, 1.0), (1e-3, 0.4)])
        assert "error_rate" in text and "accuracy" in text
        assert "0.4000" in text


def _record(index, scheme="milr", point=1e-4, **result):
    """Minimal campaign record; result fields default to a clean MILR trial."""
    fields = dict(
        normalized_accuracy=1.0,
        faulted=True,
        detected=True,
        detected_layers=1,
        recovered_layers=1,
        bit_exact=True,
        detection_seconds=0.0,
        recovery_seconds=0.0,
        model_bytes=0,
    )
    fields.update(result)
    return {
        "key": f"k{index}",
        "spec": {
            "network": "net",
            "fault_mode": "rber",
            "scheme": scheme,
            "point": point,
            "trial_index": index,
        },
        "result": fields,
    }


class TestAggregateCampaign:
    def test_hand_computed_cell(self):
        records = [
            _record(0, normalized_accuracy=1.0),
            _record(1, normalized_accuracy=0.8, bit_exact=False),
            _record(2, normalized_accuracy=0.6, detected=False, bit_exact=False),
            # Not faulted: excluded from every rate denominator.
            _record(3, normalized_accuracy=1.0, faulted=False, detected=False),
        ]
        rows = aggregate_campaign(records)
        assert len(rows) == 1
        row = rows[0]
        assert row["trials"] == 4
        assert row["detection_rate"] == pytest.approx(2 / 3)
        assert row["recovery_rate"] == pytest.approx(1.0)
        assert row["bit_exact_rate"] == pytest.approx(1 / 3)
        # mean of (1.0, 0.8, 0.6, 1.0) = 0.85.
        assert row["acc_mean"] == pytest.approx(0.85)
        assert row["acc_lo"] < 0.85 < row["acc_hi"]

    def test_recovery_rate_counts_fully_recovered_only(self):
        records = [
            _record(0, detected_layers=2, recovered_layers=2),
            _record(1, detected_layers=2, recovered_layers=1),
        ]
        assert aggregate_campaign(records)[0]["recovery_rate"] == pytest.approx(0.5)

    def test_rates_blank_without_denominator(self):
        records = [_record(0, faulted=False, detected=False)]
        row = aggregate_campaign(records)[0]
        assert row["detection_rate"] == ""
        assert row["recovery_rate"] == ""
        assert row["bit_exact_rate"] == ""

    def test_cells_sorted_by_point_then_scheme(self):
        records = [
            _record(0, scheme="none", point=1e-3),
            _record(1, scheme="milr", point=1e-3),
            _record(2, scheme="none", point=1e-4),
        ]
        rows = aggregate_campaign(records)
        assert [(row["point"], row["scheme"]) for row in rows] == [
            ("0.0001", "none"),
            ("0.001", "milr"),
            ("0.001", "none"),
        ]

    def test_availability_from_measured_times(self):
        model_bytes = 4_000_000
        interval = dram_error_interval_seconds(model_bytes)
        records = [
            _record(
                0,
                detection_seconds=2.0,
                recovery_seconds=4.0,
                model_bytes=model_bytes,
            )
        ]
        row = aggregate_campaign(records)[0]
        assert row["mean_td_ms"] == pytest.approx(2000.0)
        assert row["mean_tr_ms"] == pytest.approx(4000.0)
        # Eq. 6 at one maintenance period per expected error: 2 Td + Tr.
        assert row["availability"] == pytest.approx(1.0 - 8.0 / interval)

    def test_timing_blank_when_never_measured(self):
        row = aggregate_campaign([_record(0)])[0]
        assert row["mean_td_ms"] == ""
        assert row["availability"] == ""


class TestFormatCampaignReport:
    def test_timing_columns_are_optional(self):
        records = [_record(0, detection_seconds=1.0, model_bytes=1000)]
        with_timing = format_campaign_report(records)
        without = format_campaign_report(records, include_timing=False)
        assert "mean_td_ms" in with_timing and "availability" in with_timing
        assert "mean_td_ms" not in without and "availability" not in without

    def test_deterministic_for_shuffled_records(self):
        records = [
            _record(index, point=point, normalized_accuracy=0.9 + 0.01 * index)
            for index, point in enumerate((1e-4, 1e-3, 1e-2))
        ]
        report = format_campaign_report(records, include_timing=False)
        shuffled = format_campaign_report(list(reversed(records)), include_timing=False)
        assert report == shuffled
