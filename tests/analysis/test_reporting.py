"""Tests for plain-text report formatting."""

from __future__ import annotations

from repro.analysis import format_series, format_storage_table, format_table


class TestFormatTable:
    def test_empty(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_contains_headers_and_values(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.125}])
        assert "a" in text and "b" in text
        assert "4.1250" in text

    def test_title_included(self):
        assert format_table([{"x": 1}], title="My Table").startswith("My Table")

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        lines = text.splitlines()
        assert lines[0].strip() == "b"
        assert "a" not in lines[0]

    def test_precision(self):
        text = format_table([{"x": 0.123456}], precision=2)
        assert "0.12" in text and "0.1235" not in text

    def test_missing_column_value_rendered_empty(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in text


class TestFormatStorageTable:
    def test_contains_paper_columns(self):
        rows = [
            {
                "network": "mnist",
                "backup_weights_mb": 6.68,
                "ecc_mb": 1.46,
                "milr_mb": 6.81,
                "ecc_and_milr_mb": 8.27,
            }
        ]
        text = format_storage_table(rows, "Table V")
        assert "Table V" in text
        assert "6.68" in text and "8.27" in text


class TestFormatSeries:
    def test_two_columns(self):
        text = format_series("error_rate", "accuracy", [(1e-5, 1.0), (1e-3, 0.4)])
        assert "error_rate" in text and "accuracy" in text
        assert "0.4000" in text
