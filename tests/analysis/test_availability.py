"""Tests for the availability / minimum-accuracy trade-off model (Eq. 6, Fig. 12)."""

from __future__ import annotations

import pytest

from repro.analysis import AvailabilityModel, dram_error_interval_seconds
from repro.exceptions import ExperimentError


@pytest.fixture
def model():
    return AvailabilityModel(
        detection_seconds=0.01,
        recovery_seconds=1.0,
        error_interval_seconds=3600.0,
        detections_per_period=2,
        yearly_accuracy_floor=0.5,
    )


class TestDramErrorInterval:
    def test_larger_models_fail_more_often(self):
        small = dram_error_interval_seconds(1_000_000)
        large = dram_error_interval_seconds(10_000_000)
        assert large < small

    def test_positive(self):
        assert dram_error_interval_seconds(6_680_000) > 0

    def test_invalid_size(self):
        with pytest.raises(ExperimentError):
            dram_error_interval_seconds(0)


class TestAvailabilityModel:
    def test_invalid_parameters(self):
        with pytest.raises(ExperimentError):
            AvailabilityModel(-1.0, 1.0, 100.0)
        with pytest.raises(ExperimentError):
            AvailabilityModel(1.0, 1.0, 0.0)
        with pytest.raises(ExperimentError):
            AvailabilityModel(1.0, 1.0, 100.0, detections_per_period=0)
        with pytest.raises(ExperimentError):
            AvailabilityModel(1.0, 1.0, 100.0, yearly_accuracy_floor=2.0)

    def test_accuracy_degrades_linearly(self, model):
        assert model.accuracy_after_errors(0) == 1.0
        half_year = model.errors_per_year / 2
        assert model.accuracy_after_errors(half_year) == pytest.approx(0.75)
        assert model.accuracy_after_errors(model.errors_per_year) == pytest.approx(0.5)

    def test_accuracy_never_below_floor(self, model):
        assert model.accuracy_after_errors(model.errors_per_year * 100) == pytest.approx(0.5)

    def test_maintenance_overhead(self, model):
        assert model.maintenance_overhead_seconds() == pytest.approx(1.02)

    def test_period_shorter_than_overhead_rejected(self, model):
        with pytest.raises(ExperimentError):
            model.evaluate_period(0.5)

    def test_longer_period_raises_availability_lowers_accuracy(self, model):
        short = model.evaluate_period(100.0)
        long = model.evaluate_period(100_000.0)
        assert long.availability > short.availability
        assert long.minimum_accuracy <= short.minimum_accuracy

    def test_trade_off_curve_monotone(self, model):
        curve = model.trade_off_curve(points=20)
        availabilities = [point.availability for point in curve]
        accuracies = [point.minimum_accuracy for point in curve]
        assert availabilities == sorted(availabilities)
        assert accuracies == sorted(accuracies, reverse=True)

    def test_curve_needs_two_points(self, model):
        with pytest.raises(ExperimentError):
            model.trade_off_curve(points=1)

    def test_user_a_and_b_queries_consistent(self, model):
        # Asking for the accuracy at the availability we computed for a given
        # accuracy target must give back at least that accuracy target.
        target_accuracy = 0.999
        availability = model.availability_for_accuracy(target_accuracy)
        assert 0.0 < availability < 1.0
        accuracy = model.accuracy_for_availability(availability)
        assert accuracy >= target_accuracy - 1e-6

    def test_accuracy_for_higher_availability_is_lower(self, model):
        assert model.accuracy_for_availability(0.9999) <= model.accuracy_for_availability(0.99)

    def test_invalid_query_arguments(self, model):
        with pytest.raises(ExperimentError):
            model.availability_for_accuracy(1.5)
        with pytest.raises(ExperimentError):
            model.accuracy_for_availability(1.0)

    def test_zero_degradation_gives_full_availability(self):
        model = AvailabilityModel(0.01, 1.0, 3600.0, yearly_accuracy_floor=1.0)
        assert model.availability_for_accuracy(0.99999) == 1.0


class TestFromObservations:
    def test_means_of_measured_samples(self):
        model = AvailabilityModel.from_observations(
            [0.001, 0.003],
            [0.4, 0.6],
            error_interval_seconds=3600.0,
            detections_per_period=4,
        )
        assert model.detection_seconds == pytest.approx(0.002)
        assert model.recovery_seconds == pytest.approx(0.5)
        assert model.error_interval_seconds == 3600.0
        assert model.detections_per_period == 4

    def test_interval_estimated_from_observed_errors(self):
        model = AvailabilityModel.from_observations(
            [0.001], [0.1], observed_errors=5, observation_seconds=50.0
        )
        assert model.error_interval_seconds == pytest.approx(10.0)

    def test_zero_errors_fall_back_to_observation_window(self):
        model = AvailabilityModel.from_observations(
            [0.001], [0.1], observed_errors=0, observation_seconds=120.0
        )
        assert model.error_interval_seconds == pytest.approx(120.0)

    def test_empty_samples_mean_zero_times(self):
        model = AvailabilityModel.from_observations(
            [], [], error_interval_seconds=60.0
        )
        assert model.detection_seconds == 0.0
        assert model.recovery_seconds == 0.0

    def test_needs_some_interval_information(self):
        with pytest.raises(ExperimentError):
            AvailabilityModel.from_observations([0.001], [0.1])
