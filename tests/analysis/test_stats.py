"""Tests for box-plot statistics, confidence intervals and normalized accuracy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    BoxPlotStats,
    mean_confidence_interval,
    normalized_accuracy,
    summarize_runs,
)


class TestNormalizedAccuracy:
    def test_ratio(self):
        assert normalized_accuracy(0.5, 1.0) == 0.5

    def test_perfect(self):
        assert normalized_accuracy(0.848, 0.848) == pytest.approx(1.0)

    def test_zero_baseline_falls_back_to_raw(self):
        assert normalized_accuracy(0.3, 0.0) == 0.3

    def test_can_exceed_one(self):
        # Recovery occasionally lands slightly above the noisy baseline.
        assert normalized_accuracy(0.9, 0.85) > 1.0


class TestBoxPlotStats:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxPlotStats.from_samples([])

    def test_single_sample(self):
        stats = BoxPlotStats.from_samples([0.7])
        assert stats.median == 0.7
        assert stats.minimum == stats.maximum == 0.7
        assert stats.outliers == ()

    def test_quartiles_of_known_data(self):
        stats = BoxPlotStats.from_samples([1, 2, 3, 4, 5])
        assert stats.median == 3
        assert stats.first_quartile == 2
        assert stats.third_quartile == 4

    def test_outlier_detection(self):
        samples = [1.0] * 20 + [100.0]
        stats = BoxPlotStats.from_samples(samples)
        assert 100.0 in stats.outliers
        assert stats.upper_whisker == 1.0

    def test_whiskers_clipped_to_data(self):
        samples = list(np.random.default_rng(0).normal(0, 1, 200))
        stats = BoxPlotStats.from_samples(samples)
        assert stats.lower_whisker >= stats.minimum
        assert stats.upper_whisker <= stats.maximum

    def test_mean_and_count(self):
        stats = BoxPlotStats.from_samples([0.0, 1.0])
        assert stats.mean == 0.5
        assert stats.count == 2

    def test_as_dict_keys(self):
        stats = BoxPlotStats.from_samples([1, 2, 3])
        assert set(stats.as_dict()) == {"count", "min", "q1", "median", "q3", "max", "mean"}


class TestMeanConfidenceInterval:
    def test_hand_computed_95(self):
        # mean 2.5, sample std sqrt(5/3) ~= 1.29099, n = 4,
        # z_{0.975} = 1.959964 -> half width = 1.959964 * 1.29099 / 2.
        interval = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert interval.mean == pytest.approx(2.5)
        assert interval.count == 4
        assert interval.half_width == pytest.approx(1.2651, abs=1e-4)
        assert interval.lower == pytest.approx(2.5 - 1.2651, abs=1e-4)
        assert interval.upper == pytest.approx(2.5 + 1.2651, abs=1e-4)

    def test_wider_confidence_widens_interval(self):
        samples = [0.1, 0.4, 0.9, 0.3]
        assert (
            mean_confidence_interval(samples, 0.99).half_width
            > mean_confidence_interval(samples, 0.9).half_width
        )

    def test_single_sample_degenerates_to_mean(self):
        interval = mean_confidence_interval([0.7])
        assert interval.lower == interval.upper == interval.mean == 0.7

    def test_zero_variance(self):
        interval = mean_confidence_interval([0.5, 0.5, 0.5])
        assert interval.half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=1.0)


class TestSummarizeRuns:
    def test_summarizes_each_key(self):
        summary = summarize_runs({1e-3: [0.9, 1.0], 1e-4: [1.0, 1.0]})
        assert set(summary) == {"0.001", "0.0001"}
        assert summary["0.001"].median == pytest.approx(0.95)

    def test_sorted_keys(self):
        summary = summarize_runs({2: [1], 1: [2]})
        assert list(summary) == ["1", "2"]
