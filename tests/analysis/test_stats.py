"""Tests for box-plot statistics and normalized accuracy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import BoxPlotStats, normalized_accuracy, summarize_runs


class TestNormalizedAccuracy:
    def test_ratio(self):
        assert normalized_accuracy(0.5, 1.0) == 0.5

    def test_perfect(self):
        assert normalized_accuracy(0.848, 0.848) == pytest.approx(1.0)

    def test_zero_baseline_falls_back_to_raw(self):
        assert normalized_accuracy(0.3, 0.0) == 0.3

    def test_can_exceed_one(self):
        # Recovery occasionally lands slightly above the noisy baseline.
        assert normalized_accuracy(0.9, 0.85) > 1.0


class TestBoxPlotStats:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxPlotStats.from_samples([])

    def test_single_sample(self):
        stats = BoxPlotStats.from_samples([0.7])
        assert stats.median == 0.7
        assert stats.minimum == stats.maximum == 0.7
        assert stats.outliers == ()

    def test_quartiles_of_known_data(self):
        stats = BoxPlotStats.from_samples([1, 2, 3, 4, 5])
        assert stats.median == 3
        assert stats.first_quartile == 2
        assert stats.third_quartile == 4

    def test_outlier_detection(self):
        samples = [1.0] * 20 + [100.0]
        stats = BoxPlotStats.from_samples(samples)
        assert 100.0 in stats.outliers
        assert stats.upper_whisker == 1.0

    def test_whiskers_clipped_to_data(self):
        samples = list(np.random.default_rng(0).normal(0, 1, 200))
        stats = BoxPlotStats.from_samples(samples)
        assert stats.lower_whisker >= stats.minimum
        assert stats.upper_whisker <= stats.maximum

    def test_mean_and_count(self):
        stats = BoxPlotStats.from_samples([0.0, 1.0])
        assert stats.mean == 0.5
        assert stats.count == 2

    def test_as_dict_keys(self):
        stats = BoxPlotStats.from_samples([1, 2, 3])
        assert set(stats.as_dict()) == {"count", "min", "q1", "median", "q3", "max", "mean"}


class TestSummarizeRuns:
    def test_summarizes_each_key(self):
        summary = summarize_runs({1e-3: [0.9, 1.0], 1e-4: [1.0, 1.0]})
        assert set(summary) == {"0.001", "0.0001"}
        assert summary["0.001"].median == pytest.approx(0.95)

    def test_sorted_keys(self):
        summary = summarize_runs({2: [1], 1: [2]})
        assert list(summary) == ["1", "2"]
