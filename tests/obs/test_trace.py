"""Unit tests for the span tracer (repro.obs.trace)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import Span, Tracer


class TestSpanBasics:
    def test_duration_clamped_non_negative(self):
        span = Span(name="x", span_id=1, start=10.0, end=9.0)
        assert span.duration == 0.0
        span.end = 10.5
        assert span.duration == pytest.approx(0.5)

    def test_as_dict_round_trips_through_json(self):
        span = Span(name="x", span_id=1, start=1.0, end=2.0, trace_id="t", attrs={"k": 1})
        loaded = json.loads(json.dumps(span.as_dict()))
        assert loaded["name"] == "x"
        assert loaded["trace_id"] == "t"
        assert loaded["duration"] == pytest.approx(1.0)
        assert loaded["attrs"] == {"k": 1}


class TestTracerEnabled:
    def test_span_records_and_times(self):
        tracer = Tracer()
        with tracer.span("op", attrs={"a": 1}) as span:
            pass
        assert len(tracer) == 1
        recorded = tracer.spans()[0]
        assert recorded is span
        assert recorded.end >= recorded.start
        assert recorded.attrs == {"a": 1}

    def test_nesting_tracked_with_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_nesting_is_per_thread(self):
        tracer = Tracer()
        seen = {}

        def worker(name):
            with tracer.span(name) as span:
                seen[name] = span.parent_id

        with tracer.span("main"):
            thread = threading.Thread(target=worker, args=("other",))
            thread.start()
            thread.join()
        # The worker thread starts its own context: no parent inherited.
        assert seen["other"] is None

    def test_record_retroactive_span(self):
        tracer = Tracer()
        span = tracer.record("late", start=1.0, end=3.0, trace_id="t1")
        assert span is not None
        assert span.duration == pytest.approx(2.0)
        assert tracer.spans_for("t1") == [span]

    def test_record_defaults_to_point_event(self):
        tracer = Tracer()
        span = tracer.record("point")
        assert span.duration == 0.0

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            tracer.record(f"s{index}", start=float(index), end=float(index))
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [span.name for span in tracer.spans()] == ["s2", "s3", "s4"]

    def test_clear_resets_everything(self):
        tracer = Tracer(capacity=2)
        for index in range(4):
            tracer.record(f"s{index}")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        assert tracer.spans() == []

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_export_jsonl_overwrites(self, tmp_path):
        tracer = Tracer()
        tracer.record("a", trace_id="t")
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 1
        tracer.record("b")
        assert tracer.export_jsonl(path) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["a", "b"]

    def test_thread_safe_appends(self):
        tracer = Tracer(capacity=10_000)

        def worker():
            for _ in range(200):
                tracer.record("op")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer) == 8 * 200


class TestTracerDisabled:
    def test_span_still_times_but_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("op") as span:
            pass
        assert span.end >= span.start
        assert len(tracer) == 0

    def test_record_returns_none(self):
        tracer = Tracer(enabled=False)
        assert tracer.record("op") is None
        assert len(tracer) == 0
