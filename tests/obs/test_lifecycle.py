"""Unit tests for fault-lifecycle chains (repro.obs.lifecycle)."""

from __future__ import annotations

import pytest

from repro.obs import FaultLifecycleLog, Tracer


@pytest.fixture()
def log():
    return FaultLifecycleLog(Tracer())


def _walk_full_chain(log, model="m", layer=3, t0=100.0):
    fault_id = log.on_inject(model, layer, "bit_flip", False, t0)
    log.on_detect(model, layer, t0 + 1.0, t0 + 1.5)
    log.on_quarantine_open(model, layer, t0 + 1.5)
    log.on_repair(model, layer, t0 + 2.0, t0 + 3.0, "solver_snap", 1, True)
    log.on_quarantine_close(model, layer, t0 + 3.5)
    log.on_verify(model, layer, t0 + 3.0, t0 + 3.5, True)
    return fault_id


class TestFaultChains:
    def test_full_chain_is_complete_with_td_tr(self, log):
        fault_id = _walk_full_chain(log)
        (summary,) = log.summaries()
        assert summary.fault_id == fault_id
        assert summary.closed and summary.complete
        assert summary.stages == (
            "inject", "detect", "repair", "quarantine", "verify",
        )
        # Td: injection end -> first detect end; Tr: detect end -> verify end.
        assert summary.detection_seconds == pytest.approx(1.5)
        assert summary.repair_seconds == pytest.approx(2.0)
        assert summary.total_seconds == pytest.approx(3.5)
        assert summary.reassert_cycles == 0
        assert log.open_count() == 0

    def test_spans_correlated_by_fault_id(self):
        tracer = Tracer()
        log = FaultLifecycleLog(tracer)
        fault_id = _walk_full_chain(log)
        names = [span.name for span in tracer.spans_for(fault_id)]
        assert names == [
            "fault.inject", "fault.detect", "fault.repair",
            "fault.quarantine", "fault.verify",
        ]

    def test_reassert_reopens_closed_chain_and_redetects(self, log):
        fault_id = log.on_inject("m", 3, "stuck_at", False, 1.0)
        log.on_detect("m", 3, 2.0, 2.1)
        log.on_verify("m", 3, 3.0, 3.1, True)
        assert log.open_count() == 0
        reassert_id = log.on_inject("m", 3, "stuck_at", True, 4.0)
        assert reassert_id == fault_id  # same chain, not a new one
        assert log.open_count() == 1
        log.on_detect("m", 3, 5.0, 5.1)
        log.on_verify("m", 3, 6.0, 6.1, True)
        (summary,) = log.summaries()
        assert summary.stages == (
            "inject", "detect", "verify", "reassert", "redetect", "verify",
        )
        assert summary.reassert_cycles == 1
        assert summary.complete is False  # no repair stage was ever recorded
        assert len(log) == 1

    def test_orphan_reassert_opens_fresh_chain(self, log):
        fault_id = log.on_inject("m", 3, "stuck_at", True, 1.0)
        assert fault_id is not None
        (summary,) = log.summaries()
        assert summary.stages == ("inject",)

    def test_fanout_two_faults_same_layer_share_stages(self, log):
        first = log.on_inject("m", 3, "bit_flip", False, 1.0)
        second = log.on_inject("m", 3, "bit_flip", False, 1.5)
        assert first != second
        log.on_detect("m", 3, 2.0, 2.1)
        log.on_repair("m", 3, 2.2, 2.4, "checkpoint_free", 1, True)
        log.on_verify("m", 3, 2.5, 2.6, True)
        summaries = log.summaries()
        assert len(summaries) == 2
        assert all(summary.complete for summary in summaries)

    def test_degrade_keeps_chain_open(self, log):
        log.on_inject("m", 3, "bit_flip", False, 1.0)
        log.on_detect("m", 3, 2.0, 2.1)
        log.on_degrade("m", 3, 3.0)
        (summary,) = log.summaries()
        assert not summary.closed and not summary.complete
        assert summary.stages[-1] == "degrade"
        assert log.open_count() == 1

    def test_quarantine_window_spans_open_to_close(self):
        tracer = Tracer()
        log = FaultLifecycleLog(tracer)
        fault_id = log.on_inject("m", 3, "bit_flip", False, 1.0)
        log.on_quarantine_open("m", 3, 10.0)
        log.on_quarantine_open("m", 3, 11.0)  # re-open is a no-op
        log.on_quarantine_close("m", 3, 12.0)
        (span,) = [
            span for span in tracer.spans_for(fault_id)
            if span.name == "fault.quarantine"
        ]
        assert span.start == pytest.approx(10.0)
        assert span.end == pytest.approx(12.0)

    def test_stage_spans_carry_chain_attrs(self):
        tracer = Tracer()
        log = FaultLifecycleLog(tracer)
        fault_id = log.on_inject("m", 3, "bit_flip", False, 1.0, attrs={"flipped_bits": 2})
        (span,) = tracer.spans_for(fault_id)
        assert span.attrs["model"] == "m"
        assert span.attrs["layer_index"] == 3
        assert span.attrs["fault_model"] == "bit_flip"
        assert span.attrs["flipped_bits"] == 2

    def test_disabled_log_records_nothing(self):
        tracer = Tracer()
        log = FaultLifecycleLog(tracer, enabled=False)
        assert log.on_inject("m", 3, "bit_flip", False, 1.0) is None
        log.on_detect("m", 3, 2.0, 2.1)
        log.on_verify("m", 3, 3.0, 3.1, True)
        assert len(log) == 0
        assert log.summaries() == []
        assert len(tracer) == 0

    def test_chain_survives_disabled_tracer(self):
        # Lifecycle enabled over a disabled tracer: chains stay queryable
        # even though no spans are retained.
        tracer = Tracer(enabled=False)
        log = FaultLifecycleLog(tracer)
        _walk_full_chain(log)
        (summary,) = log.summaries()
        assert summary.complete
        assert len(tracer) == 0
