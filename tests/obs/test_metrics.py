"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = Gauge()
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value == pytest.approx(2.5)

    def test_histogram_bucket_assignment(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 3.0, 100.0):
            hist.observe(value)
        # bisect_left: a value equal to a bound lands in that bound's bucket.
        assert hist.bucket_counts() == [2, 0, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(104.5)

    def test_histogram_quantile_conventions(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        assert hist.quantile(0.5) == 0.0  # empty
        for _ in range(99):
            hist.observe(0.5)
        hist.observe(100.0)  # +Inf bucket
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == 4.0  # +Inf reported as last finite bound
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_histogram_buckets_validated(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", model="m")
        second = registry.counter("repro_x_total", model="m")
        other = registry.counter("repro_x_total", model="n")
        assert first is second
        assert first is not other

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.gauge("repro_g", a="1", b="2")
        b = registry.gauge("repro_g", b="2", a="1")
        assert a is b

    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_reqs_total", model="m").inc(3)
        registry.gauge("repro_depth").set(2)
        hist = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = registry.exposition()
        assert '# TYPE repro_reqs_total counter' in text
        assert 'repro_reqs_total{model="m"} 3' in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 2" in text
        # Histogram buckets are cumulative and end with +Inf = count.
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_count 3" in text
        assert "repro_lat_seconds_sum 5.55" in text

    def test_snapshot_and_jsonl_append(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc()
        registry.histogram("repro_b_seconds", buckets=(1.0,)).observe(0.5)
        path = tmp_path / "metrics.jsonl"
        registry.export_jsonl(path)
        registry.counter("repro_a_total").inc()
        registry.export_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2  # append mode: one line per snapshot
        assert lines[0]["counters"]["repro_a_total"] == 1
        assert lines[1]["counters"]["repro_a_total"] == 2
        hist = lines[1]["histograms"]["repro_b_seconds"]
        assert hist["count"] == 1
        assert set(hist) >= {"count", "sum", "buckets", "counts", "p50", "p99"}

    def test_empty_registry_exposition_and_snapshot(self):
        registry = MetricsRegistry()
        assert registry.exposition() == ""
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}
