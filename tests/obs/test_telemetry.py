"""Unit tests for the telemetry facade (repro.obs.telemetry)."""

from __future__ import annotations

import json

import pytest

from repro.obs import Telemetry, TelemetryConfig


class TestTelemetryConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.enabled
        assert config.trace_buffer_size == 65536

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(trace_buffer_size=0)
        with pytest.raises(ValueError):
            TelemetryConfig(latency_buckets=())
        with pytest.raises(ValueError):
            TelemetryConfig(latency_buckets=(2.0, 1.0))


class TestTelemetryHooks:
    def test_fresh_injection_opens_chain_and_counts(self):
        telemetry = Telemetry()
        fault_id = telemetry.fault_injected("m", 3, "bit_flip", False, 1.0, flipped_bits=2)
        assert fault_id is not None
        counter = telemetry.metrics.counter(
            "repro_faults_injected_total", model="m", fault_model="bit_flip", kind="fresh"
        )
        assert counter.value == 1
        assert telemetry.lifecycle.open_count() == 1

    def test_scratch_injection_counted_but_no_chain(self):
        telemetry = Telemetry()
        assert telemetry.fault_injected("m", -1, "scratch_noise", False, 1.0) is None
        counter = telemetry.metrics.counter(
            "repro_faults_injected_total",
            model="m", fault_model="scratch_noise", kind="fresh",
        )
        assert counter.value == 1
        assert telemetry.lifecycle.open_count() == 0

    def test_strategy_counters_count_stages_tried(self):
        telemetry = Telemetry()
        telemetry.strategy_attempted("checkpoint_free", False)
        telemetry.strategy_attempted("solver_snap", True)
        attempts = telemetry.metrics.counter(
            "repro_repair_strategy_attempts_total", strategy="checkpoint_free"
        )
        success = telemetry.metrics.counter(
            "repro_repair_strategy_success_total", strategy="solver_snap"
        )
        assert attempts.value == 1
        assert success.value == 1

    def test_full_lifecycle_through_facade(self):
        telemetry = Telemetry()
        telemetry.fault_injected("m", 3, "bit_flip", False, 1.0)
        telemetry.fault_detected("m", 3, 2.0, 2.5)
        telemetry.quarantine_opened("m", 3, 2.5)
        telemetry.repair_attempt("m", 3, 3.0, 4.0, "solver_snap", 1, True)
        telemetry.quarantine_closed("m", 3, 4.5)
        telemetry.fault_verified("m", 3, 4.0, 4.5, True)
        (chain,) = telemetry.fault_chains()
        assert chain.complete
        hist = telemetry.metrics.histogram(
            "repro_repair_seconds",
            buckets=telemetry.config.latency_buckets,
            model="m",
        )
        assert hist.count == 1

    def test_degraded_counted_and_chain_left_open(self):
        telemetry = Telemetry()
        telemetry.fault_injected("m", 3, "bit_flip", False, 1.0)
        telemetry.fault_degraded("m", 3, 2.0)
        (chain,) = telemetry.fault_chains()
        assert not chain.closed
        counter = telemetry.metrics.counter("repro_faults_degraded_total", model="m")
        assert counter.value == 1

    def test_exports(self, tmp_path):
        telemetry = Telemetry()
        telemetry.fault_injected("m", 3, "bit_flip", False, 1.0)
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.jsonl"
        assert telemetry.export_trace(trace_path) == 1
        snapshot = telemetry.export_metrics(metrics_path)
        assert json.loads(metrics_path.read_text())["counters"] == snapshot["counters"]

    def test_snapshot_without_registry(self):
        telemetry = Telemetry()
        snapshot = telemetry.snapshot()
        assert set(snapshot) >= {"time", "counters", "gauges", "histograms"}


class TestTelemetryDisabled:
    def test_every_hook_is_a_no_op(self):
        telemetry = Telemetry(TelemetryConfig(enabled=False))
        assert telemetry.fault_injected("m", 3, "bit_flip", False, 1.0) is None
        telemetry.fault_detected("m", 3, 1.0, 2.0)
        telemetry.quarantine_opened("m", 3, 2.0)
        telemetry.strategy_attempted("solver_snap", True)
        telemetry.repair_attempt("m", 3, 2.0, 3.0, "solver_snap", 1, True)
        telemetry.quarantine_closed("m", 3, 3.0)
        telemetry.fault_verified("m", 3, 3.0, 3.5, True)
        telemetry.fault_degraded("m", 3, 4.0)
        telemetry.collect([])
        assert telemetry.fault_chains() == []
        assert len(telemetry.tracer) == 0
        assert telemetry.snapshot()["counters"] == {}

    def test_disabled_tracer_spans_still_time(self):
        telemetry = Telemetry(TelemetryConfig(enabled=False))
        with telemetry.tracer.span("op") as span:
            pass
        assert span.end >= span.start
        assert len(telemetry.tracer) == 0
