"""Tests for the sharded, resumable campaign runner and its result stores."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    CampaignSpec,
    MemoryResultStore,
    ResultStore,
    TrialSpec,
    campaign_status,
    collect_campaign_records,
    expand_campaign,
    open_store,
    run_campaign,
    trial_key,
    trial_seed_sequence,
)
from repro.experiments.campaign import FAULT_MODEL_MODES, TIMING_RESULT_FIELDS
from repro.experiments.model_provider import TrainedNetwork

#: Grid small enough that a full serial run takes a couple of seconds.
TINY_TRAIN = dict(train_samples_per_class=8, train_epochs=1)


@pytest.fixture(scope="module")
def network(trained_tiny_network):
    return TrainedNetwork(
        name="trained_tiny",
        model=trained_tiny_network["model"],
        test_images=trained_tiny_network["test_images"],
        test_labels=trained_tiny_network["test_labels"],
        baseline_accuracy=trained_tiny_network["baseline_accuracy"],
    )


@pytest.fixture(scope="module")
def padded_network():
    """A same-padding conv net whose forward plans pin scratch buffers.

    ``trained_tiny`` uses valid padding, so activation-corruption trials find
    nothing there; zoo-mode execution tests need pinned pad buffers.
    """
    from repro.nn import Bias, Conv2D, Dense, Flatten, ReLU, Sequential

    model = Sequential(
        [
            Conv2D(4, 3, padding="same", seed=21, name="c1"),
            Bias(name="cb1", seed=22),
            ReLU(name="r1"),
            Flatten(name="f1"),
            Dense(10, seed=23, name="d1"),
            Bias(name="db1", seed=24),
        ],
        name="padded_tiny",
    )
    model.build((12, 12, 1))
    data_rng = np.random.default_rng(6)
    images = data_rng.random((16, 12, 12, 1)).astype(np.float32)
    labels = data_rng.integers(0, 10, size=16)
    return TrainedNetwork(
        name="padded_tiny",
        model=model,
        test_images=images,
        test_labels=labels,
        baseline_accuracy=model.accuracy(images, labels),
    )


def tiny_spec(**overrides) -> CampaignSpec:
    fields = dict(
        name="test",
        networks=("trained_tiny",),
        error_rates=(1e-4, 1e-3),
        fault_modes=("rber",),
        schemes=("none", "milr"),
        repetitions=2,
        seed=11,
        **TINY_TRAIN,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


def deterministic_results(store) -> dict[str, dict]:
    """Per-key result dicts with the wall-clock fields stripped."""
    return {
        record["key"]: {
            key: value
            for key, value in record["result"].items()
            if key not in TIMING_RESULT_FIELDS
        }
        for record in store.records()
    }


class TestExpansion:
    def test_grid_size_and_order(self, network):
        trials = expand_campaign(tiny_spec(), networks={"trained_tiny": network})
        # 2 rates x 2 schemes x 2 repetitions.
        assert len(trials) == 8
        assert [trial.trial_index for trial in trials] == list(range(8))
        # Canonical nesting: points, then schemes, then repetitions.
        assert trials[0].point == 1e-4 and trials[0].scheme == "none"
        assert trials[1].repetition == 1
        assert trials[2].scheme == "milr"
        assert trials[4].point == 1e-3

    def test_whole_weight_drops_ecc_schemes(self, network):
        spec = tiny_spec(
            fault_modes=("whole_weight",), schemes=("none", "ecc", "milr", "ecc+milr")
        )
        trials = expand_campaign(spec, networks={"trained_tiny": network})
        assert {trial.scheme for trial in trials} == {"none", "milr"}

    def test_whole_weight_never_substitutes_excluded_schemes(self, network):
        # An explicit scheme list disjoint from the mode's valid set yields
        # zero trials, not schemes the caller never asked for.
        spec = tiny_spec(fault_modes=("whole_weight",), schemes=("ecc",))
        assert expand_campaign(spec, networks={"trained_tiny": network}) == []

    def test_whole_layer_points_are_parameterized_layers(self, network):
        spec = tiny_spec(fault_modes=("whole_layer",), repetitions=1)
        trials = expand_campaign(spec, networks={"trained_tiny": network})
        expected = [
            layer.name for layer in network.model.layers if layer.has_parameters
        ]
        assert [trial.point for trial in trials] == expected
        assert all(trial.scheme == "milr" for trial in trials)

    def test_unknown_network_rejected(self):
        with pytest.raises(ExperimentError):
            expand_campaign(tiny_spec(networks=("no_such_network",)))

    def test_unknown_scheme_and_mode_rejected(self, network):
        with pytest.raises(ExperimentError):
            expand_campaign(
                tiny_spec(schemes=("nope",)), networks={"trained_tiny": network}
            )
        with pytest.raises(ExperimentError):
            expand_campaign(
                tiny_spec(fault_modes=("nope",)), networks={"trained_tiny": network}
            )

    def test_round_trip_through_dict(self):
        spec = tiny_spec()
        assert CampaignSpec.from_dict(spec.as_dict()) == spec


class TestKeysAndSeeds:
    def test_key_is_content_hash(self, network):
        trials = expand_campaign(tiny_spec(), networks={"trained_tiny": network})
        again = expand_campaign(tiny_spec(), networks={"trained_tiny": network})
        assert [trial.key for trial in trials] == [trial.key for trial in again]
        assert len({trial.key for trial in trials}) == len(trials)

    def test_key_survives_json_round_trip(self, network):
        trial = expand_campaign(tiny_spec(), networks={"trained_tiny": network})[3]
        payload = json.loads(json.dumps(trial.as_dict()))
        assert trial_key(payload) == trial.key
        assert TrialSpec(**payload).key == trial.key

    def test_milr_config_changes_keys(self, network):
        from repro.core import MILRConfig

        default_keys = {
            t.key for t in expand_campaign(tiny_spec(), networks={"trained_tiny": network})
        }
        config_keys = {
            t.key
            for t in expand_campaign(
                tiny_spec(),
                networks={"trained_tiny": network},
                milr_config=MILRConfig(crc_bits=32),
            )
        }
        # A store therefore never reuses results across protection configs.
        assert default_keys.isdisjoint(config_keys)

    def test_different_seed_changes_keys(self, network):
        keys_a = {t.key for t in expand_campaign(tiny_spec(), networks={"trained_tiny": network})}
        keys_b = {
            t.key
            for t in expand_campaign(tiny_spec(seed=12), networks={"trained_tiny": network})
        }
        assert keys_a.isdisjoint(keys_b)

    def test_trial_seeds_are_spawned_per_index(self, network):
        trials = expand_campaign(tiny_spec(), networks={"trained_tiny": network})
        streams = [
            np.random.default_rng(trial_seed_sequence(trial)).random(4) for trial in trials
        ]
        # All trials draw from distinct streams...
        for i in range(len(streams)):
            for j in range(i + 1, len(streams)):
                assert not np.allclose(streams[i], streams[j])
        # ...and the stream is a pure function of the spec (order independent).
        reversed_streams = [
            np.random.default_rng(trial_seed_sequence(trial)).random(4)
            for trial in reversed(trials)
        ]
        np.testing.assert_array_equal(streams[0], reversed_streams[-1])


class TestWeightsBitExact:
    def test_detects_sign_bit_flip_on_zero(self, tiny_dense_model):
        from repro.experiments.injection import snapshot_weights, weights_bit_exact

        layer = next(layer for layer in tiny_dense_model.layers if layer.has_parameters)
        weights = layer.get_weights().copy()
        flat_index = np.unravel_index(0, weights.shape)
        weights[flat_index] = 0.0
        layer.set_weights(weights)
        snapshot = snapshot_weights(tiny_dense_model)
        assert weights_bit_exact(tiny_dense_model, snapshot)
        # -0.0 == 0.0 by value, but it is a different bit pattern.
        weights = weights.copy()
        weights[flat_index] = -0.0
        layer.set_weights(weights)
        assert not weights_bit_exact(tiny_dense_model, snapshot)


class TestResultStore:
    def test_append_and_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.append({"key": "a", "spec": {"x": 1}, "result": {"y": 2.5}})
        store.append({"key": "b", "spec": {"x": 2}, "result": {"y": 3.5}})
        assert store.completed_keys() == {"a", "b"}
        assert store.records()[0]["result"]["y"] == 2.5

    def test_torn_trailing_line_is_ignored(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append({"key": "a", "spec": {}, "result": {}})
        with open(path, "a") as handle:
            handle.write('{"key": "b", "spec": {"trunc')  # killed mid-write
        assert store.completed_keys() == {"a"}

    def test_duplicate_keys_resolve_to_first_record(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.append({"key": "a", "spec": {}, "result": {"y": 1}})
        store.append({"key": "a", "spec": {}, "result": {"y": 2}})
        assert len(store) == 1
        assert store.records()[0]["result"]["y"] == 1

    def test_open_store_coerces_paths(self, tmp_path):
        assert isinstance(open_store(tmp_path / "x.jsonl"), ResultStore)
        memory = MemoryResultStore()
        assert open_store(memory) is memory


class TestRunCampaign:
    def test_resume_after_kill_executes_only_missing(self, network, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path / "campaign.jsonl")
        killed = run_campaign(
            spec, store, networks={"trained_tiny": network}, max_trials=3
        )
        assert killed.executed == 3 and killed.remaining == 5
        resumed = run_campaign(spec, store, networks={"trained_tiny": network})
        assert resumed.already_completed == 3
        assert resumed.executed == 5
        assert resumed.finished
        assert len(store) == 8

    def test_rerun_is_a_noop(self, network, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path / "campaign.jsonl")
        run_campaign(spec, store, networks={"trained_tiny": network})
        rerun = run_campaign(spec, store, networks={"trained_tiny": network})
        assert rerun.executed == 0
        assert rerun.already_completed == rerun.total_trials == 8

    def test_interrupted_run_matches_uninterrupted(self, network, tmp_path):
        spec = tiny_spec()
        straight = ResultStore(tmp_path / "straight.jsonl")
        run_campaign(spec, straight, networks={"trained_tiny": network})
        interrupted = ResultStore(tmp_path / "interrupted.jsonl")
        run_campaign(spec, interrupted, networks={"trained_tiny": network}, max_trials=2)
        run_campaign(spec, interrupted, networks={"trained_tiny": network}, max_trials=3)
        run_campaign(spec, interrupted, networks={"trained_tiny": network})
        assert deterministic_results(straight) == deterministic_results(interrupted)

    def test_trial_after_torn_write_is_reexecuted(self, network, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "campaign.jsonl"
        store = ResultStore(path)
        run_campaign(spec, store, networks={"trained_tiny": network}, max_trials=2)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        resumed = run_campaign(spec, store, networks={"trained_tiny": network})
        assert resumed.already_completed == 1
        assert resumed.executed == 7
        assert len(store) == 8

    def test_collect_records_in_grid_order(self, network):
        spec = tiny_spec(repetitions=1)
        records = collect_campaign_records(spec, networks={"trained_tiny": network})
        indices = [record["spec"]["trial_index"] for record in records]
        assert indices == sorted(indices)
        assert len(records) == 4

    def test_status_counts(self, network, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path / "campaign.jsonl")
        run_campaign(spec, store, networks={"trained_tiny": network}, max_trials=3)
        rows = campaign_status(spec, store, networks={"trained_tiny": network})
        assert rows == [
            {
                "network": "trained_tiny",
                "fault_mode": "rber",
                "completed": 3,
                "total": 8,
                "pending": 5,
            }
        ]

    def test_whole_layer_records_survive_jsonl_round_trip(self, network, tmp_path):
        spec = tiny_spec(fault_modes=("whole_layer",), repetitions=1)
        store = ResultStore(tmp_path / "whole_layer.jsonl")
        summary = run_campaign(spec, store, networks={"trained_tiny": network})
        assert summary.finished
        records = store.records()
        parameterized = [
            layer.name for layer in network.model.layers if layer.has_parameters
        ]
        assert [record["spec"]["point"] for record in records] != []
        assert {record["spec"]["point"] for record in records} == set(parameterized)
        for record in records:
            result = record["result"]
            assert isinstance(result["recoverable"], bool)
            assert isinstance(result["detected"], bool)
            assert result["layer_kind"]
            assert result["strategy_value"]

    def test_rate_trial_result_fields(self, network):
        spec = tiny_spec(error_rates=(1e-3,), schemes=("milr",), repetitions=1)
        records = collect_campaign_records(spec, networks={"trained_tiny": network})
        result = records[0]["result"]
        assert result["faulted"] and result["detected"]
        assert result["flipped_bits"] > 0
        assert result["detection_seconds"] > 0
        assert result["model_bytes"] == network.model.parameter_bytes()


class TestFaultModelModes:
    def zoo_spec(self, **overrides) -> CampaignSpec:
        fields = dict(
            name="zoo",
            networks=("padded_tiny",),
            error_rates=(1e-3,),
            fault_modes=FAULT_MODEL_MODES,
            schemes=("milr",),
            repetitions=1,
            seed=11,
            **TINY_TRAIN,
        )
        fields.update(overrides)
        return CampaignSpec(**fields)

    def test_each_mode_expands_to_fault_events_point(self, padded_network):
        spec = self.zoo_spec(schemes=("none", "ecc", "milr"), fault_events=4)
        trials = expand_campaign(spec, networks={"padded_tiny": padded_network})
        # One cell per model: the single point is the event count, and only
        # MILR applies (ECC cannot see scratch buffers, `none` detects nothing).
        assert len(trials) == len(FAULT_MODEL_MODES)
        assert {trial.fault_mode for trial in trials} == set(FAULT_MODEL_MODES)
        assert all(trial.point == 4 for trial in trials)
        assert all(trial.scheme == "milr" for trial in trials)

    def test_fault_events_must_be_positive(self, padded_network):
        with pytest.raises(ExperimentError):
            expand_campaign(
                self.zoo_spec(fault_events=0),
                networks={"padded_tiny": padded_network},
            )

    def test_fault_events_survives_dict_round_trip(self):
        spec = self.zoo_spec(fault_events=7)
        restored = CampaignSpec.from_dict(spec.as_dict())
        assert restored == spec and restored.fault_events == 7

    def test_weight_model_trials_detect_and_recover(self, padded_network):
        spec = self.zoo_spec(
            fault_modes=("row_hammer", "ecc_escape", "adversarial")
        )
        records = collect_campaign_records(
            spec, networks={"padded_tiny": padded_network}
        )
        assert len(records) == 3
        for record in records:
            result = record["result"]
            assert result["fault_model"] == record["spec"]["fault_mode"]
            assert result["faulted"] and result["detected"]
            assert result["flipped_bits"] > 0
            assert result["detected_layers"] >= 1
            assert result["recovered_layers"] >= 1
            assert result["detection_seconds"] > 0
            assert result["reasserted_bits"] == 0  # transient models

    def test_stuck_at_trial_reasserts_and_redetects(self, padded_network):
        records = collect_campaign_records(
            self.zoo_spec(fault_modes=("stuck_at",)),
            networks={"padded_tiny": padded_network},
        )
        result = records[0]["result"]
        assert result["faulted"] and result["detected"]
        # The persistent cells re-corrupted the repaired layers, and a second
        # detection pass caught them again.
        assert result["reasserted_bits"] > 0
        assert result["redetected_layers"] >= 1

    def test_activation_trial_detects_without_checkpoints(self, padded_network):
        records = collect_campaign_records(
            self.zoo_spec(fault_modes=("activation",)),
            networks={"padded_tiny": padded_network},
        )
        result = records[0]["result"]
        assert result["faulted"] and result["detected"]
        assert result["injected_events"] == 3  # default fault_events
        assert result["canary_detections"] >= result["injected_events"]
        # CheckpointStore sees nothing: no weight layer is ever corrupted.
        assert result["checkpoint_detected_layers"] == 0
        assert result["detected_layers"] == 0
        assert result["recovered_layers"] == 0
        assert result["bit_exact"]

    def test_interrupted_run_matches_uninterrupted(self, padded_network, tmp_path):
        spec = self.zoo_spec()
        networks = {"padded_tiny": padded_network}
        straight = ResultStore(tmp_path / "straight.jsonl")
        run_campaign(spec, straight, networks=networks)
        interrupted = ResultStore(tmp_path / "interrupted.jsonl")
        run_campaign(spec, interrupted, networks=networks, max_trials=2)
        resumed = run_campaign(spec, interrupted, networks=networks)
        assert resumed.finished
        assert deterministic_results(straight) == deterministic_results(interrupted)


class TestSerialParallelEquivalence:
    def test_parallel_killed_resumed_matches_serial(self, tmp_path, monkeypatch):
        monkeypatch.setenv("MILR_CACHE_DIR", str(tmp_path / "models"))
        spec = CampaignSpec(
            name="equivalence",
            networks=("mnist_reduced",),
            error_rates=(1e-4, 1e-3),
            fault_modes=("rber",),
            schemes=("none", "milr"),
            repetitions=1,
            seed=5,
            **TINY_TRAIN,
        )
        serial = ResultStore(tmp_path / "serial.jsonl")
        run_campaign(spec, serial, workers=1)
        parallel = ResultStore(tmp_path / "parallel.jsonl")
        killed = run_campaign(spec, parallel, workers=2, max_trials=2)
        assert killed.remaining == 2
        resumed = run_campaign(spec, parallel, workers=2)
        assert resumed.finished
        assert deterministic_results(serial) == deterministic_results(parallel)
