"""Tests for campaign grid sharding and content-hash store merging.

The satellite's claim: running every shard of a ``--shard k/n`` split (into
per-shard stores) and merging them reproduces the serial store, proven by
:func:`store_digest` equality once wall-clock timing fields are stripped.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    MemoryResultStore,
    ResultStore,
    expand_campaign,
    merge_stores,
    run_campaign,
    store_digest,
)
from repro.experiments import CampaignSpec
from repro.experiments.campaign import TIMING_RESULT_FIELDS
from repro.experiments.model_provider import TrainedNetwork


def tiny_spec(**overrides) -> CampaignSpec:
    fields = dict(
        name="shard-test",
        networks=("trained_tiny",),
        error_rates=(1e-4, 1e-3),
        fault_modes=("rber",),
        schemes=("none", "milr"),
        repetitions=2,
        seed=11,
        train_samples_per_class=8,
        train_epochs=1,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


@pytest.fixture(scope="module")
def network(trained_tiny_network):
    return TrainedNetwork(
        name="trained_tiny",
        model=trained_tiny_network["model"],
        test_images=trained_tiny_network["test_images"],
        test_labels=trained_tiny_network["test_labels"],
        baseline_accuracy=trained_tiny_network["baseline_accuracy"],
    )


class TestShardSlicing:
    def test_shards_partition_the_grid(self, network):
        spec = tiny_spec()
        networks = {"trained_tiny": network}
        full = {t.trial_index for t in expand_campaign(spec, networks=networks)}
        shard_sets = []
        for k in (1, 2, 3):
            store = MemoryResultStore()
            run_campaign(
                spec, store, workers=1, shard=(k, 3), networks=networks
            )
            shard_sets.append(
                {record["spec"]["trial_index"] for record in store.records()}
            )
        union = set().union(*shard_sets)
        assert union == full
        # Disjoint: every trial lands in exactly one shard.
        assert sum(len(s) for s in shard_sets) == len(full)

    def test_invalid_shard_rejected(self, network):
        networks = {"trained_tiny": network}
        for shard in ((0, 3), (4, 3), (1, 0)):
            with pytest.raises(ExperimentError):
                run_campaign(
                    tiny_spec(),
                    MemoryResultStore(),
                    workers=1,
                    shard=shard,
                    networks=networks,
                )


class TestMergeEquivalence:
    def test_serial_equals_sharded_and_merged(self, network, tmp_path):
        spec = tiny_spec()
        networks = {"trained_tiny": network}
        serial = ResultStore(tmp_path / "serial.jsonl")
        run_campaign(spec, serial, workers=1, networks=networks)

        shards = []
        for k in (1, 2):
            shard_store = ResultStore(tmp_path / f"shard{k}.jsonl")
            run_campaign(
                spec, shard_store, workers=1, shard=(k, 2), networks=networks
            )
            shards.append(shard_store)

        merged = ResultStore(tmp_path / "merged.jsonl")
        summary = merge_stores(shards, merged)
        assert summary.records_merged == len(serial)
        assert summary.duplicates_skipped == 0
        assert summary.invalid_lines_skipped == 0
        assert store_digest(
            merged, exclude_result_fields=TIMING_RESULT_FIELDS
        ) == store_digest(serial, exclude_result_fields=TIMING_RESULT_FIELDS)
        # With timing kept, the digests legitimately differ between runs.
        assert store_digest(merged) != store_digest(serial)

    def test_torn_tail_is_reconciled_by_omission(self, network, tmp_path):
        spec = tiny_spec()
        networks = {"trained_tiny": network}
        shard = ResultStore(tmp_path / "shard.jsonl")
        run_campaign(spec, shard, workers=1, shard=(1, 2), networks=networks)
        records_before = len(shard)
        # Simulate a shard killed mid-append: a torn, unparseable tail line.
        with open(shard.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "deadbeef", "spec": {"trunca')

        merged = ResultStore(tmp_path / "merged.jsonl")
        summary = merge_stores([shard], merged)
        assert summary.invalid_lines_skipped == 1
        assert summary.records_merged == records_before
        # The torn record never reaches the merged store; its trial is simply
        # still pending there, so resuming the campaign against the merged
        # store executes it.
        assert len(merged) == records_before

    def test_duplicate_records_resolve_first_wins(self, tmp_path):
        a = MemoryResultStore()
        a.append({"key": "k1", "spec": {}, "result": {"value": 1}})
        b = MemoryResultStore()
        b.append({"key": "k1", "spec": {}, "result": {"value": 2}})
        b.append({"key": "k2", "spec": {}, "result": {"value": 3}})
        dest = MemoryResultStore()
        summary = merge_stores([a, b], dest)
        assert summary.records_merged == 2
        assert summary.duplicates_skipped == 1
        by_key = {record["key"]: record for record in dest.records()}
        assert by_key["k1"]["result"]["value"] == 1

    def test_merge_into_populated_destination_skips_existing(self):
        dest = MemoryResultStore()
        dest.append({"key": "k1", "spec": {}, "result": {"value": 0}})
        src = MemoryResultStore()
        src.append({"key": "k1", "spec": {}, "result": {"value": 9}})
        src.append({"key": "k2", "spec": {}, "result": {"value": 1}})
        summary = merge_stores([src], dest)
        assert summary.records_merged == 1
        assert summary.duplicates_skipped == 1
        assert {r["key"] for r in dest.records()} == {"k1", "k2"}


class TestStoreDigest:
    def test_digest_is_order_independent(self):
        a = MemoryResultStore()
        b = MemoryResultStore()
        records = [
            {"key": "k1", "spec": {"x": 1}, "result": {"value": 1}},
            {"key": "k2", "spec": {"x": 2}, "result": {"value": 2}},
        ]
        for record in records:
            a.append(record)
        for record in reversed(records):
            b.append(record)
        assert store_digest(a) == store_digest(b)

    def test_excluded_fields_are_stripped(self):
        a = MemoryResultStore()
        a.append({"key": "k1", "spec": {}, "result": {"value": 1, "detection_seconds": 0.5}})
        b = MemoryResultStore()
        b.append({"key": "k1", "spec": {}, "result": {"value": 1, "detection_seconds": 9.9}})
        assert store_digest(a) != store_digest(b)
        assert store_digest(
            a, exclude_result_fields=("detection_seconds",)
        ) == store_digest(b, exclude_result_fields=("detection_seconds",))

    def test_invalid_line_counts(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append({"key": "k1", "spec": {}, "result": {}})
        assert store.invalid_line_count() == 0
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write('{"no_key": true}\n')
        assert store.invalid_line_count() == 2
        assert MemoryResultStore().invalid_line_count() == 0
