"""Tests for the trained-network provider and its weight cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.model_provider import get_trained_network


class TestGetTrainedNetwork:
    def test_unknown_network(self, tmp_path):
        with pytest.raises(ExperimentError):
            get_trained_network("unknown_net", cache_dir=tmp_path)

    def test_trains_and_reaches_above_chance_accuracy(self, tmp_path):
        network = get_trained_network(
            "mnist_reduced", samples_per_class=30, epochs=5, cache_dir=tmp_path, seed=1
        )
        # Ten classes: chance level is 0.1; a short training run must land
        # comfortably above it (the full experiments train longer).
        assert network.baseline_accuracy >= 0.5
        assert network.test_images.shape[1:] == (28, 28, 1)

    def test_cache_reused(self, tmp_path):
        first = get_trained_network(
            "mnist_reduced", samples_per_class=20, epochs=2, cache_dir=tmp_path, seed=2
        )
        cached_files = list(tmp_path.glob("*.npz"))
        assert len(cached_files) == 1
        second = get_trained_network(
            "mnist_reduced", samples_per_class=20, epochs=2, cache_dir=tmp_path, seed=2
        )
        np.testing.assert_array_equal(
            first.model.get_weights()["head1_dense"],
            second.model.get_weights()["head1_dense"],
        )

    def test_force_retrain_ignores_cache(self, tmp_path):
        get_trained_network(
            "mnist_reduced", samples_per_class=20, epochs=1, cache_dir=tmp_path, seed=3
        )
        network = get_trained_network(
            "mnist_reduced",
            samples_per_class=20,
            epochs=1,
            cache_dir=tmp_path,
            seed=3,
            force_retrain=True,
        )
        assert network.baseline_accuracy >= 0.0

    def test_normalized_accuracy_of_clean_model_is_one(self, tmp_path):
        network = get_trained_network(
            "mnist_reduced", samples_per_class=20, epochs=2, cache_dir=tmp_path, seed=4
        )
        assert network.normalized_accuracy() == pytest.approx(1.0)
