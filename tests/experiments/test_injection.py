"""Tests for model-level fault injection and the ECC-protected model wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.injection import (
    ECCProtectedModel,
    corrupt_layer_completely,
    corrupt_model_rber,
    corrupt_model_whole_weight,
    restore_weights,
    snapshot_weights,
)


class TestSnapshotRestore:
    def test_roundtrip(self, tiny_conv_model, rng):
        snapshot = snapshot_weights(tiny_conv_model)
        corrupt_model_rber(tiny_conv_model, 0.01, rng)
        restore_weights(tiny_conv_model, snapshot)
        for name, weights in snapshot.items():
            np.testing.assert_array_equal(tiny_conv_model.get_layer(name).get_weights(), weights)

    def test_snapshot_is_a_copy(self, tiny_conv_model, rng):
        snapshot = snapshot_weights(tiny_conv_model)
        corrupt_model_rber(tiny_conv_model, 0.05, rng)
        # Corrupting the model must not change the snapshot.
        assert not np.array_equal(
            snapshot["c1"], tiny_conv_model.get_layer("c1").get_weights()
        ) or True  # the conv layer may by chance be untouched; the dense layer won't be
        changed = any(
            not np.array_equal(snapshot[name], tiny_conv_model.get_layer(name).get_weights())
            for name in snapshot
        )
        assert changed


class TestModelCorruption:
    def test_rber_reports_every_parameterized_layer(self, tiny_conv_model, rng):
        reports = corrupt_model_rber(tiny_conv_model, 0.001, rng)
        assert set(reports) == {"c1", "cb1", "d1", "db1"}

    def test_whole_weight_flips_multiples_of_32_bits(self, tiny_conv_model, rng):
        reports = corrupt_model_whole_weight(tiny_conv_model, 0.05, rng)
        for report in reports.values():
            assert report.flipped_bits == report.affected_weights * 32

    def test_corrupt_layer_completely_changes_everything(self, tiny_conv_model, rng):
        before = tiny_conv_model.get_layer("c1").get_weights()
        report = corrupt_layer_completely(tiny_conv_model, "c1", rng)
        after = tiny_conv_model.get_layer("c1").get_weights()
        assert np.all(after != before)
        assert report.affected_weights == before.size


class TestECCProtectedModel:
    def test_scrub_restores_clean_weights(self, tiny_conv_model):
        clean = snapshot_weights(tiny_conv_model)
        ecc = ECCProtectedModel(tiny_conv_model, clean)
        ecc.scrub_into_model()
        for name, weights in clean.items():
            np.testing.assert_array_equal(tiny_conv_model.get_layer(name).get_weights(), weights)

    def test_low_rate_errors_fully_corrected(self, tiny_conv_model):
        clean = snapshot_weights(tiny_conv_model)
        ecc = ECCProtectedModel(tiny_conv_model, clean)
        flips = ecc.inject_codeword_bit_flips(1e-5, np.random.default_rng(0))
        reports = ecc.scrub_into_model()
        total_uncorrectable = sum(report.uncorrectable_words for report in reports.values())
        if total_uncorrectable == 0:
            for name, weights in clean.items():
                np.testing.assert_array_equal(
                    tiny_conv_model.get_layer(name).get_weights(), weights
                )
        assert flips >= 0

    def test_high_rate_leaves_residual_errors(self, tiny_conv_model):
        clean = snapshot_weights(tiny_conv_model)
        ecc = ECCProtectedModel(tiny_conv_model, clean)
        ecc.inject_codeword_bit_flips(0.02, np.random.default_rng(1))
        reports = ecc.scrub_into_model()
        assert sum(report.uncorrectable_words for report in reports.values()) > 0

    def test_reset_discards_injected_errors(self, tiny_conv_model):
        clean = snapshot_weights(tiny_conv_model)
        ecc = ECCProtectedModel(tiny_conv_model, clean)
        ecc.inject_codeword_bit_flips(0.05, np.random.default_rng(2))
        ecc.reset()
        ecc.scrub_into_model()
        for name, weights in clean.items():
            np.testing.assert_array_equal(tiny_conv_model.get_layer(name).get_weights(), weights)

    def test_overhead_bytes(self, tiny_conv_model):
        clean = snapshot_weights(tiny_conv_model)
        ecc = ECCProtectedModel(tiny_conv_model, clean)
        assert ecc.overhead_bytes == pytest.approx(tiny_conv_model.parameter_count() * 7 / 8)
