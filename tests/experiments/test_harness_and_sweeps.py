"""Tests for the protection-scheme harness and the sweep experiments.

These use a very small trained network (session fixture) so that whole sweeps
run in a few seconds while still exercising the real code paths end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MILRConfig, MILRProtector
from repro.exceptions import ExperimentError
from repro.experiments import ProtectionScheme, run_rber_sweep, run_whole_weight_sweep
from repro.experiments.harness import ErrorModel, ExperimentSetting, run_protection_trial
from repro.experiments.injection import snapshot_weights
from repro.experiments.model_provider import TrainedNetwork


@pytest.fixture(scope="module")
def network(trained_tiny_network):
    return TrainedNetwork(
        name="trained_tiny",
        model=trained_tiny_network["model"],
        test_images=trained_tiny_network["test_images"],
        test_labels=trained_tiny_network["test_labels"],
        baseline_accuracy=trained_tiny_network["baseline_accuracy"],
    )


@pytest.fixture(scope="module")
def protector(network):
    protector = MILRProtector(network.model, MILRConfig(master_seed=31))
    protector.initialize()
    return protector


class TestRunProtectionTrial:
    def test_restores_clean_weights(self, network, protector):
        clean = snapshot_weights(network.model)
        run_protection_trial(
            network,
            protector,
            clean,
            ProtectionScheme.MILR,
            ErrorModel.RBER,
            1e-3,
            np.random.default_rng(0),
        )
        for name, weights in clean.items():
            np.testing.assert_array_equal(network.model.get_layer(name).get_weights(), weights)

    def test_none_scheme_reports_degradation_at_high_rate(self, network, protector):
        clean = snapshot_weights(network.model)
        trial = run_protection_trial(
            network,
            protector,
            clean,
            ProtectionScheme.NONE,
            ErrorModel.RBER,
            5e-3,
            np.random.default_rng(1),
        )
        assert trial.normalized_accuracy <= 1.05

    def test_milr_recovers_whole_weight_errors(self, network, protector):
        clean = snapshot_weights(network.model)
        trial = run_protection_trial(
            network,
            protector,
            clean,
            ProtectionScheme.MILR,
            ErrorModel.WHOLE_WEIGHT,
            5e-3,
            np.random.default_rng(2),
        )
        assert trial.normalized_accuracy >= 0.95
        assert trial.detected_layers >= 1
        assert trial.recovered_layers >= 1

    def test_trial_records_campaign_measurements(self, network, protector):
        clean = snapshot_weights(network.model)
        trial = run_protection_trial(
            network,
            protector,
            clean,
            ProtectionScheme.MILR,
            ErrorModel.WHOLE_WEIGHT,
            5e-3,
            np.random.default_rng(2),
        )
        assert trial.flipped_bits > 0
        assert trial.injected_weights > 0
        assert trial.detection_seconds > 0
        assert trial.recovery_seconds > 0

    def test_uncorrupted_trial_is_bit_exact(self, network, protector):
        clean = snapshot_weights(network.model)
        trial = run_protection_trial(
            network,
            protector,
            clean,
            ProtectionScheme.NONE,
            ErrorModel.RBER,
            0.0,
            np.random.default_rng(5),
        )
        assert trial.flipped_bits == 0
        assert trial.bit_exact

    def test_ecc_rejected_for_whole_weight_model(self, network, protector):
        clean = snapshot_weights(network.model)
        with pytest.raises(ExperimentError):
            run_protection_trial(
                network,
                protector,
                clean,
                ProtectionScheme.ECC,
                ErrorModel.WHOLE_WEIGHT,
                1e-3,
                np.random.default_rng(3),
            )

    def test_uninitialized_protector_rejected(self, network):
        fresh = MILRProtector(network.model)
        with pytest.raises(ExperimentError):
            run_protection_trial(
                network,
                fresh,
                snapshot_weights(network.model),
                ProtectionScheme.NONE,
                ErrorModel.RBER,
                1e-4,
                np.random.default_rng(4),
            )


class TestSweeps:
    def test_rber_sweep_structure(self, network):
        setting = ExperimentSetting(
            network_name="ignored",
            error_rates=(1e-5, 1e-3),
            trials=2,
            schemes=(ProtectionScheme.NONE, ProtectionScheme.MILR),
            seed=7,
        )
        result = run_rber_sweep(setting, network=network)
        assert set(result.samples) == {ProtectionScheme.NONE, ProtectionScheme.MILR}
        for scheme_samples in result.samples.values():
            assert set(scheme_samples) == {1e-5, 1e-3}
            for samples in scheme_samples.values():
                assert len(samples) == 2

    def test_rber_sweep_milr_beats_none_at_high_rate(self, network):
        setting = ExperimentSetting(
            error_rates=(2e-3,),
            trials=3,
            schemes=(ProtectionScheme.NONE, ProtectionScheme.MILR),
            seed=11,
        )
        result = run_rber_sweep(setting, network=network)
        none_median = result.median_curve(ProtectionScheme.NONE)[0][1]
        milr_median = result.median_curve(ProtectionScheme.MILR)[0][1]
        assert milr_median >= none_median

    def test_rber_sweep_rows(self, network):
        setting = ExperimentSetting(
            error_rates=(1e-4,), trials=2, schemes=(ProtectionScheme.MILR,), seed=3
        )
        result = run_rber_sweep(setting, network=network)
        rows = result.as_rows()
        assert rows and rows[0]["scheme"] == "milr"
        assert "median" in rows[0]

    def test_whole_weight_sweep_milr_recovers(self, network):
        setting = ExperimentSetting(error_rates=(1e-3,), trials=2, seed=13)
        result = run_whole_weight_sweep(setting, network=network)
        milr_median = result.median_curve(ProtectionScheme.MILR)[0][1]
        none_median = result.median_curve(ProtectionScheme.NONE)[0][1]
        assert milr_median >= none_median
        assert milr_median >= 0.9

    def test_whole_weight_sweep_only_none_and_milr(self, network):
        setting = ExperimentSetting(error_rates=(1e-4,), trials=1, seed=17)
        result = run_whole_weight_sweep(setting, network=network)
        assert set(result.samples) == {ProtectionScheme.NONE, ProtectionScheme.MILR}
