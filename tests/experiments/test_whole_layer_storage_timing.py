"""Tests for the whole-layer, storage, timing and availability experiments."""

from __future__ import annotations

import pytest

from repro.analysis import AvailabilityModel
from repro.core.planner import RecoveryStrategy
from repro.experiments.availability_tradeoff import availability_tradeoff_curves
from repro.experiments.model_provider import TrainedNetwork
from repro.experiments.storage import storage_overhead_for
from repro.experiments.timing import (
    measure_prediction_and_identification,
    recovery_time_curve,
)
from repro.experiments.whole_layer import run_whole_layer_experiment
from repro.exceptions import ExperimentError
from repro.zoo import build_reduced_mnist_network


@pytest.fixture(scope="module")
def network(trained_tiny_network):
    return TrainedNetwork(
        name="trained_tiny",
        model=trained_tiny_network["model"],
        test_images=trained_tiny_network["test_images"],
        test_labels=trained_tiny_network["test_labels"],
        baseline_accuracy=trained_tiny_network["baseline_accuracy"],
    )


class TestWholeLayerExperiment:
    @pytest.fixture(scope="class")
    def results(self, network):
        return run_whole_layer_experiment(network=network, seed=0)

    def test_one_row_per_parameterized_layer(self, results, network):
        parameterized = [layer for layer in network.model.layers if layer.has_parameters]
        assert len(results) == len(parameterized)

    def test_fully_recoverable_layers_restore_accuracy(self, results):
        for row in results:
            if row.recoverable and row.strategy is not RecoveryStrategy.CONV_PARTIAL:
                assert row.accuracy_after_milr >= 0.95

    def test_main_layers_hurt_more_than_bias(self, results):
        conv_dense_damage = [
            row.accuracy_no_recovery for row in results if row.layer_kind in ("Conv2D", "Dense")
        ]
        bias_damage = [row.accuracy_no_recovery for row in results if row.layer_kind == "Bias"]
        assert min(conv_dense_damage) <= min(bias_damage)

    def test_weights_restored_after_experiment(self, results, network):
        # The experiment must leave the trained model untouched.
        assert network.normalized_accuracy() == pytest.approx(1.0, abs=1e-6)

    def test_as_row_format(self, results):
        row = results[0].as_row()
        assert set(row) == {"layer", "kind", "none", "milr"}


class TestStorageExperiment:
    def test_unknown_network_rejected(self):
        with pytest.raises(ExperimentError):
            storage_overhead_for("does_not_exist")

    def test_reduced_network_storage(self):
        comparison = storage_overhead_for("mnist_reduced")
        assert comparison.backup_weights_bytes > 0
        assert comparison.milr_bytes > 0
        assert comparison.ecc_bytes == pytest.approx(comparison.backup_weights_bytes * 7 / 32)


class TestTimingExperiment:
    def test_timing_row_fields(self):
        row = measure_prediction_and_identification(
            "mnist_reduced", batch_size=8, repeats=1, model=build_reduced_mnist_network()
        )
        assert row.single_prediction_seconds > 0
        assert row.batch_per_sample_seconds > 0
        assert row.identification_seconds > 0
        # Batching amortizes per-sample cost.
        assert row.batch_per_sample_seconds < row.single_prediction_seconds

    def test_identification_same_order_as_prediction(self):
        row = measure_prediction_and_identification(
            "mnist_reduced", batch_size=8, repeats=1, model=build_reduced_mnist_network()
        )
        assert row.identification_seconds < row.single_prediction_seconds * 50

    def test_recovery_time_curve_structure(self):
        points = recovery_time_curve(
            "mnist_reduced", error_counts=(10, 200), model=build_reduced_mnist_network(), seed=1
        )
        assert [point.injected_errors for point in points] == [10, 200]
        assert all(point.recovery_seconds > 0 for point in points)
        assert points[1].recovered_layers >= points[0].recovered_layers

    def test_recovery_curve_rejects_too_many_errors(self):
        model = build_reduced_mnist_network()
        with pytest.raises(ExperimentError):
            recovery_time_curve(
                "mnist_reduced", error_counts=(10**9,), model=model
            )

    def test_unknown_network_rejected(self):
        with pytest.raises(ExperimentError):
            measure_prediction_and_identification("nope")


class TestAvailabilityExperiment:
    def test_curves_structure(self):
        tradeoffs = availability_tradeoff_curves(
            ("mnist_reduced",), curve_points=8, recovery_error_count=20
        )
        assert len(tradeoffs) == 1
        tradeoff = tradeoffs[0]
        assert isinstance(tradeoff.model, AvailabilityModel)
        assert len(tradeoff.curve) == 8
        assert 0.0 <= tradeoff.availability_at_user_a <= 1.0
        assert 0.0 <= tradeoff.accuracy_at_user_b <= 1.0

    def test_curve_trade_off_direction(self):
        tradeoff = availability_tradeoff_curves(
            ("mnist_reduced",), curve_points=8, recovery_error_count=20
        )[0]
        availabilities = [point.availability for point in tradeoff.curve]
        accuracies = [point.minimum_accuracy for point in tradeoff.curve]
        assert availabilities == sorted(availabilities)
        assert accuracies == sorted(accuracies, reverse=True)

    def test_unknown_network_rejected(self):
        with pytest.raises(ExperimentError):
            availability_tradeoff_curves(("nope",))
