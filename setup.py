"""Setuptools entry point.

A ``setup.py`` is kept alongside ``pyproject.toml`` so that editable installs
work in fully offline environments (no ``wheel`` package available for PEP 517
editable builds): ``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
