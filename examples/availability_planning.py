#!/usr/bin/env python3
"""Choosing a MILR detection schedule from availability / accuracy requirements.

The paper's Sec. V-E shows how to pick the error-detection interval for a
deployment by trading availability (time not spent on detection/recovery)
against the minimum accuracy the network is guaranteed to maintain between
maintenance windows (Eq. 6, Fig. 12).

This example measures detection and recovery times for the three evaluation
networks, derives each network's availability/accuracy curve under the paper's
DRAM error-rate assumptions, and answers the paper's two user stories:

* user A needs accuracy >= 99.999%: what availability can each network offer?
* user B needs availability >= 99.9%: what accuracy can each network sustain?

Run with:  python examples/availability_planning.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.availability_tradeoff import (
    USER_A_MINIMUM_ACCURACY,
    USER_B_AVAILABILITY,
    availability_tradeoff_curves,
)

NETWORKS = ("mnist_reduced", "cifar_reduced", "cifar_reduced_large")


def main() -> None:
    tradeoffs = availability_tradeoff_curves(NETWORKS, curve_points=30, recovery_error_count=100)

    print("Measured maintenance costs and error model per network:")
    print(
        format_table(
            [
                {
                    "network": t.network,
                    "detection_s": t.model.detection_seconds,
                    "recovery_s": t.model.recovery_seconds,
                    "mean_time_between_errors_s": t.model.error_interval_seconds,
                }
                for t in tradeoffs
            ],
            precision=4,
        )
    )

    print("\nAvailability / minimum-accuracy curve (a sample of points per network):")
    rows = []
    for tradeoff in tradeoffs:
        for point in tradeoff.curve[::6]:
            rows.append(
                {
                    "network": tradeoff.network,
                    "maintenance_period_s": point.maintenance_period_seconds,
                    "availability": point.availability,
                    "min_accuracy": point.minimum_accuracy,
                }
            )
    print(format_table(rows, precision=6))

    print("\nPaper's worked examples:")
    print(
        format_table(
            [
                {
                    "network": t.network,
                    f"user A: availability at accuracy >= {USER_A_MINIMUM_ACCURACY}": t.availability_at_user_a,
                    f"user B: accuracy at availability >= {USER_B_AVAILABILITY}": t.accuracy_at_user_b,
                }
                for t in tradeoffs
            ],
            precision=6,
        )
    )
    print(
        "\nUse the curve to pick the detection interval: longer maintenance periods buy\n"
        "availability but let more errors accumulate before they are healed."
    )


if __name__ == "__main__":
    main()
