#!/usr/bin/env python3
"""Telemetry walkthrough: trace a fault storm and read the exported signals.

Runs a mixed fault-model soak (ECC-escape flips, persistent stuck-at faults
and row-hammer bursts) with the unified telemetry layer enabled, then shows what
the observability surface gives you that the summary counters cannot:

1. per-fault lifecycle chains -- every injected weight fault correlated
   through inject -> detect -> quarantine -> repair -> verify, with
   reassert -> redetect cycles for the persistent faults,
2. the five slowest repairs, with per-stage timing taken from span durations,
3. a Prometheus-style metrics snapshot (counters, gauges, latency histograms).

The trace and metrics land in JSONL files you can tail while the soak runs,
or pretty-print afterwards with ``python -m repro.cli telemetry --metrics ...``.

Run with:  python examples/telemetry_soak.py
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.service import run_soak


def main() -> None:
    duration = float(os.environ.get("SOAK_DURATION", "30.0"))
    out = Path(tempfile.mkdtemp(prefix="repro-telemetry-"))
    trace_path = out / "trace.jsonl"
    metrics_path = out / "metrics.jsonl"

    print("== Telemetry soak: reduced MNIST under a mixed fault storm")
    print(f"   duration={duration}s  trace={trace_path}  metrics={metrics_path}")
    result = run_soak(
        network="mnist_reduced",
        duration_seconds=duration,
        mean_fault_interval_seconds=0.5,
        fault_models={"ecc_escape": 0.5, "stuck_at": 0.3, "row_hammer": 0.2},
        reassert_interval_seconds=0.2,
        seed=13,
        trace_out=str(trace_path),
        metrics_out=str(metrics_path),
    )

    chains = result.fault_chains
    print(f"\nfault events injected:      {len(result.fault_events)}")
    print(f"lifecycle chains opened:    {len(chains)}")
    print(f"chains complete:            {sum(1 for c in chains if c.complete)}")
    print(f"requests served:            {result.requests_completed}")
    print(f"weights restored bit-exact: {result.bit_exact}")

    print("\n== Five slowest repairs (per-fault Td / Tr from correlated spans)")
    header = f"{'fault':<12}{'layer':>6}  {'model':<14}{'reasserts':>10}"
    header += f"{'Td_ms':>10}{'Tr_ms':>10}  stages"
    print(header)
    slowest = sorted(chains, key=lambda c: c.repair_seconds, reverse=True)[:5]
    for chain in slowest:
        print(
            f"{chain.fault_id:<12}{chain.layer_index:>6}  {chain.model_name:<14}"
            f"{chain.reassert_cycles:>10}"
            f"{chain.detection_seconds * 1e3:>10.3f}"
            f"{chain.repair_seconds * 1e3:>10.3f}"
            f"  {'>'.join(chain.stages)}"
        )

    print("\n== Final metrics snapshot (also the last line of the JSONL export)")
    snapshot = json.loads(metrics_path.read_text().splitlines()[-1])
    for name in sorted(snapshot["counters"]):
        print(f"counter  {name} = {snapshot['counters'][name]}")
    for name in sorted(snapshot["gauges"]):
        print(f"gauge    {name} = {snapshot['gauges'][name]:.6g}")
    for name, hist in sorted(snapshot["histograms"].items()):
        print(
            f"hist     {name}: count={hist['count']} "
            f"p50={hist['p50']:.6g}s p99={hist['p99']:.6g}s"
        )

    print(
        "\npretty-print the snapshot any time with:\n"
        f"  python -m repro.cli telemetry --metrics {metrics_path}"
    )


if __name__ == "__main__":
    main()
