#!/usr/bin/env python3
"""Defending against targeted weight-corruption attacks with MILR.

The paper's security motivation (Sec. I and the whole-layer experiments): an
attacker with a memory-write primitive targets the most impactful weights of a
deployed CNN -- or simply overwrites a whole layer -- to destroy its accuracy
with a handful of writes (cf. the Bit-Flip Attack, Rakin et al. 2019).

This example mounts three escalating attacks on a trained CNN and shows MILR
detecting the tampering and restoring the original weights:

1. a *targeted bit-flip attack*: flip the most-significant exponent bit of the
   largest-magnitude weights of the last dense layer,
2. a *whole-weight overwrite* of a random subset of a convolution layer,
3. a *whole-layer overwrite* (every parameter of a layer replaced),
4. the same adversarial model from the fault-model zoo
   (``AdversarialTargeted``) mounted against the **live service runtime**:
   the background scrubber detects the tampering and performs a verified
   bit-exact repair while the service keeps answering requests.

Run with:  python examples/bitflip_attack_defense.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import normalized_accuracy
from repro.core import MILRConfig, MILRProtector
from repro.experiments.injection import restore_weights, snapshot_weights
from repro.experiments.model_provider import get_trained_network
from repro.memory import (
    AdversarialTargeted,
    FaultTarget,
    inject_whole_layer,
    inject_whole_weight,
)
from repro.memory.bitops import flip_bits
from repro.service import SelfHealingService, ServiceConfig


def report(tag: str, network) -> float:
    accuracy = normalized_accuracy(network.accuracy(), network.baseline_accuracy)
    print(f"  {tag:<32s} normalized accuracy = {accuracy:.3f}")
    return accuracy


def targeted_bitflip_attack(model, layer_name: str, flips: int) -> None:
    """Flip the high exponent bit of the largest-magnitude weights of a layer."""
    layer = model.get_layer(layer_name)
    weights = layer.get_weights()
    targets = np.argsort(np.abs(weights).ravel())[-flips:]
    attacked = flip_bits(weights, targets, np.full(flips, 30))  # exponent MSB
    layer.set_weights(attacked)


def main() -> None:
    network = get_trained_network("mnist_reduced", samples_per_class=60, epochs=6, seed=0)
    model = network.model
    protector = MILRProtector(model, MILRConfig(master_seed=3))
    protector.initialize()
    clean = snapshot_weights(model)
    rng = np.random.default_rng(13)

    print("Attack 1: targeted bit-flips on the classifier's final dense layer")
    targeted_bitflip_attack(model, "head2_dense", flips=8)
    report("after 8 targeted bit flips", network)
    detection, _ = protector.detect_and_recover()
    print(f"  detection flagged: {[r.name for r in detection.results if r.erroneous]}")
    report("after MILR self-healing", network)
    restore_weights(model, clean)

    print("\nAttack 2: whole-weight overwrite of 10% of the first convolution layer")
    conv = model.get_layer("block1_conv")
    attacked, _ = inject_whole_weight(conv.get_weights(), 0.1, rng)
    conv.set_weights(attacked)
    report("after whole-weight overwrite", network)
    protector.detect_and_recover()
    report("after MILR self-healing", network)
    restore_weights(model, clean)

    print("\nAttack 3: whole-layer overwrite of the first dense layer")
    dense = model.get_layer("head1_dense")
    attacked, _ = inject_whole_layer(dense.get_weights(), rng)
    dense.set_weights(attacked)
    report("after whole-layer overwrite", network)
    protector.detect_and_recover()
    recovered = report("after MILR self-healing", network)

    max_error = float(np.max(np.abs(dense.get_weights() - clean["head1_dense"])))
    print(f"\nmax |recovered - original| for the attacked dense layer: {max_error:.2e}")
    if recovered >= 0.99:
        print("MILR restored the network despite every parameter of the layer being overwritten.")

    service_runtime_defense()


def service_runtime_defense() -> None:
    """Mount the zoo's adversarial fault model against the live service."""
    print("\nAttack 4: AdversarialTargeted zoo model vs the self-healing service")
    service = SelfHealingService(ServiceConfig(recovery_async=False))
    entry = service.load_model("mnist_reduced")
    golden = {
        index: entry.model.layers[index].get_weights().copy()
        for index in entry.parameterized_indices
    }
    service.start(scrub=False)  # scrubbed on demand below, for determinism
    try:
        attack = AdversarialTargeted(flips=6)
        index = entry.parameterized_indices[-1]
        # An attacker with a write primitive races live inference; the entry
        # lock stands in for the hardware's atomic memory write.
        with entry.lock:
            hit = attack.inject(FaultTarget(entry.model, index), np.random.default_rng(7))
        layer = entry.model.layers[index]
        print(f"  flipped {hit.flipped_bits} exponent MSBs of '{layer.name}'")

        service.scrub_now(entry.name)  # detect + quarantine + verified repair

        bit_exact = all(
            np.array_equal(
                entry.model.layers[i].get_weights().view(np.uint32),
                golden[i].view(np.uint32),
            )
            for i in entry.parameterized_indices
        )
        repaired = sum(entry.repair_counts.values())
        print(f"  scrubber repaired {repaired} layer(s); bit-exact: {bit_exact}")
        probe = np.zeros(entry.model.input_shape, dtype=np.float32)
        service.submit(entry.name, probe).result(timeout=10.0)
        print("  service answered a request through the healed model")
    finally:
        service.stop()


if __name__ == "__main__":
    main()
