#!/usr/bin/env python3
"""Plaintext-space error correction (PSEC) for a CNN in an encrypted VM.

The paper's motivating scenario: the CNN's weights live in memory encrypted
with AES-XTS (Intel MKTME / AMD SEV).  A single bit error in the *ciphertext*
decrypts to a fully garbled 128-bit plaintext block -- four consecutive float32
weights become garbage at once.  Per-word SECDED ECC applied in the plaintext
space is useless against such bursts, while MILR recovers them.

This example compares, at increasing ciphertext-space error rates:

* no protection,
* plaintext-space SECDED ECC (misses every multi-bit burst),
* MILR (detects and recovers the corrupted layers).

Run with:  python examples/encrypted_vm_psec.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import normalized_accuracy
from repro.analysis.reporting import format_table
from repro.core import MILRConfig, MILRProtector
from repro.experiments.injection import restore_weights, snapshot_weights
from repro.experiments.model_provider import get_trained_network
from repro.memory import SECDEDCodec, XTSMemoryModel

CIPHERTEXT_ERROR_RATES = (1e-6, 1e-5, 1e-4)
TRIALS = 3


def corrupt_through_xts(model, xts: XTSMemoryModel, rate: float, rng) -> int:
    """Corrupt every layer's weights through the encrypted-memory model."""
    corrupted_weights = 0
    for layer in model.layers:
        if not layer.has_parameters:
            continue
        corrupted, report = xts.corrupt_plaintext(layer.get_weights(), rate, rng)
        layer.set_weights(corrupted)
        corrupted_weights += int(report.affected_weight_indices.size)
    return corrupted_weights


def plaintext_ecc_scrub(model, clean_weights, codec: SECDEDCodec) -> None:
    """Apply plaintext-space SECDED: encode clean weights, decode corrupted ones.

    The check bits were computed over the clean plaintext; after an XTS burst
    every affected word has many flipped bits, so the code either mis-detects
    or reports an uncorrectable error -- exactly the paper's argument for why
    ciphertext-space ECC guarantees do not transfer to the plaintext space.
    """
    for layer in model.layers:
        if not layer.has_parameters:
            continue
        check = codec.encode_floats(clean_weights[layer.name])
        corrected, _ = codec.decode_floats(layer.get_weights(), check)
        layer.set_weights(corrected)


def main() -> None:
    network = get_trained_network("mnist_reduced", samples_per_class=60, epochs=6, seed=0)
    model = network.model
    protector = MILRProtector(model, MILRConfig(master_seed=11))
    protector.initialize()
    clean = snapshot_weights(model)
    codec = SECDEDCodec()

    rows = []
    rng = np.random.default_rng(42)
    for rate in CIPHERTEXT_ERROR_RATES:
        accumulators = {"none": [], "plaintext ECC": [], "MILR": []}
        for _ in range(TRIALS):
            xts = XTSMemoryModel(seed=int(rng.integers(0, 2**31)))

            corrupt_through_xts(model, xts, rate, rng)
            accumulators["none"].append(
                normalized_accuracy(network.accuracy(), network.baseline_accuracy)
            )
            restore_weights(model, clean)

            corrupt_through_xts(model, xts, rate, rng)
            plaintext_ecc_scrub(model, clean, codec)
            accumulators["plaintext ECC"].append(
                normalized_accuracy(network.accuracy(), network.baseline_accuracy)
            )
            restore_weights(model, clean)

            corrupt_through_xts(model, xts, rate, rng)
            protector.detect_and_recover()
            accumulators["MILR"].append(
                normalized_accuracy(network.accuracy(), network.baseline_accuracy)
            )
            restore_weights(model, clean)

        rows.append(
            {
                "ciphertext RBER": f"{rate:.0e}",
                "none": float(np.median(accumulators["none"])),
                "plaintext ECC": float(np.median(accumulators["plaintext ECC"])),
                "MILR": float(np.median(accumulators["MILR"])),
            }
        )

    print(
        format_table(
            rows,
            title="Median normalized accuracy under encrypted-VM (AES-XTS) memory errors",
            precision=3,
        )
    )
    print(
        "\nECC in the plaintext space cannot correct the 128-bit bursts produced by\n"
        "ciphertext errors; MILR recovers the affected layers algebraically (PSEC)."
    )


if __name__ == "__main__":
    main()
