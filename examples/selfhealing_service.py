#!/usr/bin/env python3
"""Self-healing inference service: serve traffic while memory errors arrive.

This is the paper's availability scenario (Sec. V-E, Fig. 12) running live:

1. a reduced MNIST CNN is registered with the service runtime, which
   initializes MILR protection (checkpoints, CRC codes, golden fingerprints),
2. the batching inference engine serves continuous single-sample traffic,
3. a Poisson fault driver flips bits in the live weights (time-compressed
   memory error arrivals),
4. the background scrubber periodically runs MILR detection, quarantines
   corrupted layers (no request is ever served through one), and heals them
   bit-exactly,
5. the SLA tracker feeds the measured detection/recovery times back into the
   paper's availability model.

Run with:  python examples/selfhealing_service.py
"""

from __future__ import annotations

import os

from repro.analysis.availability import dram_error_interval_seconds
from repro.service import ServiceConfig, run_soak
from repro.zoo import network_table


def main() -> None:
    # Knobs kept small so the demo finishes in seconds; raise DURATION or
    # lower FAULT_INTERVAL for a longer storm.
    duration = float(os.environ.get("SOAK_DURATION", "4.0"))
    fault_interval = float(os.environ.get("SOAK_FAULT_INTERVAL", "0.08"))
    scrub_period = ServiceConfig().scrub_period_seconds

    print("== Self-healing service soak: reduced MNIST under Poisson bit flips")
    print(
        f"   duration={duration}s  mean fault interval={fault_interval}s  "
        f"scrub period={scrub_period}s"
    )
    result = run_soak(
        network="mnist_reduced",
        duration_seconds=duration,
        mean_fault_interval_seconds=fault_interval,
        scrub_period_seconds=scrub_period,
        seed=7,
    )

    print(f"\nfault events injected:      {len(result.fault_events)}")
    print(f"corrupted layers detected:  {sorted(result.detected_layers)}")
    print(f"all corruptions detected:   {result.all_errors_detected}")
    print(f"weights restored bit-exact: {result.bit_exact}")
    print(f"requests served:            {result.requests_completed}")
    print(f"requests failed:            {result.requests_failed}")
    print(f"served while quarantined:   {result.served_during_quarantine}")
    print(
        f"latency p50/p99:            "
        f"{result.p50_latency_seconds * 1e3:.2f} / "
        f"{result.p99_latency_seconds * 1e3:.2f} ms"
    )

    sla = result.sla
    print("\n== Live SLA (measured Td/Tr in the paper's availability model)")
    print(f"mean detection time Td:     {sla.mean_detection_seconds * 1e3:.3f} ms")
    print(f"mean recovery time Tr:      {sla.mean_recovery_seconds * 1e3:.3f} ms")
    print(f"availability:               {sla.availability:.6f}")
    print(f"minimum accuracy estimate:  {sla.minimum_accuracy:.9f}")

    # Scrub-period guidance: the detection duty cycle Td/tau dominates the
    # availability loss, so the shortest period keeping it under a budget is
    # tau >= Td / budget.
    budget = 0.001  # spend at most 0.1% of wall time on detection
    recommended = sla.mean_detection_seconds / budget
    spec = network_table()["mnist_reduced"]
    model_bytes = spec.builder().parameter_bytes()
    realistic_interval = dram_error_interval_seconds(model_bytes)
    print("\n== Scrub-period guidance")
    print(
        f"shortest period with <= {budget:.1%} detection duty cycle: "
        f"{recommended:.3f}s"
    )
    print(
        f"realistic DRAM error interval for this model: "
        f"{realistic_interval / 86400.0:.0f} days -- the soak compressed "
        f"years of error arrivals into seconds"
    )


if __name__ == "__main__":
    main()
