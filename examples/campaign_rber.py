#!/usr/bin/env python3
"""Run a sharded, resumable RBER evaluation campaign end to end.

This demonstrates the campaign runner on a small grid:

1. declare a grid spec (network x RBER points x protection schemes x
   repetitions),
2. start the campaign and "kill" it mid-run (``max_trials``),
3. resume it -- only the missing trials execute, completed ones are skipped
   via their content-hash keys in the JSONL store,
4. prove that re-running the finished campaign is a no-op, and
5. fold the store into the per-cell summary report.

Run with:  python examples/campaign_rber.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.reporting import format_campaign_report
from repro.experiments import CampaignSpec, campaign_status, open_store, run_campaign

#: Tiny training knobs so the example finishes in seconds; real campaigns use
#: the defaults (60 samples/class, 6 epochs).
SPEC = CampaignSpec(
    name="example_rber",
    networks=("mnist_reduced",),
    error_rates=(1e-4, 1e-3),
    fault_modes=("rber",),
    schemes=("none", "milr"),
    repetitions=2,
    seed=7,
    train_samples_per_class=8,
    train_epochs=1,
)


def main() -> None:
    store_path = Path(tempfile.mkdtemp(prefix="milr_campaign_")) / "rber.jsonl"
    store = open_store(store_path)
    total = 2 * 2 * 2  # rates x schemes x repetitions
    print(f"== 1. Campaign grid: {total} trials -> {store_path}")

    print("\n== 2. Start the campaign and interrupt it after 3 trials")
    summary = run_campaign(SPEC, store, workers=2, max_trials=3)
    print(f"executed {summary.executed}, remaining {summary.remaining}")

    print("\n== 3. Resume: only the missing trials run")
    summary = run_campaign(SPEC, store, workers=2)
    print(f"skipped {summary.already_completed} stored trials, executed {summary.executed}")
    for row in campaign_status(SPEC, store):
        print(f"  {row['network']}/{row['fault_mode']}: {row['completed']}/{row['total']} done")

    print("\n== 4. Re-running the finished campaign is a no-op")
    summary = run_campaign(SPEC, store, workers=2)
    assert summary.executed == 0 and summary.finished
    print(f"executed {summary.executed} (all {summary.already_completed} already stored)")

    print("\n== 5. Per-cell summary report (detection/recovery/bit-exactness rates)")
    print(format_campaign_report(store.records(), include_timing=False))


if __name__ == "__main__":
    main()
