#!/usr/bin/env python3
"""Quickstart: protect a CNN with MILR, corrupt it, and watch it self-heal.

This walks through the full MILR lifecycle on a small CNN trained on the
synthetic MNIST-like dataset:

1. train a CNN (NumPy framework, a few seconds),
2. initialize MILR (planning + checkpointing),
3. corrupt the weights with whole-weight errors (the plaintext-space image of
   ciphertext memory errors under AES-XTS),
4. run MILR detection and recovery,
5. compare accuracy before corruption, after corruption and after recovery.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import MILRConfig, MILRProtector
from repro.experiments.injection import corrupt_model_whole_weight
from repro.experiments.model_provider import get_trained_network


def main() -> None:
    print("== 1. Train (or load from cache) a small CNN on the synthetic MNIST dataset")
    network = get_trained_network("mnist_reduced", samples_per_class=60, epochs=6, seed=0)
    model = network.model
    print(model.summary())
    print(f"baseline test accuracy: {network.baseline_accuracy:.3f}")

    print("\n== 2. Initialize MILR (runs once, while the weights are known-good)")
    protector = MILRProtector(model, MILRConfig(master_seed=2021))
    plan = protector.initialize()
    print(f"checkpointed layer inputs: {plan.checkpoint_indices}")
    storage = protector.storage_report()
    print(
        f"MILR error-resistant storage: {storage.total_megabytes:.3f} MB "
        f"({storage.fraction_of_weights():.2f}x the raw weights)"
    )

    print("\n== 3. Corrupt the weights (whole-weight errors, q = 1e-3)")
    rng = np.random.default_rng(7)
    reports = corrupt_model_whole_weight(model, 1e-3, rng)
    corrupted_weights = sum(report.affected_weights for report in reports.values())
    print(f"corrupted weights: {corrupted_weights}")
    print(f"accuracy after corruption: {network.accuracy():.3f}")

    print("\n== 4. MILR error detection and self-healing recovery")
    detection, recovery = protector.detect_and_recover()
    flagged = [result.name for result in detection.results if result.erroneous]
    print(f"layers flagged by detection: {flagged}")
    if recovery is not None:
        for result in recovery.results:
            print(
                f"  recovered {result.name:<14s} strategy={result.strategy.value:<14s} "
                f"parameters={result.parameters_updated:>6d} "
                f"exact={result.fully_determined} ({result.elapsed_seconds*1e3:.1f} ms)"
            )

    print("\n== 5. Accuracy after recovery")
    print(f"accuracy after recovery:  {network.accuracy():.3f}")
    print(f"normalized accuracy:      {network.normalized_accuracy():.3f}")


if __name__ == "__main__":
    main()
