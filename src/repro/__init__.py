"""MILR: Mathematically Induced Layer Recovery — DSN 2021 reproduction.

Public API highlights:

* :mod:`repro.nn` — the NumPy CNN framework (layers, models, training),
* :mod:`repro.core` — the MILR protector (initialization, detection, recovery),
* :mod:`repro.memory` — fault injection, SECDED ECC and the AES-XTS
  ciphertext/plaintext error model,
* :mod:`repro.zoo` — the paper's three evaluation networks,
* :mod:`repro.experiments` — harnesses regenerating every table and figure.
"""

from repro.core import MILRConfig, MILRProtector
from repro.nn import Sequential

__version__ = "1.0.0"

__all__ = ["MILRProtector", "MILRConfig", "Sequential", "__version__"]
