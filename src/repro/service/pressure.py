"""Poisson fault-pressure driver for soak scenarios.

Replays the paper's memory-error arrival model against live registered
models: error events arrive as a Poisson process (exponential inter-arrival
times), and each event flips a small number of bits in a randomly chosen
parameterized layer via :func:`repro.memory.fault_injection.inject_bit_flips`.

By default flips land in high-order bits (exponent/sign) of non-negligible
weights so every event is observable by MILR's tolerance-based detection --
the regime soak tests assert "every corruption is detected" in.  Passing
``bit_positions=range(32)`` and ``min_magnitude=0.0`` reproduces the paper's
fully random RBER-style flips instead.

Each event is recorded as a :class:`FaultEvent`, giving soak harnesses the
ground truth to check detection coverage against.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.exceptions import FaultInjectionError
from repro.memory.fault_injection import inject_bit_flips
from repro.memory.fault_models import FaultModel, FaultTarget, create_fault_model
from repro.service.registry import ManagedModel, ModelRegistry

__all__ = [
    "FaultEvent",
    "FaultPressureDriver",
    "DEFAULT_BIT_POSITIONS",
    "SCRATCH_LAYER_NAME",
]

#: Exponent and sign bits of an IEEE-754 float32 word: flips here change the
#: weight by at least a factor of two, which MILR detection always observes.
DEFAULT_BIT_POSITIONS: tuple[int, ...] = tuple(range(23, 32))

#: Pseudo layer name recorded for events that corrupt plan scratch buffers
#: rather than any layer's weights.
SCRATCH_LAYER_NAME = "<plan-scratch>"


@dataclass(frozen=True)
class FaultEvent:
    """Ground truth for one injected error event."""

    timestamp: float
    model_name: str
    layer_index: int
    layer_name: str
    flipped_bits: int
    affected_weight_indices: tuple[int, ...]
    #: Registry name of the fault model that produced the event ("bit_flip"
    #: for the driver's classic single-flip workload).
    fault_model: str = "bit_flip"
    #: Whether this event is a persistent fault re-asserting itself after a
    #: repair (stuck-at cells), rather than a fresh Poisson arrival.
    reasserted: bool = False


class FaultPressureDriver:
    """Injects Poisson bit-flip arrivals into registered models."""

    def __init__(
        self,
        target: Union[ModelRegistry, ManagedModel, Iterable[ManagedModel]],
        mean_interval_seconds: float = 0.5,
        seed: int = 0,
        flips_per_event: int = 1,
        bit_positions: Sequence[int] = DEFAULT_BIT_POSITIONS,
        min_magnitude: float = 1e-3,
        max_events: Optional[int] = None,
        ensure_detectable: bool = True,
        max_attempts: int = 50,
        layer_indices: Optional[Sequence[int]] = None,
        fault_models: Optional[
            Union[
                Mapping[str, float],
                Sequence[Union[str, FaultModel]],
            ]
        ] = None,
        reassert_interval_seconds: float = 0.2,
        telemetry=None,
    ):
        if mean_interval_seconds <= 0:
            raise FaultInjectionError("mean_interval_seconds must be positive")
        if flips_per_event < 1:
            raise FaultInjectionError("flips_per_event must be at least 1")
        if reassert_interval_seconds <= 0:
            raise FaultInjectionError("reassert_interval_seconds must be positive")
        if isinstance(target, ManagedModel):
            self._entries: list[ManagedModel] = [target]
        elif isinstance(target, ModelRegistry):
            self._entries = list(target)
        else:
            self._entries = list(target)
        if not self._entries:
            raise FaultInjectionError("fault driver needs at least one managed model")
        self.mean_interval_seconds = float(mean_interval_seconds)
        self.flips_per_event = int(flips_per_event)
        self.bit_positions = tuple(bit_positions)
        self.min_magnitude = float(min_magnitude)
        self.max_events = max_events
        #: Verify (under the model lock) that MILR detection actually flags
        #: each injected corruption; undetectable flips -- e.g. a flip landing
        #: on a weight whose detection-input coefficient is ~0, or a low-order
        #: flip below the detection tolerance -- are reverted and re-drawn.
        #: This gives soak harnesses exact ground truth; production error
        #: arrivals (``ensure_detectable=False``) keep the paper's behaviour
        #: where sub-tolerance errors deliberately go unnoticed.
        self.ensure_detectable = ensure_detectable
        self.max_attempts = int(max_attempts)
        #: When given, only these layer indices are targeted (every entry must
        #: keep at least one of them).  Soak tests use this to guarantee that
        #: specific layer types (e.g. a newly registered handler's layers)
        #: actually see corruption.
        self.layer_indices = None if layer_indices is None else {int(i) for i in layer_indices}
        if self.layer_indices is not None:
            for entry in self._entries:
                if not self.layer_indices & set(entry.parameterized_indices):
                    raise FaultInjectionError(
                        f"model {entry.name!r} has no parameterized layer among "
                        f"targeted indices {sorted(self.layer_indices)}"
                    )
        #: Mixed-model mode: each Poisson arrival picks one model from the
        #: zoo (:mod:`repro.memory.fault_models`) according to the per-model
        #: weight vector.  ``None`` keeps the driver's classic single-bit-flip
        #: workload (bit-identically: no extra RNG draws are consumed).
        self._fault_models: list[FaultModel] = []
        self._model_weights: Optional[np.ndarray] = None
        if fault_models:
            if isinstance(fault_models, Mapping):
                items = [(spec, float(weight)) for spec, weight in fault_models.items()]
            else:
                items = [(spec, 1.0) for spec in fault_models]
            models: list[FaultModel] = []
            weights: list[float] = []
            for spec, weight in items:
                if weight <= 0:
                    raise FaultInjectionError(
                        f"fault model weight must be positive, got {weight} for {spec!r}"
                    )
                models.append(
                    spec if isinstance(spec, FaultModel) else create_fault_model(str(spec))
                )
                weights.append(weight)
            total = sum(weights)
            self._fault_models = models
            self._model_weights = np.asarray([w / total for w in weights])
        self.reassert_interval_seconds = float(reassert_interval_seconds)
        #: Optional :class:`~repro.obs.telemetry.Telemetry` facade; every
        #: recorded event opens (or re-opens) its fault-lifecycle chain.
        #: Telemetry never consumes the driver's RNG stream.
        self._telemetry = telemetry
        #: ``(model, entry, layer index)`` of every persistent fault injected
        #: so far; :meth:`reassert_once` re-applies them on its own cadence.
        self._persistent_targets: list[tuple[FaultModel, ManagedModel, int]] = []
        #: Events that were drawn but reverted as undetectable.
        self.skipped_undetectable = 0
        self._rng = np.random.default_rng(seed)
        self._events: list[FaultEvent] = []
        self._events_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    @property
    def events(self) -> list[FaultEvent]:
        """Snapshot of all injected events so far."""
        with self._events_lock:
            return list(self._events)

    def injected_layers(self, model_name: str) -> set[int]:
        """Layer indices of ``model_name`` hit by at least one weight event.

        Scratch-corruption events (``layer_index == -1``) are excluded: they
        corrupt plan buffers, not layer weights, so they are not ground truth
        for weight-checkpoint detection.
        """
        with self._events_lock:
            return {
                event.layer_index
                for event in self._events
                if event.model_name == model_name and event.layer_index >= 0
            }

    # ------------------------------------------------------------------ #
    def _pick_model(self) -> Optional[FaultModel]:
        """Draw one zoo model per arrival (no RNG use in classic mode)."""
        if not self._fault_models:
            return None
        if len(self._fault_models) == 1:
            return self._fault_models[0]
        choice = int(self._rng.choice(len(self._fault_models), p=self._model_weights))
        return self._fault_models[choice]

    def _record(self, event: FaultEvent) -> FaultEvent:
        with self._events_lock:
            self._events.append(event)
        if self._telemetry is not None:
            self._telemetry.fault_injected(
                event.model_name,
                event.layer_index,
                event.fault_model,
                event.reasserted,
                event.timestamp,
                flipped_bits=event.flipped_bits,
            )
        return event

    def _inject_scratch(self, entry: ManagedModel, model: FaultModel) -> Optional[FaultEvent]:
        """One non-weight (plan scratch) injection; ``None`` if no targets."""
        with entry.lock:
            report = model.inject(FaultTarget(entry.model), self._rng)
        if report.flipped_bits == 0:
            return None
        return self._record(
            FaultEvent(
                timestamp=time.perf_counter(),
                model_name=entry.name,
                layer_index=-1,
                layer_name=SCRATCH_LAYER_NAME,
                flipped_bits=report.flipped_bits,
                affected_weight_indices=tuple(int(i) for i in report.affected_indices),
                fault_model=model.name,
            )
        )

    def inject_once(self) -> Optional[FaultEvent]:
        """Inject one error event now (also usable without the thread).

        Returns ``None`` when ``ensure_detectable`` is set and no detectable
        corruption was found within ``max_attempts`` draws, or when the drawn
        fault model found nothing to corrupt.
        """
        entry = self._entries[int(self._rng.integers(len(self._entries)))]
        model = self._pick_model()
        if model is not None and not model.targets_weights:
            return self._inject_scratch(entry, model)
        candidates = entry.parameterized_indices
        if self.layer_indices is not None:
            candidates = [i for i in candidates if i in self.layer_indices]
        # Scratch/adversarial models outside MILR's view skip the
        # detectability verification: weight checkpoints cannot (or need not)
        # confirm them.
        verify = self.ensure_detectable and (model is None or model.detectable_by_milr)
        attempts = self.max_attempts if verify else 1
        for _ in range(attempts):
            index = int(candidates[int(self._rng.integers(len(candidates)))])
            layer = entry.model.layers[index]
            target = FaultTarget(entry.model, index)
            # The lock makes the corruption atomic with respect to batches and
            # recovery -- a bit flip lands between forward passes, never inside
            # one (the simulator's stand-in for word-granular memory writes).
            with entry.lock:
                weights = layer.get_weights()
                if model is None:
                    corrupted, report = inject_bit_flips(
                        weights,
                        self._rng,
                        flips=self.flips_per_event,
                        bit_positions=self.bit_positions,
                        min_magnitude=self.min_magnitude,
                    )
                    layer.set_weights(corrupted)
                else:
                    report = model.inject(target, self._rng)
                if report.flipped_bits == 0:
                    if model is not None:
                        model.revert(target)
                    layer.set_weights(weights)
                    continue
                if verify:
                    check = entry.protector.detect(layer_indices=[index])
                    if index not in check.erroneous_layers:
                        if model is not None:
                            model.revert(target)
                        layer.set_weights(weights)
                        self.skipped_undetectable += 1
                        continue
            if model is not None and model.persistent:
                with self._events_lock:
                    key = (model, entry, index)
                    if key not in self._persistent_targets:
                        self._persistent_targets.append(key)
            return self._record(
                FaultEvent(
                    timestamp=time.perf_counter(),
                    model_name=entry.name,
                    layer_index=index,
                    layer_name=layer.name,
                    flipped_bits=report.flipped_bits,
                    affected_weight_indices=tuple(
                        int(i) for i in report.affected_indices
                    ),
                    fault_model=model.name if model is not None else "bit_flip",
                )
            )
        return None

    def reassert_once(self) -> int:
        """Re-apply every standing persistent fault; returns bits re-flipped.

        Targets whose cells are still asserted (nothing repaired them since
        the last pass) contribute nothing and no event is recorded; a repaired
        layer re-corrupts and the re-assertion is logged as a ``reasserted``
        event so harnesses can count repair/re-corruption cycles.
        """
        with self._events_lock:
            targets = list(self._persistent_targets)
        total = 0
        for model, entry, index in targets:
            with entry.lock:
                report = model.reassert(FaultTarget(entry.model, index), self._rng)
            if report is None or report.flipped_bits == 0:
                continue
            total += report.flipped_bits
            self._record(
                FaultEvent(
                    timestamp=time.perf_counter(),
                    model_name=entry.name,
                    layer_index=index,
                    layer_name=entry.model.layers[index].name,
                    flipped_bits=report.flipped_bits,
                    affected_weight_indices=tuple(
                        int(i) for i in report.affected_indices
                    ),
                    fault_model=model.name,
                    reasserted=True,
                )
            )
        return total

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="fault-pressure", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    @property
    def exhausted(self) -> bool:
        """Whether the driver's budget of *fresh* arrivals is spent.

        Re-assertions of standing persistent faults do not count against
        ``max_events`` -- they are consequences of earlier arrivals, and an
        exhausted driver keeps re-asserting them until stopped.
        """
        if self.max_events is None:
            return False
        with self._events_lock:
            count = sum(1 for event in self._events if not event.reasserted)
        return count >= self.max_events

    def _loop(self) -> None:
        # Classic mode (no zoo models) must stay RNG-identical with earlier
        # releases: exactly one exponential draw per fresh arrival, nothing
        # else, so seeded soak tests reproduce bit-for-bit.
        reassert_enabled = any(model.persistent for model in self._fault_models)
        clock = time.perf_counter
        next_reassert = clock() + self.reassert_interval_seconds
        while not self._stop_event.is_set():
            fresh_allowed = not self.exhausted
            if not fresh_allowed:
                if not (reassert_enabled and self._persistent_targets):
                    return
                target = next_reassert
            else:
                wait = float(self._rng.exponential(self.mean_interval_seconds))
                target = clock() + wait
            while True:
                now = clock()
                if reassert_enabled and now >= next_reassert:
                    self.reassert_once()
                    next_reassert = now + self.reassert_interval_seconds
                if now >= target:
                    break
                upper = min(target, next_reassert) if reassert_enabled else target
                if self._stop_event.wait(max(0.0, upper - now)):
                    return
            if fresh_allowed:
                self.inject_once()
