"""Poisson fault-pressure driver for soak scenarios.

Replays the paper's memory-error arrival model against live registered
models: error events arrive as a Poisson process (exponential inter-arrival
times), and each event flips a small number of bits in a randomly chosen
parameterized layer via :func:`repro.memory.fault_injection.inject_bit_flips`.

By default flips land in high-order bits (exponent/sign) of non-negligible
weights so every event is observable by MILR's tolerance-based detection --
the regime soak tests assert "every corruption is detected" in.  Passing
``bit_positions=range(32)`` and ``min_magnitude=0.0`` reproduces the paper's
fully random RBER-style flips instead.

Each event is recorded as a :class:`FaultEvent`, giving soak harnesses the
ground truth to check detection coverage against.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.exceptions import FaultInjectionError
from repro.memory.fault_injection import inject_bit_flips
from repro.service.registry import ManagedModel, ModelRegistry

__all__ = ["FaultEvent", "FaultPressureDriver", "DEFAULT_BIT_POSITIONS"]

#: Exponent and sign bits of an IEEE-754 float32 word: flips here change the
#: weight by at least a factor of two, which MILR detection always observes.
DEFAULT_BIT_POSITIONS: tuple[int, ...] = tuple(range(23, 32))


@dataclass(frozen=True)
class FaultEvent:
    """Ground truth for one injected error event."""

    timestamp: float
    model_name: str
    layer_index: int
    layer_name: str
    flipped_bits: int
    affected_weight_indices: tuple[int, ...]


class FaultPressureDriver:
    """Injects Poisson bit-flip arrivals into registered models."""

    def __init__(
        self,
        target: Union[ModelRegistry, ManagedModel, Iterable[ManagedModel]],
        mean_interval_seconds: float = 0.5,
        seed: int = 0,
        flips_per_event: int = 1,
        bit_positions: Sequence[int] = DEFAULT_BIT_POSITIONS,
        min_magnitude: float = 1e-3,
        max_events: Optional[int] = None,
        ensure_detectable: bool = True,
        max_attempts: int = 50,
        layer_indices: Optional[Sequence[int]] = None,
    ):
        if mean_interval_seconds <= 0:
            raise FaultInjectionError("mean_interval_seconds must be positive")
        if flips_per_event < 1:
            raise FaultInjectionError("flips_per_event must be at least 1")
        if isinstance(target, ManagedModel):
            self._entries: list[ManagedModel] = [target]
        elif isinstance(target, ModelRegistry):
            self._entries = list(target)
        else:
            self._entries = list(target)
        if not self._entries:
            raise FaultInjectionError("fault driver needs at least one managed model")
        self.mean_interval_seconds = float(mean_interval_seconds)
        self.flips_per_event = int(flips_per_event)
        self.bit_positions = tuple(bit_positions)
        self.min_magnitude = float(min_magnitude)
        self.max_events = max_events
        #: Verify (under the model lock) that MILR detection actually flags
        #: each injected corruption; undetectable flips -- e.g. a flip landing
        #: on a weight whose detection-input coefficient is ~0, or a low-order
        #: flip below the detection tolerance -- are reverted and re-drawn.
        #: This gives soak harnesses exact ground truth; production error
        #: arrivals (``ensure_detectable=False``) keep the paper's behaviour
        #: where sub-tolerance errors deliberately go unnoticed.
        self.ensure_detectable = ensure_detectable
        self.max_attempts = int(max_attempts)
        #: When given, only these layer indices are targeted (every entry must
        #: keep at least one of them).  Soak tests use this to guarantee that
        #: specific layer types (e.g. a newly registered handler's layers)
        #: actually see corruption.
        self.layer_indices = None if layer_indices is None else {int(i) for i in layer_indices}
        if self.layer_indices is not None:
            for entry in self._entries:
                if not self.layer_indices & set(entry.parameterized_indices):
                    raise FaultInjectionError(
                        f"model {entry.name!r} has no parameterized layer among "
                        f"targeted indices {sorted(self.layer_indices)}"
                    )
        #: Events that were drawn but reverted as undetectable.
        self.skipped_undetectable = 0
        self._rng = np.random.default_rng(seed)
        self._events: list[FaultEvent] = []
        self._events_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    @property
    def events(self) -> list[FaultEvent]:
        """Snapshot of all injected events so far."""
        with self._events_lock:
            return list(self._events)

    def injected_layers(self, model_name: str) -> set[int]:
        """Layer indices of ``model_name`` hit by at least one event."""
        with self._events_lock:
            return {
                event.layer_index
                for event in self._events
                if event.model_name == model_name
            }

    # ------------------------------------------------------------------ #
    def inject_once(self) -> Optional[FaultEvent]:
        """Inject one error event now (also usable without the thread).

        Returns ``None`` only when ``ensure_detectable`` is set and no
        detectable corruption was found within ``max_attempts`` draws.
        """
        entry = self._entries[int(self._rng.integers(len(self._entries)))]
        candidates = entry.parameterized_indices
        if self.layer_indices is not None:
            candidates = [i for i in candidates if i in self.layer_indices]
        attempts = self.max_attempts if self.ensure_detectable else 1
        for _ in range(attempts):
            index = int(candidates[int(self._rng.integers(len(candidates)))])
            layer = entry.model.layers[index]
            # The lock makes the corruption atomic with respect to batches and
            # recovery -- a bit flip lands between forward passes, never inside
            # one (the simulator's stand-in for word-granular memory writes).
            with entry.lock:
                weights = layer.get_weights()
                corrupted, report = inject_bit_flips(
                    weights,
                    self._rng,
                    flips=self.flips_per_event,
                    bit_positions=self.bit_positions,
                    min_magnitude=self.min_magnitude,
                )
                layer.set_weights(corrupted)
                if self.ensure_detectable:
                    check = entry.protector.detect(layer_indices=[index])
                    if index not in check.erroneous_layers:
                        layer.set_weights(weights)
                        self.skipped_undetectable += 1
                        continue
            event = FaultEvent(
                timestamp=time.perf_counter(),
                model_name=entry.name,
                layer_index=index,
                layer_name=layer.name,
                flipped_bits=report.flipped_bits,
                affected_weight_indices=tuple(int(i) for i in report.affected_indices),
            )
            with self._events_lock:
                self._events.append(event)
            return event
        return None

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="fault-pressure", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    @property
    def exhausted(self) -> bool:
        """Whether the driver stopped after reaching ``max_events``."""
        with self._events_lock:
            count = len(self._events)
        return self.max_events is not None and count >= self.max_events

    def _loop(self) -> None:
        while not self._stop_event.is_set():
            if self.max_events is not None:
                with self._events_lock:
                    if len(self._events) >= self.max_events:
                        return
            wait = float(self._rng.exponential(self.mean_interval_seconds))
            if self._stop_event.wait(wait):
                return
            self.inject_once()
