"""Bit-exact repair refinement on top of MILR's algebraic recovery.

MILR's parameter solvers restore a corrupted layer to within solver precision
(~1e-7 relative), which passes detection but is not bit-identical to the
original weights.  For the memory-error fault model the service runtime can do
better: a corrupted word differs from its golden value only in the flipped
bits, so the golden word is *reachable* from the stored corrupted word by
flipping a small number of bits back.

The refinement therefore works per weight:

1. if the stored word already agrees with the solver's recovered estimate
   (within tolerance), keep the stored word -- it is bit-identical golden data;
2. otherwise search the words reachable from the stored word by flipping up to
   ``max_flips`` bits and take the one closest to the solver estimate;
3. verify the resulting array against the layer's golden fingerprint (stored
   in error-resistant memory at initialization).  Only a fingerprint match
   promotes the refined array; otherwise the solver's estimate is kept, which
   degrades gracefully to MILR's usual approximate recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product

import numpy as np

from repro.core.checkpoint import weight_fingerprint
from repro.crc.crc32 import crc32_bytes, crc8_bytes
from repro.crc.twod import CRCCode2D, TwoDimensionalCRC
from repro.types import BITS_PER_WEIGHT, FLOAT_DTYPE

__all__ = [
    "RepairOutcome",
    "snap_to_bit_flips",
    "sparse_kernel_repair",
    "sparse_bias_repair",
    "crc_guided_kernel_repair",
    "estimate_guided_repair",
    "refine_recovered_weights",
]


def _flip_mask_tiers(max_flips: int) -> list[np.ndarray]:
    """XOR-mask arrays grouped by flip count: ``[1-bit masks, 2-bit masks, ...]``.

    Tiers matter: candidates from fewer simultaneous flips are searched (and
    accepted) first, because under the memory-error model a word is far more
    likely to have suffered one flip than two, and a 2-flip mask can otherwise
    fabricate a value a few ULP closer to the (approximate) solver estimate
    than the true golden word.
    """
    singles = [np.uint32(1) << np.uint32(k) for k in range(BITS_PER_WEIGHT)]
    tiers = []
    for count in range(1, max_flips + 1):
        tier = []
        for combo in combinations(singles, count):
            mask = np.uint32(0)
            for bit in combo:
                mask ^= bit
            tier.append(mask)
        tiers.append(np.asarray(tier, dtype=np.uint32))
    return tiers


#: Mask tables are tiny (32 entries for 1 flip, 496 for 2), so cache them.
_MASK_CACHE: dict[int, list[np.ndarray]] = {}

#: Network weights are O(1); a word beyond this magnitude can only be
#: exponent-bit corruption and is treated as a definite repair suspect.
_EXTREME_MAGNITUDE = 1e8


def _masks_for(max_flips: int) -> list[np.ndarray]:
    cached = _MASK_CACHE.get(max_flips)
    if cached is None:
        cached = _flip_mask_tiers(max_flips)
        _MASK_CACHE[max_flips] = cached
    return cached


@dataclass(frozen=True)
class RepairOutcome:
    """Result of one bit-exact repair attempt on a layer."""

    #: Whether the refined weights matched the stored golden fingerprint and
    #: were written back (bit-exact restoration).
    bit_exact: bool
    #: Number of weights snapped back through the bit-flip search.
    snapped_weights: int
    #: Number of weights kept verbatim from the (mostly clean) stored array.
    kept_weights: int
    #: Which repair-chain strategy produced this outcome ("checkpoint_free",
    #: "residual_estimate", "solver_snap", "estimate_guided", "remap"); ""
    #: for low-level helpers that do not know their caller.
    strategy: str = ""


def snap_to_bit_flips(
    corrupted: np.ndarray,
    estimate: np.ndarray,
    rtol: float,
    atol: float,
    max_flips: int = 2,
) -> tuple[np.ndarray, int, int]:
    """Refine a solver estimate using the stored corrupted bit patterns.

    Returns ``(refined, snapped, kept)`` where ``refined`` has the same shape
    as ``estimate``; weights whose stored word already agrees with the
    estimate are kept bit-verbatim (``kept``), disagreeing words are replaced
    by their closest reachable bit-flip candidate when one lies within
    tolerance of the estimate (``snapped``), and the solver estimate is used
    as a last resort.
    """
    corrupted = np.ascontiguousarray(corrupted, dtype=FLOAT_DTYPE)
    estimate = np.asarray(estimate, dtype=FLOAT_DTYPE)
    if corrupted.shape != estimate.shape:
        raise ValueError(
            f"corrupted shape {corrupted.shape} != estimate shape {estimate.shape}"
        )
    flat_corrupted = corrupted.ravel()
    flat_estimate = estimate.astype(np.float64).ravel()
    tolerance = atol + rtol * np.abs(flat_estimate)
    with np.errstate(invalid="ignore", over="ignore"):
        deviation = np.abs(flat_corrupted.astype(np.float64) - flat_estimate)
        # NaN/Inf corrupted words produce non-finite deviations and are never kept.
        keep = np.isfinite(deviation) & (deviation <= tolerance)
    refined = np.where(keep, flat_corrupted, estimate.ravel()).astype(FLOAT_DTYPE)
    suspects = np.flatnonzero(~keep)
    tiers = _masks_for(max_flips)
    snapped = 0
    for index in suspects:
        word = flat_corrupted[index : index + 1].view(np.uint32)[0]
        for masks in tiers:
            candidates = (masks ^ word).view(FLOAT_DTYPE)
            with np.errstate(invalid="ignore", over="ignore"):
                distances = np.abs(candidates.astype(np.float64) - flat_estimate[index])
                within = np.isfinite(distances) & (distances <= tolerance[index])
            if np.any(within):
                best = np.flatnonzero(within)[np.argmin(distances[within])]
                refined[index] = candidates[best]
                snapped += 1
                break
    return refined.reshape(estimate.shape), snapped, int(keep.sum())


def sparse_kernel_repair(
    patches: np.ndarray,
    outputs: np.ndarray,
    corrupted_matrix: np.ndarray,
    rtol: float,
    atol: float,
    max_support: int = 8,
) -> tuple[np.ndarray, bool]:
    """Residual-guided sparse repair of a convolution kernel matrix.

    Deep convolution layers can defeat MILR's full kernel solve: the golden
    input patches span only the degrees of freedom that survive the upstream
    linearized network, so the patch matrix ``A`` is rank-deficient and the
    least-squares solution is a minimum-norm kernel far from the golden one.
    Memory errors, however, are *sparse*: the corrupted kernel differs from
    golden in a handful of coordinates.  Writing ``B - A @ C = A @ (G - C)``
    per output filter, the correction ``G - C`` is found by orthogonal
    matching pursuit over the kernel rows -- a tiny well-conditioned solve on
    the identified support instead of an under-determined full solve.

    Args:
        patches: Golden input patches, shape ``(positions, receptive)``.
        outputs: Golden layer output, shape ``(positions, filters)``.
        corrupted_matrix: Stored (corrupted) kernel matrix
            ``(receptive, filters)``.
        rtol / atol: Residual tolerances deciding when a filter is explained.
        max_support: Maximum corrupted rows per filter the pursuit searches.

    Returns:
        ``(estimate, complete)`` where ``estimate`` is ``corrupted_matrix``
        with sparse corrections applied and ``complete`` says every suspect
        filter's residual was driven below tolerance.
    """
    A = np.asarray(patches, dtype=np.float64)
    B = np.asarray(outputs, dtype=np.float64)
    C_raw = np.asarray(corrupted_matrix, dtype=np.float64)
    # Non-finite or extreme corrupted words (exponent-bit damage) poison the
    # residual algebra and would cancel catastrophically in ``C + delta``
    # arithmetic; zero them out and force their rows onto the support, where
    # the golden value is solved for *directly*.
    suspicious = ~np.isfinite(C_raw) | (np.abs(C_raw) > _EXTREME_MAGNITUDE)
    C = np.where(suspicious, 0.0, C_raw)
    residual = B - A @ C
    estimate = np.where(suspicious, 0.0, C_raw).astype(FLOAT_DTYPE)
    col_norms = np.sqrt(np.maximum(np.einsum("mr,mr->r", A, A), 1e-30))
    complete = True

    def _fit(support: list[int], f: int) -> tuple[np.ndarray, np.ndarray]:
        """Solve for the golden values of the support rows of filter ``f``.

        The support columns are excluded from the known-rows product so the
        solve returns golden coordinates directly -- no ``corrupted + delta``
        sum that loses every significant digit when the corrupted word is
        astronomically large.
        """
        known = C[:, f].copy()
        known[support] = 0.0
        target = B[:, f] - A @ known
        sub = A[:, support]
        values, *_ = np.linalg.lstsq(sub, target, rcond=None)
        return values, target - sub @ values

    for f in range(B.shape[1]):
        tol = atol + rtol * max(float(np.max(np.abs(B[:, f]))), 1.0)
        forced = [int(r) for r in np.flatnonzero(suspicious[:, f])]
        if not forced and float(np.max(np.abs(residual[:, f]))) <= tol:
            continue
        support = list(forced)
        values = np.zeros(0)
        fitted = residual[:, f]
        while True:
            if support:
                values, fitted = _fit(support, f)
            if float(np.max(np.abs(fitted))) <= tol:
                break
            if len(support) >= max_support:
                break
            scores = np.abs(A.T @ fitted) / col_norms
            scores[support] = -1.0
            support.append(int(np.argmax(scores)))
        if float(np.max(np.abs(fitted))) > tol:
            complete = False
            continue
        for row, value in zip(support, values):
            estimate[row, f] = np.float32(value)
    return estimate, complete


def crc_guided_kernel_repair(
    corrupted: np.ndarray,
    codes: "list[CRCCode2D]",
    crc: TwoDimensionalCRC,
    max_flips: int = 2,
    max_rounds: int = 8,
) -> tuple[np.ndarray, bool]:
    """Bit-exact kernel repair from the stored 2-D CRC codes alone.

    For layers using partial recoverability the stored row/column group CRCs
    both *localize* corrupted weights and *verify* candidate corrections: a
    suspect word is replaced by the bit-flip candidate that makes both of its
    groups match their stored codes again.  Like the bias-sum repair this
    needs no golden activations, so it works even while neighbouring layers
    are corrupted.  Repair iterates because the suspect intersection can
    contain false positives that disappear once the real corruptions are
    fixed.

    Returns ``(repaired, complete)``; ``complete`` means the final
    localization pass found no remaining suspects.  Callers should still
    confirm against the golden weight fingerprint (CRC collisions are
    unlikely, not impossible).
    """
    repaired = np.ascontiguousarray(corrupted, dtype=FLOAT_DTYPE).copy()
    crc_fn = crc8_bytes if crc.crc_bits == 8 else crc32_bytes
    group = crc.group_size
    f2_size, z_size, y_size = repaired.shape[1:]
    tiers = _masks_for(max_flips)
    for _ in range(max_rounds):
        suspects = crc.localize_kernel(repaired, codes)
        if not suspects.any():
            return repaired, True
        progress = False
        for f1, f2, z, y in zip(*np.nonzero(suspects)):
            code = codes[int(f1) * f2_size + int(f2)]
            stored_row = int(code.row_codes[z, y // group])
            stored_col = int(code.col_codes[z // group, y])
            row_lo = (y // group) * group
            row_group = repaired[f1, f2, z, row_lo : row_lo + group].copy()
            col_lo = (z // group) * group
            col_group = repaired[f1, f2, col_lo : col_lo + group, y].copy()
            word = repaired[f1, f2, z, y : y + 1].view(np.uint32)[0]
            fixed = False
            for masks in tiers:
                for candidate in (masks ^ word).view(FLOAT_DTYPE):
                    row_group[y - row_lo] = candidate
                    if crc_fn(row_group) != stored_row:
                        continue
                    col_group[z - col_lo] = candidate
                    if crc_fn(col_group) != stored_col:
                        continue
                    repaired[f1, f2, z, y] = candidate
                    progress = True
                    fixed = True
                    break
                if fixed:
                    break
        if not progress:
            break
    return repaired, not crc.localize_kernel(repaired, codes).any()


def sparse_bias_repair(
    corrupted: np.ndarray,
    stored_checkpoint: np.ndarray,
    uses_sum: bool,
    golden_fingerprint: bytes,
    rtol: float,
    atol: float,
    max_flips: int = 2,
) -> "np.ndarray | None":
    """Self-contained bit-exact repair of a bias layer from its checkpoint.

    Bias layers are the one place MILR's stored detection reference fully
    determines the repair without touching any neighbouring layer: either the
    partial checkpoint *is* the golden bias vector
    (``bias_detection_uses_sum=False``), or it is the golden element sum, in
    which case the corrupted word and its flipped bits are found by searching
    the (word, bit-flip) candidates whose corrected sum matches the stored one
    -- confirmed by the golden fingerprint.  Being neighbour-independent, this
    breaks the mutual-dependency deadlock of a corrupted convolution/bias pair
    between the same two checkpoints.

    Returns the verified golden array, or ``None`` when no single-word
    candidate explains the checkpoint (e.g. several bias words corrupted).
    """
    corrupted = np.ascontiguousarray(corrupted, dtype=FLOAT_DTYPE)
    if not uses_sum:
        golden = np.asarray(stored_checkpoint, dtype=FLOAT_DTYPE).reshape(corrupted.shape)
        if weight_fingerprint(golden) == golden_fingerprint:
            return golden
        return None
    target = float(np.asarray(stored_checkpoint).ravel()[0])
    values = corrupted.astype(np.float64)
    finite = np.isfinite(values)
    nonfinite = np.flatnonzero(~finite)
    if nonfinite.size > 1:
        return None
    tolerance = max(atol, rtol * abs(target))
    words = np.asarray(nonfinite) if nonfinite.size else np.arange(corrupted.size)
    for index in words:
        # Sum of every *other* word, excluding ``index`` before summing --
        # subtracting it afterwards would cancel catastrophically when the
        # corrupted word is astronomically large (exponent-bit damage).
        others = values.copy()
        others[index] = 0.0
        base = float(others[np.isfinite(others)].sum())
        word = corrupted[index : index + 1].view(np.uint32)[0]
        for masks in _masks_for(max_flips):
            candidates = (masks ^ word).view(FLOAT_DTYPE)
            with np.errstate(invalid="ignore", over="ignore"):
                sums = base + candidates.astype(np.float64)
                plausible = np.isfinite(sums) & (np.abs(sums - target) <= tolerance)
            for candidate in candidates[plausible]:
                repaired = corrupted.copy()
                repaired[index] = candidate
                if weight_fingerprint(repaired) == golden_fingerprint:
                    return repaired
    return None


def estimate_guided_repair(
    corrupted: np.ndarray,
    estimate: np.ndarray,
    golden_fingerprint: bytes,
    atol: float,
    max_flips: int = 2,
    max_suspects: int = 4,
    candidates_per_word: int = 4,
    max_combos: int = 256,
) -> "np.ndarray | None":
    """Fingerprint-confirmed repair that tolerates a *noisy* solver estimate.

    Some recovery estimates carry noise far above the snap tolerances (e.g. a
    bias recovered through a dense-layer inversion), which defeats the strict
    keep/snap split of :func:`snap_to_bit_flips`.  This variant measures the
    estimate's own noise floor (median |stored - estimate| deviation), treats
    only clear outliers as corrupted, shortlists bit-flip candidates per
    outlier, and searches the small candidate product for the combination the
    golden fingerprint confirms.  All non-outlier words keep their stored bit
    patterns verbatim.

    Returns the verified golden array or ``None``.
    """
    corrupted = np.ascontiguousarray(corrupted, dtype=FLOAT_DTYPE)
    estimate = np.asarray(estimate, dtype=FLOAT_DTYPE)
    flat_corrupted = corrupted.ravel()
    flat_estimate = estimate.astype(np.float64).ravel()
    with np.errstate(invalid="ignore", over="ignore"):
        deviation = np.abs(flat_corrupted.astype(np.float64) - flat_estimate)
    deviation = np.where(np.isfinite(deviation), deviation, np.inf)
    finite = deviation[np.isfinite(deviation)]
    noise = float(np.median(finite)) if finite.size else 0.0
    threshold = max(atol, 10.0 * noise)
    suspects = np.flatnonzero(deviation > threshold)
    if suspects.size == 0 or suspects.size > max_suspects:
        return None
    tiers = _masks_for(max_flips)
    shortlists: list[list[np.float32]] = []
    for index in suspects:
        word = flat_corrupted[index : index + 1].view(np.uint32)[0]
        ranked: list[tuple[float, int, np.float32]] = []
        for tier_rank, masks in enumerate(tiers):
            candidates = (masks ^ word).view(FLOAT_DTYPE)
            with np.errstate(invalid="ignore", over="ignore"):
                distances = np.abs(candidates.astype(np.float64) - flat_estimate[index])
            plausible = np.isfinite(distances) & (distances <= threshold)
            for position in np.flatnonzero(plausible):
                ranked.append(
                    (float(distances[position]), tier_rank, candidates[position])
                )
        if not ranked:
            return None
        # Fewest flips first, then closest to the estimate.
        ranked.sort(key=lambda item: (item[1], item[0]))
        shortlists.append([item[2] for item in ranked[:candidates_per_word]])
    combos = 1
    for shortlist in shortlists:
        combos *= len(shortlist)
    if combos > max_combos:
        return None
    repaired = flat_corrupted.copy()
    for combo in product(*shortlists):
        for index, value in zip(suspects, combo):
            repaired[index] = value
        if weight_fingerprint(repaired.reshape(corrupted.shape)) == golden_fingerprint:
            return repaired.reshape(corrupted.shape)
    return None


def refine_recovered_weights(
    layer,
    corrupted: np.ndarray,
    golden_fingerprint: bytes,
    rtol: float,
    atol: float,
    max_flips: int = 2,
) -> RepairOutcome:
    """Attempt a verified bit-exact restoration of an already-recovered layer.

    ``layer`` must hold the solver's recovered estimate (i.e. this runs right
    after :meth:`MILRProtector.recover`); ``corrupted`` is the snapshot of the
    weights taken *before* recovery.  On fingerprint match the refined array
    is written back; otherwise the layer keeps the solver estimate.
    """
    estimate = layer.get_weights()
    refined, snapped, kept = snap_to_bit_flips(
        corrupted, estimate, rtol=rtol, atol=atol, max_flips=max_flips
    )
    if weight_fingerprint(refined) == golden_fingerprint:
        layer.set_weights(refined)
        return RepairOutcome(bit_exact=True, snapped_weights=snapped, kept_weights=kept)
    return RepairOutcome(bit_exact=False, snapped_weights=snapped, kept_weights=kept)
