"""Configuration of the self-healing inference service runtime."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.nn.plan import DEFAULT_ULP_BOUND
from repro.obs.telemetry import TelemetryConfig

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the service runtime (batching, scrubbing, repair, SLA).

    Attributes:
        max_batch: Inference requests are queued individually and executed as
            batches of up to this many samples.  Batches execute at their
            actual occupancy through a per-batch-size compiled forward plan;
            set ``fixed_batch_shape`` to restore the old pad-to-``max_batch``
            behaviour.  The default of 16 sits where the fused per-sample
            forward cost has saturated on the zoo networks while the queue
            depth (and hence worst-case batching latency) stays small.
        fixed_batch_shape: Pad every partial batch to ``max_batch`` samples so
            each forward pass has one fixed shape (one plan, but up to
            ``max_batch - 1`` wasted sample computations per batch).  Off by
            default: variable-occupancy batches are served unpadded and the
            padded/real sample split is observable in ``RequestStats``.
        fused_forward: Serve batches through the fused forward plan (affines
            folded into the adjacent matmul, im2col-free stride-1 convs,
            conv→ReLU→maxpool chain fusion).  On by default, but gated per
            network by ULP certification (see ``certify_fusion``): a network
            that fails certification at a batch size silently falls back to
            the bit-exact plan at that size.  Set ``False`` to pin every
            serve to the bit-exact plan.
        certify_fusion: Require a passing ULP certification before a fused
            plan may serve (on by default).  Certification runs a seeded
            calibration batch through the fused and bit-exact plans once per
            ``(weight state, batch size)`` and caches the certificate; with
            this off, ``fused_forward`` serves fused plans unconditionally
            (the legacy opt-in behaviour).
        fusion_ulp_bound: Maximum ULP divergence between the fused and
            bit-exact calibration outputs for certification to pass.
            Propagated to every registered model.
        precompile_plans: Warm every serving occupancy's forward plan (and,
            with fused serving on, its fused plan plus ULP certification)
            when a model's worker starts, so no live request ever pays a
            plan compile or a calibration run.
        batch_timeout_seconds: How long a worker waits for additional requests
            to fill a batch before executing a partial one.
        scrub_period_seconds: Period of the background detection scrubber.
            The default follows the availability model: detection on the
            reduced networks costs ~1 ms, so a 0.25 s period keeps the
            detection duty cycle (and hence the availability loss) below 1%.
        scrub_chunk_layers: Number of parameterized layers checked per
            detection slice.  Smaller chunks hold the model lock for shorter
            stretches, letting inference interleave with scrubbing.
        repair_rtol: Relative tolerance used by the bit-exact repair step when
            deciding whether a stored (possibly corrupted) weight agrees with
            the solver's recovered estimate.
        repair_atol: Absolute companion to ``repair_rtol``.
        repair_max_flips: Maximum number of simultaneous bit flips per weight
            the repair step searches for when snapping a corrupted word back
            to the solver estimate.
        sparse_repair_max_support: Per-filter support bound of the
            residual-guided sparse kernel repair (max simultaneously corrupted
            kernel rows it can isolate).
        max_recovery_attempts: After this many recovery attempts that still
            fail verification, a layer is released from quarantine in
            *degraded* state (best-effort weights, counted in the SLA report)
            so one unhealable layer cannot pin availability to zero.
        quarantine_wait_seconds: How long an inference worker waits for a
            quarantined model to become healthy before failing its requests.
        yearly_accuracy_floor: Accuracy-degradation floor fed into the
            availability model (normalized accuracy after one year of
            unrecovered errors).
        recovery_async: Run recovery jobs on a dedicated worker thread so the
            scrubber keeps checking other models/layers while one heals.
        store_conv_crc: Initialize managed models with 2-D CRC codes on every
            convolution layer (``MILRConfig.always_store_conv_crc``).  The
            codes make convolution repair self-contained -- corrupted words
            are localized and their bit-flip corrections verified without
            golden passes through (possibly corrupted) neighbour layers.
        max_queue_depth: Bound of each model's request queue.  ``0`` (the
            default) keeps the legacy unbounded queue; with a bound set, the
            admission controller applies ``admission_policy`` when the queue
            is full instead of letting backlog (and memory) grow without
            limit under overload.
        admission_policy: What ``submit`` does when a bounded queue is full:
            ``"reject"`` raises :class:`~repro.exceptions.ServiceOverloadError`
            immediately (load shedding); ``"block"`` waits up to
            ``admission_block_timeout_seconds`` for space, then raises the
            same error.  Ignored while ``max_queue_depth`` is 0.
        admission_block_timeout_seconds: Longest a ``"block"``-policy submit
            waits for queue space before shedding the request.
        default_deadline_seconds: Deadline attached to every request that
            does not pass one explicitly (``None`` = no deadline).  Requests
            whose deadline has already passed when their batch is cut are
            dropped before compute and counted as shed.
        deadline_batch_cut: Cut a batch early when the oldest queued
            request's latency budget is half spent (instead of always
            waiting the full ``batch_timeout_seconds``), so batching never
            pushes a request past its deadline just to fill occupancy.
            Only has an effect on requests that carry deadlines.
        breaker_enabled: Arm a per-model :class:`~repro.service.breaker.
            CircuitBreaker` that sheds load at admission when the model's
            rolling p99 latency or quarantine depth crosses its threshold,
            then probes recovery half-open after a seeded-jitter exponential
            backoff.  Off by default (chaos/overload deployments opt in).
        breaker_p99_threshold_seconds: Rolling-window p99 latency above which
            the breaker opens.
        breaker_quarantine_depth: Quarantined-layer count at or above which
            the breaker opens (early shed while recovery is in flight).
        breaker_window: Completed-request latencies retained in the rolling
            window the p99 is computed over.
        breaker_min_samples: Latency samples required before the p99 trip
            condition is evaluated (prevents opening on the first slow
            request after start).
        breaker_backoff_seconds: Initial open-state backoff before the first
            half-open probe round; doubles on every failed probe round.
        breaker_backoff_max_seconds: Cap of the exponential backoff.
        breaker_half_open_probes: Requests admitted per half-open probe
            round; the round must complete them all under the p99 threshold
            to close the breaker.
        breaker_jitter: Fraction of the backoff added as seeded uniform
            jitter to each reopen delay (decorrelates probe storms across
            models).
        slo_availability_target: Availability objective of admitted requests
            used by :class:`~repro.service.sla.SLOReport` for error-budget
            burn accounting.  Must be in ``(0, 1)``.
        repeat_offender_threshold: Number of bit-exact repairs of the *same
            memory cell* (word index, bit position) of a layer after which the
            scrubber blacklists the cell as stuck-at hardware: the golden word
            is remembered and rewritten by a cheap remap pass at the start of
            every scrub, without waiting for full detection to flag the layer
            again.
        telemetry: Configuration of the unified telemetry layer
            (:mod:`repro.obs`): span tracing, fault-lifecycle chains and the
            metrics registry.  ``TelemetryConfig(enabled=False)`` removes the
            whole layer -- the runtime then follows exactly the
            pre-instrumentation code paths.
    """

    max_batch: int = 16
    fixed_batch_shape: bool = False
    fused_forward: bool = True
    certify_fusion: bool = True
    fusion_ulp_bound: int = DEFAULT_ULP_BOUND
    precompile_plans: bool = True
    batch_timeout_seconds: float = 0.002
    scrub_period_seconds: float = 0.25
    scrub_chunk_layers: int = 4
    repair_rtol: float = 1e-3
    repair_atol: float = 1e-5
    repair_max_flips: int = 2
    sparse_repair_max_support: int = 8
    max_recovery_attempts: int = 3
    quarantine_wait_seconds: float = 30.0
    yearly_accuracy_floor: float = 0.5
    recovery_async: bool = True
    store_conv_crc: bool = True
    repeat_offender_threshold: int = 2
    max_queue_depth: int = 0
    admission_policy: str = "reject"
    admission_block_timeout_seconds: float = 1.0
    default_deadline_seconds: Optional[float] = None
    deadline_batch_cut: bool = True
    breaker_enabled: bool = False
    breaker_p99_threshold_seconds: float = 0.25
    breaker_quarantine_depth: int = 4
    breaker_window: int = 256
    breaker_min_samples: int = 32
    breaker_backoff_seconds: float = 0.1
    breaker_backoff_max_seconds: float = 2.0
    breaker_half_open_probes: int = 8
    breaker_jitter: float = 0.2
    slo_availability_target: float = 0.99
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.fusion_ulp_bound < 0:
            raise ValueError("fusion_ulp_bound must be non-negative")
        if self.batch_timeout_seconds < 0:
            raise ValueError("batch_timeout_seconds must be non-negative")
        if self.scrub_period_seconds <= 0:
            raise ValueError("scrub_period_seconds must be positive")
        if self.scrub_chunk_layers < 1:
            raise ValueError("scrub_chunk_layers must be at least 1")
        if self.repair_rtol < 0 or self.repair_atol < 0:
            raise ValueError("repair tolerances must be non-negative")
        if self.repair_max_flips < 1:
            raise ValueError("repair_max_flips must be at least 1")
        if self.sparse_repair_max_support < 1:
            raise ValueError("sparse_repair_max_support must be at least 1")
        if self.max_recovery_attempts < 1:
            raise ValueError("max_recovery_attempts must be at least 1")
        if self.quarantine_wait_seconds <= 0:
            raise ValueError("quarantine_wait_seconds must be positive")
        if not 0.0 <= self.yearly_accuracy_floor <= 1.0:
            raise ValueError("yearly_accuracy_floor must be in [0, 1]")
        if self.repeat_offender_threshold < 1:
            raise ValueError("repeat_offender_threshold must be at least 1")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be non-negative (0 = unbounded)")
        if self.admission_policy not in ("reject", "block"):
            raise ValueError("admission_policy must be 'reject' or 'block'")
        if self.admission_block_timeout_seconds <= 0:
            raise ValueError("admission_block_timeout_seconds must be positive")
        if self.default_deadline_seconds is not None and self.default_deadline_seconds <= 0:
            raise ValueError("default_deadline_seconds must be positive (or None)")
        if self.breaker_p99_threshold_seconds <= 0:
            raise ValueError("breaker_p99_threshold_seconds must be positive")
        if self.breaker_quarantine_depth < 1:
            raise ValueError("breaker_quarantine_depth must be at least 1")
        if self.breaker_window < 1:
            raise ValueError("breaker_window must be at least 1")
        if self.breaker_min_samples < 1:
            raise ValueError("breaker_min_samples must be at least 1")
        if self.breaker_backoff_seconds <= 0:
            raise ValueError("breaker_backoff_seconds must be positive")
        if self.breaker_backoff_max_seconds < self.breaker_backoff_seconds:
            raise ValueError(
                "breaker_backoff_max_seconds must be at least breaker_backoff_seconds"
            )
        if self.breaker_half_open_probes < 1:
            raise ValueError("breaker_half_open_probes must be at least 1")
        if not 0.0 <= self.breaker_jitter <= 1.0:
            raise ValueError("breaker_jitter must be in [0, 1]")
        if not 0.0 < self.slo_availability_target < 1.0:
            raise ValueError("slo_availability_target must be in (0, 1)")
