"""Model registry: protected models plus their live serving state.

A :class:`ManagedModel` bundles everything the runtime needs to serve one
model under fault pressure: the model itself, its initialized
:class:`~repro.core.protector.MILRProtector`, a lock that serializes
weight-coherent operations (batch execution, detection slices, recovery,
fault injection), the quarantine set of layers with detected-but-unrecovered
errors, and an :class:`~repro.service.sla.SLATracker`.

Quarantine is the serving contract: while any layer of a model is
quarantined, inference workers for that model wait on the health condition
instead of executing batches, so no request is ever answered by a forward
pass through a layer known to be corrupted.  Models are independent -- a
quarantined model never blocks the others in the registry.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass
from dataclasses import replace as dataclass_replace
from typing import Iterable, Iterator, Optional

from repro.core.config import MILRConfig
from repro.core.protector import MILRProtector
from repro.exceptions import ExperimentError
from repro.nn.model import Sequential
from repro.obs.telemetry import Telemetry
from repro.service.config import ServiceConfig
from repro.service.sla import SLATracker

__all__ = ["RequestStats", "ManagedModel", "ModelRegistry"]


@dataclass
class RequestStats:
    """Aggregate per-model request accounting (guarded by the model lock)."""

    requests_completed: int = 0
    requests_failed: int = 0
    batches_executed: int = 0
    total_latency_seconds: float = 0.0
    max_latency_seconds: float = 0.0
    #: Real samples computed by batch execution (= requests in the batch).
    samples_served: int = 0
    #: Padding samples computed and thrown away.  Stays zero unless
    #: ``ServiceConfig.fixed_batch_shape`` re-enables padding; the historical
    #: pad-to-``max_batch`` behaviour wasted up to ``max_batch - 1`` sample
    #: computations per partial batch.
    samples_padded: int = 0
    #: Cached forward plans invalidated by the fingerprint revalidation sweep
    #: that runs when quarantine is lifted (weights changed under the plan and
    #: were not restored byte-identically at compile-time values).
    plan_invalidations: int = 0
    #: Requests that executed while the quarantine set was non-empty.  The
    #: runtime's invariant is that this stays zero; it is counted (rather than
    #: asserted) so violations are observable in production.
    served_during_quarantine: int = 0
    #: Requests answered through a ULP-certified fused plan.
    fused_served: int = 0
    #: Requests that asked for the fused plan but were served bit-exact
    #: because the network is not certified at that batch size.
    fused_fallbacks: int = 0
    #: Fusion calibration runs paid by the serve path (certification cache
    #: misses; each one ran the seeded calibration batch through both plans).
    fusion_certifications: int = 0
    #: Requests served by a fused plan *without* a passing certificate while
    #: certification was on.  The serving contract keeps this zero by
    #: construction; counted (not asserted) so violations are observable.
    uncertified_fused_served: int = 0
    #: Requests rejected at admission because the bounded queue was full.
    shed_queue_full: int = 0
    #: Requests rejected at admission by an open circuit breaker.
    shed_breaker: int = 0
    #: Admitted requests dropped before compute because their deadline had
    #: already passed when their batch was cut.
    shed_deadline: int = 0
    #: Requests that completed while the model carried degraded layers
    #: (best-effort weights released after exhausted recovery attempts).
    served_degraded: int = 0
    #: High-water mark of the request queue depth observed at admission.
    #: With ``ServiceConfig.max_queue_depth`` set this never exceeds the
    #: bound -- the chaos harness's bounded-memory check.
    queue_depth_highwater: int = 0

    @property
    def requests_shed(self) -> int:
        """Total load-shedding actions (queue-full + breaker + deadline)."""
        return self.shed_queue_full + self.shed_breaker + self.shed_deadline

    @property
    def mean_latency_seconds(self) -> float:
        if self.requests_completed == 0:
            return 0.0
        return self.total_latency_seconds / self.requests_completed


class ManagedModel:
    """One protected model registered with the service runtime."""

    def __init__(
        self,
        name: str,
        model: Sequential,
        protector: MILRProtector,
        tracker: Optional[SLATracker] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        if not protector.initialized:
            raise ExperimentError(
                f"model {name!r} must have an initialized MILRProtector"
            )
        self.name = name
        self.model = model
        self.protector = protector
        self.tracker = tracker or SLATracker(name, model.parameter_bytes())
        #: Shared telemetry facade (owned by the registry); ``None`` keeps
        #: every hook in this class a no-op.
        self.telemetry = telemetry
        #: Serializes weight-coherent operations on this model.
        self.lock = threading.RLock()
        self._healthy = threading.Condition(self.lock)
        self._quarantined: set[int] = set()
        #: Every layer index that was ever quarantined (detection ground truth
        #: for soak harnesses; never cleared).
        self.ever_quarantined: set[int] = set()
        #: Quarantined layers with a recovery job already dispatched.
        self.dispatched: set[int] = set()
        #: Consecutive failed recovery attempts per quarantined layer.
        self.recovery_attempts: dict[int, int] = {}
        #: Layers released in degraded state (best-effort weights that still
        #: fail detection), keyed to the weight fingerprint that was accepted;
        #: a later fault changes the fingerprint and re-opens recovery.
        self.degraded: dict[int, bytes] = {}
        #: The stored (corrupted) bits a degraded layer had before its failed
        #: recovery -- preserved so a later re-opened repair can still reach
        #: the golden words by bit-flip search.
        self.degraded_originals: dict[int, "object"] = {}
        self.stats = RequestStats()
        #: Per-model circuit breaker (armed by ``ServiceConfig.breaker_enabled``
        #: at registration; ``None`` keeps admission breaker-free).
        self.breaker: Optional["object"] = None
        #: Bit-exact repairs per layer index (bumped by the scrubber).
        self.repair_counts: dict[int, int] = {}
        #: Per-layer repeat-offender tally: how many bit-exact repairs have
        #: corrected each specific memory cell ``(word index, bit position)``.
        self.offender_counts: dict[int, dict[tuple[int, int], int]] = {}
        #: Cells promoted to stuck-at hardware: layer index -> flat word
        #: index -> golden uint32 word, rewritten by the scrubber's remap pass.
        self.blacklisted_cells: dict[int, dict[int, int]] = {}
        #: Repairs performed by the remap pass (golden-word rewrites of
        #: blacklisted cells, without a full detection cycle).
        self.remap_repairs: int = 0
        assert protector.plan is not None
        self.parameterized_indices: list[int] = [
            plan.index for plan in protector.plan.parameterized_layers()
        ]

    @property
    def blacklisted_cell_count(self) -> int:
        """Total number of memory words blacklisted as stuck-at hardware."""
        with self.lock:
            return sum(len(cells) for cells in self.blacklisted_cells.values())

    # ------------------------------------------------------------------ #
    # Quarantine management
    # ------------------------------------------------------------------ #
    @property
    def quarantined(self) -> set[int]:
        """Snapshot of the quarantined layer indices."""
        with self.lock:
            return set(self._quarantined)

    def quarantine(self, layer_indices: Iterable[int]) -> None:
        """Mark layers as known-corrupted; serving pauses until they heal."""
        indices = set(layer_indices)
        if not indices:
            return
        with self.lock:
            if not self._quarantined:
                self.tracker.mark_unavailable()
            fresh = indices - self._quarantined
            self._quarantined.update(indices)
            self.ever_quarantined.update(indices)
            # Mirror the quarantine set onto the model's fusion blocklist:
            # the plan compiler re-reads it at every consumption decision, so
            # a layer quarantined mid-compile is never folded into a matmul
            # kernel or consumed into a fused block.
            self.model.fusion_blocklist.update(
                self.model.layers[index].name
                for index in indices
                if 0 <= index < len(self.model.layers)
            )
            telemetry = self.telemetry
            if telemetry is not None and telemetry.enabled and fresh:
                now = time.perf_counter()
                for index in sorted(fresh):
                    telemetry.quarantine_opened(self.name, index, now)
                telemetry.metrics.gauge(
                    "repro_quarantined_layers", model=self.name
                ).set(len(self._quarantined))

    def clear_quarantine(self, layer_indices: Iterable[int]) -> None:
        """Lift quarantine from recovered layers; wakes waiting workers.

        Lifting quarantine is the single chokepoint every weight-mutating
        maintenance path (repair, degraded release, re-opened repair) goes
        through, so it also runs the fingerprint-aware plan revalidation:
        cached forward plans whose compile-time blake2b weight fingerprints
        still match the live weights (bit-exact repair restored the golden
        bytes) are kept, all others are dropped and recompiled by the worker
        under this same per-model lock on the next batch.
        """
        indices = set(layer_indices)
        with self.lock:
            lifted = indices & self._quarantined
            self._quarantined.difference_update(indices)
            self.model.fusion_blocklist.difference_update(
                self.model.layers[index].name
                for index in indices
                if 0 <= index < len(self.model.layers)
            )
            if indices:
                self.stats.plan_invalidations += self.model.revalidate_plans()
            telemetry = self.telemetry
            if telemetry is not None and telemetry.enabled and lifted:
                now = time.perf_counter()
                for index in sorted(lifted):
                    telemetry.quarantine_closed(self.name, index, now)
                telemetry.metrics.gauge(
                    "repro_quarantined_layers", model=self.name
                ).set(len(self._quarantined))
            if not self._quarantined:
                self.tracker.mark_available()
                self._healthy.notify_all()

    def is_healthy(self) -> bool:
        with self.lock:
            return not self._quarantined

    def wait_healthy(self, timeout: Optional[float] = None) -> bool:
        """Block until the quarantine set is empty (or the timeout expires).

        Must be called while holding :attr:`lock`; waiting releases the lock
        so the scrubber's recovery job can heal the model.
        """
        return self._healthy.wait_for(lambda: not self._quarantined, timeout=timeout)


class ModelRegistry:
    """Name-keyed collection of managed models."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        #: One telemetry facade per registry, shared by every managed model
        #: and by the engine/scrubber/driver built on top of this registry.
        self.telemetry = Telemetry(self.config.telemetry)
        self._lock = threading.Lock()
        self._models: dict[str, ManagedModel] = {}

    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        model: Sequential,
        milr_config: Optional[MILRConfig] = None,
        protector: Optional[MILRProtector] = None,
    ) -> ManagedModel:
        """Wrap a built model (initializing MILR protection if needed).

        When the registry initializes the protector itself,
        ``ServiceConfig.store_conv_crc`` upgrades the MILR config so every
        convolution layer stores 2-D CRC codes (self-contained online repair).
        An already-initialized ``protector`` is taken as-is.
        """
        if protector is None:
            if self.config.store_conv_crc:
                milr_config = dataclass_replace(
                    milr_config or MILRConfig(), always_store_conv_crc=True
                )
            protector = MILRProtector(model, milr_config)
        if not protector.initialized:
            protector.initialize()
        # Variable-occupancy serving compiles one forward plan per batch size
        # (1..max_batch, plus evaluation chunk sizes) and, with fused serving
        # on, up to two plans per size (fused + the bit-exact certification
        # reference): make sure the model's plan LRU can hold them all so the
        # hot path never thrashes.
        plans_needed = self.config.max_batch + 2
        if self.config.fused_forward:
            plans_needed *= 2
        model.plan_cache_size = max(model.plan_cache_size, plans_needed)
        model.fusion_ulp_bound = self.config.fusion_ulp_bound
        entry = ManagedModel(name, model, protector, telemetry=self.telemetry)
        if self.config.breaker_enabled:
            from repro.service.breaker import CircuitBreaker

            # Seeded per model name so a scenario's breaker jitter sequence
            # is reproducible regardless of registration order.
            entry.breaker = CircuitBreaker(
                name,
                self.config,
                seed=zlib.crc32(name.encode("utf-8")),
                telemetry=self.telemetry,
            )
        with self._lock:
            if name in self._models:
                raise ExperimentError(f"model {name!r} is already registered")
            self._models[name] = entry
        return entry

    def load(
        self,
        network_name: str,
        name: Optional[str] = None,
        trained: bool = False,
        milr_config: Optional[MILRConfig] = None,
        **train_kwargs,
    ) -> ManagedModel:
        """Build (or load from the weight cache) a zoo network and register it.

        With ``trained=True`` the weights come from
        :func:`~repro.experiments.model_provider.get_trained_network` (training
        on a cache miss); otherwise the freshly initialized network is used,
        which is sufficient for protection/soak mechanics.
        """
        from repro.zoo import network_table

        specs = network_table()
        if network_name not in specs:
            raise ExperimentError(
                f"unknown network {network_name!r}; available: {sorted(specs)}"
            )
        if trained:
            from repro.experiments.model_provider import get_trained_network

            model = get_trained_network(network_name, **train_kwargs).model
        else:
            model = specs[network_name].builder()
        return self.register(name or network_name, model, milr_config=milr_config)

    # ------------------------------------------------------------------ #
    def get(self, name: str) -> ManagedModel:
        with self._lock:
            try:
                return self._models[name]
            except KeyError as exc:
                raise ExperimentError(f"no model registered as {name!r}") from exc

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._models)

    def unregister(self, name: str) -> None:
        with self._lock:
            self._models.pop(name, None)

    def __iter__(self) -> Iterator[ManagedModel]:
        with self._lock:
            entries = list(self._models.values())
        return iter(entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models
