"""Live availability / minimum-accuracy accounting for the service runtime.

The tracker collects what the paper's availability model (Sec. V-E, Eq. 6)
treats as inputs -- detection time ``Td``, recovery time ``Tr`` and the error
arrival rate -- from the *running* service instead of offline experiments, and
feeds them back into :class:`~repro.analysis.availability.AvailabilityModel`.

Two availability figures are reported:

* ``observed_availability`` -- the raw duty cycle of this (possibly
  fault-accelerated) run: ``1 - unavailable_time / elapsed``, where
  unavailable time is detection-slice time plus quarantine downtime.
* ``modeled availability`` -- the steady-state Fig. 12 counterpart: measured
  ``Td``/``Tr`` combined with a realistic error-arrival interval (by default
  the DRAM FIT-rate interval for the model's size) at the configured scrub
  period.  Soak scenarios compress years of error arrivals into seconds, so
  this is the number comparable to the paper's availability axis.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.analysis.availability import AvailabilityModel, dram_error_interval_seconds

__all__ = ["SLAReport", "SLATracker"]


@dataclass(frozen=True)
class SLAReport:
    """Snapshot of a model's service-level indicators."""

    model_name: str
    elapsed_seconds: float
    #: Steady-state availability at the scrub period (Fig. 12 counterpart).
    availability: float
    #: Minimum normalized accuracy implied by the availability model.
    minimum_accuracy: float
    #: Raw duty cycle of this run (1 - unavailable / elapsed).
    observed_availability: float
    unavailable_seconds: float
    detections: int
    mean_detection_seconds: float
    recoveries: int
    mean_recovery_seconds: float
    max_recovery_seconds: float
    error_events_detected: int
    layers_recovered: int
    layers_recovered_bit_exact: int
    #: Layers released from quarantine with best-effort (non-verified) weights.
    layers_degraded: int
    error_interval_seconds: float
    scrub_period_seconds: float

    def as_row(self) -> dict[str, object]:
        """Row form used by the CLI tables."""
        return {
            "model": self.model_name,
            "availability": self.availability,
            "min_accuracy": self.minimum_accuracy,
            "observed_avail": self.observed_availability,
            "detections": self.detections,
            "mean_detect_s": self.mean_detection_seconds,
            "recoveries": self.recoveries,
            "mean_recover_s": self.mean_recovery_seconds,
            "errors_detected": self.error_events_detected,
            "bit_exact": self.layers_recovered_bit_exact,
        }


@dataclass
class _Samples:
    count: int = 0
    total: float = 0.0
    maximum: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class SLATracker:
    """Thread-safe collector of detection/recovery timings and downtime.

    One tracker serves one managed model.  Detection slices and quarantine
    windows both count as unavailable time, mirroring the paper's
    ``a = 1 - (Td * I + Tr) / tau`` accounting where maintenance work displaces
    serving.
    """

    def __init__(self, model_name: str, model_bytes: int, clock=time.perf_counter):
        self.model_name = model_name
        self.model_bytes = int(model_bytes)
        self._clock = clock
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None
        self._detections = _Samples()
        self._recoveries = _Samples()
        self._unavailable_seconds = 0.0
        self._quarantine_started: Optional[float] = None
        self._error_events_detected = 0
        self._layers_recovered = 0
        self._layers_recovered_bit_exact = 0
        self._layers_degraded = 0

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Begin the observation window (idempotent)."""
        with self._lock:
            if self._started_at is None:
                self._started_at = self._clock()

    def elapsed_seconds(self) -> float:
        with self._lock:
            if self._started_at is None:
                return 0.0
            return self._clock() - self._started_at

    # ------------------------------------------------------------------ #
    def record_detection(self, seconds: float) -> None:
        """Record one detection pass (or one full set of detection slices).

        Detection time only counts as unavailable time when no quarantine
        window is open -- an open window already covers it wall-clock, and
        adding both would double-count.
        """
        with self._lock:
            self._detections.add(seconds)
            if self._quarantine_started is None:
                self._unavailable_seconds += seconds

    def record_errors_detected(self, layer_count: int) -> None:
        with self._lock:
            self._error_events_detected += layer_count

    def record_recovery(self, seconds: float, layers: int, bit_exact_layers: int) -> None:
        with self._lock:
            self._recoveries.add(seconds)
            self._layers_recovered += layers
            self._layers_recovered_bit_exact += bit_exact_layers

    def record_degraded(self, layer_count: int) -> None:
        with self._lock:
            self._layers_degraded += layer_count

    def mark_unavailable(self) -> None:
        """A quarantine window opened (no-op if one is already open)."""
        with self._lock:
            if self._quarantine_started is None:
                self._quarantine_started = self._clock()

    def mark_available(self) -> None:
        """The open quarantine window closed; its duration becomes downtime."""
        with self._lock:
            if self._quarantine_started is not None:
                self._unavailable_seconds += self._clock() - self._quarantine_started
                self._quarantine_started = None

    # ------------------------------------------------------------------ #
    def observed_availability(self) -> float:
        elapsed = self.elapsed_seconds()
        if elapsed <= 0:
            return 1.0
        with self._lock:
            unavailable = self._unavailable_seconds
            if self._quarantine_started is not None:
                unavailable += self._clock() - self._quarantine_started
        return max(0.0, min(1.0, 1.0 - unavailable / elapsed))

    def availability_model(
        self,
        scrub_period_seconds: float,
        error_interval_seconds: Optional[float] = None,
        yearly_accuracy_floor: float = 0.5,
    ) -> AvailabilityModel:
        """Availability model from the measured ``Td``/``Tr``.

        The maintenance period of the paper's model is the error interval
        itself: between two errors the scrubber runs ``interval / period``
        detections and (on detection) one recovery.  ``error_interval_seconds``
        defaults to the DRAM FIT-rate interval for this model's size, which is
        the deployment-realistic arrival rate even when the current run used a
        fault-accelerated driver.
        """
        if error_interval_seconds is None:
            error_interval_seconds = dram_error_interval_seconds(max(self.model_bytes, 1))
        detections_per_period = max(
            1, int(round(error_interval_seconds / scrub_period_seconds))
        )
        with self._lock:
            detection_samples = [self._detections.mean] if self._detections.count else []
            recovery_samples = [self._recoveries.mean] if self._recoveries.count else []
        return AvailabilityModel.from_observations(
            detection_samples,
            recovery_samples,
            error_interval_seconds=error_interval_seconds,
            detections_per_period=detections_per_period,
            yearly_accuracy_floor=yearly_accuracy_floor,
        )

    def report(
        self,
        scrub_period_seconds: float,
        error_interval_seconds: Optional[float] = None,
        yearly_accuracy_floor: float = 0.5,
    ) -> SLAReport:
        """Produce the live SLA snapshot (see module docstring)."""
        if error_interval_seconds is None:
            error_interval_seconds = dram_error_interval_seconds(max(self.model_bytes, 1))
        model = self.availability_model(
            scrub_period_seconds,
            error_interval_seconds=error_interval_seconds,
            yearly_accuracy_floor=yearly_accuracy_floor,
        )
        overhead = model.maintenance_overhead_seconds()
        if error_interval_seconds > overhead:
            availability = model.evaluate_period(error_interval_seconds).availability
        else:
            # Maintenance cannot keep up with the error arrival rate.
            availability = 0.0
        # An error goes unrecovered for at most ~one scrub period before the
        # scrubber heals it, so the worst-case accumulated error count (the
        # ``n`` of the paper's minimum-accuracy curve) is period / interval.
        minimum_accuracy = model.accuracy_after_errors(
            scrub_period_seconds / error_interval_seconds
        )
        elapsed = self.elapsed_seconds()
        observed = self.observed_availability()
        with self._lock:
            return SLAReport(
                model_name=self.model_name,
                elapsed_seconds=elapsed,
                availability=availability,
                minimum_accuracy=minimum_accuracy,
                observed_availability=observed,
                unavailable_seconds=self._unavailable_seconds,
                detections=self._detections.count,
                mean_detection_seconds=self._detections.mean,
                recoveries=self._recoveries.count,
                mean_recovery_seconds=self._recoveries.mean,
                max_recovery_seconds=self._recoveries.maximum,
                error_events_detected=self._error_events_detected,
                layers_recovered=self._layers_recovered,
                layers_recovered_bit_exact=self._layers_recovered_bit_exact,
                layers_degraded=self._layers_degraded,
                error_interval_seconds=error_interval_seconds,
                scrub_period_seconds=scrub_period_seconds,
            )
