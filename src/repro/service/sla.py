"""Live availability / minimum-accuracy accounting for the service runtime.

The tracker collects what the paper's availability model (Sec. V-E, Eq. 6)
treats as inputs -- detection time ``Td``, recovery time ``Tr`` and the error
arrival rate -- from the *running* service instead of offline experiments, and
feeds them back into :class:`~repro.analysis.availability.AvailabilityModel`.

Two availability figures are reported:

* ``observed_availability`` -- the raw duty cycle of this (possibly
  fault-accelerated) run: ``1 - unavailable_time / elapsed``, where
  unavailable time is detection-slice time plus quarantine downtime.
* ``modeled availability`` -- the steady-state Fig. 12 counterpart: measured
  ``Td``/``Tr`` combined with a realistic error-arrival interval (by default
  the DRAM FIT-rate interval for the model's size) at the configured scrub
  period.  Soak scenarios compress years of error arrivals into seconds, so
  this is the number comparable to the paper's availability axis.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.availability import AvailabilityModel, dram_error_interval_seconds

__all__ = ["SLAReport", "SLOReport", "SLATracker"]

#: Rolling latency-sample window the SLO percentiles are computed over.
_LATENCY_WINDOW = 4096

#: Shed reasons the tracker accounts (engine admission + deadline drops).
SHED_REASONS = ("queue_full", "breaker_open", "deadline")


@dataclass(frozen=True)
class SLAReport:
    """Snapshot of a model's service-level indicators."""

    model_name: str
    elapsed_seconds: float
    #: Steady-state availability at the scrub period (Fig. 12 counterpart).
    availability: float
    #: Minimum normalized accuracy implied by the availability model.
    minimum_accuracy: float
    #: Raw duty cycle of this run (1 - unavailable / elapsed).
    observed_availability: float
    unavailable_seconds: float
    detections: int
    mean_detection_seconds: float
    recoveries: int
    mean_recovery_seconds: float
    max_recovery_seconds: float
    error_events_detected: int
    layers_recovered: int
    layers_recovered_bit_exact: int
    #: Layers released from quarantine with best-effort (non-verified) weights.
    layers_degraded: int
    error_interval_seconds: float
    scrub_period_seconds: float

    def as_row(self) -> dict[str, object]:
        """Row form used by the CLI tables."""
        return {
            "model": self.model_name,
            "availability": self.availability,
            "min_accuracy": self.minimum_accuracy,
            "observed_avail": self.observed_availability,
            "detections": self.detections,
            "mean_detect_s": self.mean_detection_seconds,
            "recoveries": self.recoveries,
            "mean_recover_s": self.mean_recovery_seconds,
            "errors_detected": self.error_events_detected,
            "bit_exact": self.layers_recovered_bit_exact,
        }


@dataclass(frozen=True)
class SLOReport:
    """Service-level objective snapshot of one model's request outcomes.

    Extends the maintenance-centric :class:`SLAReport` with the request-level
    split the chaos harness gates on: what was admitted, what was shed (and
    why), what was served while the model carried degraded layers, and how
    much of the error budget the run burned.

    Accounting contract: ``admitted`` counts requests that entered the
    queue.  Deadline sheds are *admitted* requests dropped before compute --
    they count in ``shed_total`` but not as service failures, so
    ``admitted_availability = served / (served + failed)`` judges only
    requests the service actually attempted.  ``error_budget_burn`` is the
    fraction of the allowed failure budget consumed:
    ``(1 - admitted_availability) / (1 - availability_target)`` (1.0 = the
    budget is exactly spent, > 1 = the SLO is violated).
    """

    model_name: str
    availability_target: float
    admitted: int
    served_healthy: int
    served_degraded: int
    failed: int
    #: Admitted requests still in flight when the report was taken.
    pending: int
    shed_queue_full: int
    shed_breaker: int
    shed_deadline: int
    admitted_availability: float
    error_budget_burn: float
    p50_latency_seconds: float
    p99_latency_seconds: float
    sla: SLAReport

    @property
    def served(self) -> int:
        return self.served_healthy + self.served_degraded

    @property
    def shed_total(self) -> int:
        return self.shed_queue_full + self.shed_breaker + self.shed_deadline

    @property
    def meets_target(self) -> bool:
        return self.admitted_availability >= self.availability_target

    def as_row(self) -> dict[str, object]:
        return {
            "model": self.model_name,
            "admitted": self.admitted,
            "served_healthy": self.served_healthy,
            "served_degraded": self.served_degraded,
            "failed": self.failed,
            "shed": self.shed_total,
            "admitted_avail": self.admitted_availability,
            "budget_burn": self.error_budget_burn,
            "p50_ms": self.p50_latency_seconds * 1e3,
            "p99_ms": self.p99_latency_seconds * 1e3,
        }

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable machine-readable form (nested SLA flattened)."""
        payload = asdict(self)
        payload["served"] = self.served
        payload["shed_total"] = self.shed_total
        payload["meets_target"] = self.meets_target
        return payload


@dataclass
class _Samples:
    count: int = 0
    total: float = 0.0
    maximum: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class SLATracker:
    """Thread-safe collector of detection/recovery timings and downtime.

    One tracker serves one managed model.  Detection slices and quarantine
    windows both count as unavailable time, mirroring the paper's
    ``a = 1 - (Td * I + Tr) / tau`` accounting where maintenance work displaces
    serving.
    """

    def __init__(self, model_name: str, model_bytes: int, clock=time.perf_counter):
        self.model_name = model_name
        self.model_bytes = int(model_bytes)
        self._clock = clock
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None
        self._detections = _Samples()
        self._recoveries = _Samples()
        self._unavailable_seconds = 0.0
        self._quarantine_started: Optional[float] = None
        self._error_events_detected = 0
        self._layers_recovered = 0
        self._layers_recovered_bit_exact = 0
        self._layers_degraded = 0
        # Request-outcome accounting (the SLO side of the tracker).
        self._admitted = 0
        self._served_healthy = 0
        self._served_degraded = 0
        self._request_failures = 0
        self._shed: dict[str, int] = {reason: 0 for reason in SHED_REASONS}
        self._latency_window: deque = deque(maxlen=_LATENCY_WINDOW)

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Begin the observation window (idempotent)."""
        with self._lock:
            if self._started_at is None:
                self._started_at = self._clock()

    def elapsed_seconds(self) -> float:
        with self._lock:
            if self._started_at is None:
                return 0.0
            return self._clock() - self._started_at

    # ------------------------------------------------------------------ #
    def record_detection(self, seconds: float) -> None:
        """Record one detection pass (or one full set of detection slices).

        Detection time only counts as unavailable time when no quarantine
        window is open -- an open window already covers it wall-clock, and
        adding both would double-count.
        """
        with self._lock:
            self._detections.add(seconds)
            if self._quarantine_started is None:
                self._unavailable_seconds += seconds

    def record_errors_detected(self, layer_count: int) -> None:
        with self._lock:
            self._error_events_detected += layer_count

    def record_recovery(self, seconds: float, layers: int, bit_exact_layers: int) -> None:
        with self._lock:
            self._recoveries.add(seconds)
            self._layers_recovered += layers
            self._layers_recovered_bit_exact += bit_exact_layers

    def record_degraded(self, layer_count: int) -> None:
        with self._lock:
            self._layers_degraded += layer_count

    # ------------------------------------------------------------------ #
    # Request-outcome accounting (SLO)
    # ------------------------------------------------------------------ #
    def record_admitted(self, count: int = 1) -> None:
        """``count`` requests passed admission and entered the queue."""
        with self._lock:
            self._admitted += count

    def record_shed(self, reason: str, count: int = 1) -> None:
        """``count`` requests were shed (``reason`` in :data:`SHED_REASONS`)."""
        with self._lock:
            self._shed[reason] = self._shed.get(reason, 0) + count

    def record_served(
        self, count: int, degraded: bool, latencies: Optional[Sequence[float]] = None
    ) -> None:
        """``count`` admitted requests completed (healthy or degraded-serving)."""
        with self._lock:
            if degraded:
                self._served_degraded += count
            else:
                self._served_healthy += count
            if latencies:
                self._latency_window.extend(latencies)

    def record_request_failures(self, count: int = 1) -> None:
        with self._lock:
            self._request_failures += count

    def mark_unavailable(self) -> None:
        """A quarantine window opened (no-op if one is already open)."""
        with self._lock:
            if self._quarantine_started is None:
                self._quarantine_started = self._clock()

    def mark_available(self) -> None:
        """The open quarantine window closed; its duration becomes downtime."""
        with self._lock:
            if self._quarantine_started is not None:
                self._unavailable_seconds += self._clock() - self._quarantine_started
                self._quarantine_started = None

    # ------------------------------------------------------------------ #
    def observed_availability(self) -> float:
        elapsed = self.elapsed_seconds()
        if elapsed <= 0:
            return 1.0
        with self._lock:
            unavailable = self._unavailable_seconds
            if self._quarantine_started is not None:
                unavailable += self._clock() - self._quarantine_started
        return max(0.0, min(1.0, 1.0 - unavailable / elapsed))

    def availability_model(
        self,
        scrub_period_seconds: float,
        error_interval_seconds: Optional[float] = None,
        yearly_accuracy_floor: float = 0.5,
    ) -> AvailabilityModel:
        """Availability model from the measured ``Td``/``Tr``.

        The maintenance period of the paper's model is the error interval
        itself: between two errors the scrubber runs ``interval / period``
        detections and (on detection) one recovery.  ``error_interval_seconds``
        defaults to the DRAM FIT-rate interval for this model's size, which is
        the deployment-realistic arrival rate even when the current run used a
        fault-accelerated driver.
        """
        if error_interval_seconds is None:
            error_interval_seconds = dram_error_interval_seconds(max(self.model_bytes, 1))
        detections_per_period = max(
            1, int(round(error_interval_seconds / scrub_period_seconds))
        )
        with self._lock:
            detection_samples = [self._detections.mean] if self._detections.count else []
            recovery_samples = [self._recoveries.mean] if self._recoveries.count else []
        return AvailabilityModel.from_observations(
            detection_samples,
            recovery_samples,
            error_interval_seconds=error_interval_seconds,
            detections_per_period=detections_per_period,
            yearly_accuracy_floor=yearly_accuracy_floor,
        )

    def report(
        self,
        scrub_period_seconds: float,
        error_interval_seconds: Optional[float] = None,
        yearly_accuracy_floor: float = 0.5,
    ) -> SLAReport:
        """Produce the live SLA snapshot (see module docstring)."""
        if error_interval_seconds is None:
            error_interval_seconds = dram_error_interval_seconds(max(self.model_bytes, 1))
        model = self.availability_model(
            scrub_period_seconds,
            error_interval_seconds=error_interval_seconds,
            yearly_accuracy_floor=yearly_accuracy_floor,
        )
        overhead = model.maintenance_overhead_seconds()
        if error_interval_seconds > overhead:
            availability = model.evaluate_period(error_interval_seconds).availability
        else:
            # Maintenance cannot keep up with the error arrival rate.
            availability = 0.0
        # An error goes unrecovered for at most ~one scrub period before the
        # scrubber heals it, so the worst-case accumulated error count (the
        # ``n`` of the paper's minimum-accuracy curve) is period / interval.
        minimum_accuracy = model.accuracy_after_errors(
            scrub_period_seconds / error_interval_seconds
        )
        elapsed = self.elapsed_seconds()
        observed = self.observed_availability()
        with self._lock:
            return SLAReport(
                model_name=self.model_name,
                elapsed_seconds=elapsed,
                availability=availability,
                minimum_accuracy=minimum_accuracy,
                observed_availability=observed,
                unavailable_seconds=self._unavailable_seconds,
                detections=self._detections.count,
                mean_detection_seconds=self._detections.mean,
                recoveries=self._recoveries.count,
                mean_recovery_seconds=self._recoveries.mean,
                max_recovery_seconds=self._recoveries.maximum,
                error_events_detected=self._error_events_detected,
                layers_recovered=self._layers_recovered,
                layers_recovered_bit_exact=self._layers_recovered_bit_exact,
                layers_degraded=self._layers_degraded,
                error_interval_seconds=error_interval_seconds,
                scrub_period_seconds=scrub_period_seconds,
            )

    def slo_report(
        self,
        scrub_period_seconds: float,
        availability_target: float = 0.99,
        error_interval_seconds: Optional[float] = None,
        yearly_accuracy_floor: float = 0.5,
    ) -> SLOReport:
        """Produce the request-level SLO snapshot (see :class:`SLOReport`)."""
        sla = self.report(
            scrub_period_seconds,
            error_interval_seconds=error_interval_seconds,
            yearly_accuracy_floor=yearly_accuracy_floor,
        )
        with self._lock:
            admitted = self._admitted
            served_healthy = self._served_healthy
            served_degraded = self._served_degraded
            failed = self._request_failures
            shed_queue = self._shed.get("queue_full", 0)
            shed_breaker = self._shed.get("breaker_open", 0)
            shed_deadline = self._shed.get("deadline", 0)
            window = list(self._latency_window)
        served = served_healthy + served_degraded
        attempted = served + failed
        availability = served / attempted if attempted else 1.0
        budget = 1.0 - availability_target
        burn = (1.0 - availability) / budget if budget > 0 else 0.0
        if window:
            sample = np.asarray(window)
            p50 = float(np.percentile(sample, 50))
            p99 = float(np.percentile(sample, 99))
        else:
            p50 = p99 = 0.0
        return SLOReport(
            model_name=self.model_name,
            availability_target=availability_target,
            admitted=admitted,
            served_healthy=served_healthy,
            served_degraded=served_degraded,
            failed=failed,
            pending=max(0, admitted - served - failed - shed_deadline),
            shed_queue_full=shed_queue,
            shed_breaker=shed_breaker,
            shed_deadline=shed_deadline,
            admitted_availability=availability,
            error_budget_burn=burn,
            p50_latency_seconds=p50,
            p99_latency_seconds=p99,
            sla=sla,
        )
