"""Self-healing inference service facade and the soak harness.

:class:`SelfHealingService` wires the registry, the batching inference
engine and the background scrubber together behind a small lifecycle API::

    service = SelfHealingService()
    service.load_model("mnist_reduced")
    service.start()
    request = service.submit("mnist_reduced", sample)
    probabilities = request.result(timeout=1.0)
    ...
    service.stop()

:func:`run_soak` is the headless fault-pressure scenario shared by the
``repro soak`` CLI command, the end-to-end tests and the example script: it
serves continuous synthetic traffic while a Poisson driver flips bits in the
live weights, then drains, verifies bit-exact restoration against a golden
snapshot, and reports the live availability figures (the paper's Fig. 12
counterpart measured instead of assumed).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.core.config import MILRConfig
from repro.exceptions import ExperimentError
from repro.nn.model import Sequential
from repro.service.config import ServiceConfig
from repro.service.engine import InferenceEngine, InferenceRequest
from repro.service.pressure import FaultEvent, FaultPressureDriver
from repro.service.registry import ManagedModel, ModelRegistry
from repro.service.scrubber import Scrubber
from repro.service.sla import SLAReport
from repro.types import FLOAT_DTYPE

__all__ = ["SelfHealingService", "SoakResult", "run_soak", "latency_percentile"]


class SelfHealingService:
    """Protected models + batching inference + background scrubbing."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.registry = ModelRegistry(self.config)
        self.engine = InferenceEngine(self.registry, self.config)
        self.scrubber = Scrubber(self.registry, self.config)
        self._started = False

    @property
    def telemetry(self):
        """The registry-owned :class:`~repro.obs.telemetry.Telemetry` facade."""
        return self.registry.telemetry

    # ------------------------------------------------------------------ #
    # Model management
    # ------------------------------------------------------------------ #
    def add_model(
        self,
        name: str,
        model: Sequential,
        milr_config: Optional[MILRConfig] = None,
    ) -> ManagedModel:
        """Register (and protect) an already-built model."""
        entry = self.registry.register(name, model, milr_config=milr_config)
        if self._started:
            self.engine.add_worker(entry)
        return entry

    def load_model(
        self,
        network_name: str,
        name: Optional[str] = None,
        trained: bool = False,
        milr_config: Optional[MILRConfig] = None,
        **train_kwargs,
    ) -> ManagedModel:
        """Load a zoo network (optionally trained) into the registry."""
        entry = self.registry.load(
            network_name,
            name=name,
            trained=trained,
            milr_config=milr_config,
            **train_kwargs,
        )
        if self._started:
            self.engine.add_worker(entry)
        return entry

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        return self._started

    def start(self, scrub: bool = True) -> None:
        """Start serving (and, unless disabled, background scrubbing)."""
        if self._started:
            return
        self.engine.start()
        if scrub:
            self.scrubber.start()
        self._started = True

    def stop(self) -> None:
        if not self._started:
            return
        self.scrubber.stop()
        self.engine.stop()
        self._started = False

    def __enter__(self) -> "SelfHealingService":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def submit(self, model_name: str, sample: np.ndarray) -> InferenceRequest:
        """Queue one sample for prediction."""
        return self.engine.submit(model_name, sample)

    def predict(
        self, model_name: str, samples: np.ndarray, timeout: float = 30.0
    ) -> np.ndarray:
        """Synchronous convenience: submit every row and gather the results."""
        requests = [self.submit(model_name, sample) for sample in samples]
        return np.stack([request.result(timeout=timeout) for request in requests])

    # ------------------------------------------------------------------ #
    # Maintenance and reporting
    # ------------------------------------------------------------------ #
    def scrub_now(self, model_name: Optional[str] = None) -> None:
        """Run one synchronous detection sweep (all models by default)."""
        if model_name is None:
            self.scrubber.scrub_all()
        else:
            self.scrubber.scrub_model(self.registry.get(model_name))

    def sla_report(
        self,
        model_name: str,
        scrub_period_seconds: Optional[float] = None,
        error_interval_seconds: Optional[float] = None,
    ) -> SLAReport:
        entry = self.registry.get(model_name)
        return entry.tracker.report(
            scrub_period_seconds or self.config.scrub_period_seconds,
            error_interval_seconds=error_interval_seconds,
            yearly_accuracy_floor=self.config.yearly_accuracy_floor,
        )

    def sla_reports(self) -> list[SLAReport]:
        return [self.sla_report(name) for name in self.registry.names()]


# ---------------------------------------------------------------------- #
# Soak harness
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SoakResult:
    """Outcome of one :func:`run_soak` scenario."""

    network: str
    duration_seconds: float
    fault_events: tuple[FaultEvent, ...]
    #: Layers the driver actually corrupted (ground truth).
    injected_layers: frozenset[int]
    #: Layers the scrubber ever quarantined (detection coverage).
    detected_layers: frozenset[int]
    requests_completed: int
    requests_failed: int
    served_during_quarantine: int
    #: Forward plans invalidated while serving (stale-epoch recompiles after
    #: injections/repairs plus fingerprint-sweep drops at quarantine lift).
    plan_invalidations: int
    #: Padding samples computed and discarded by the engine (zero unless
    #: ``ServiceConfig.fixed_batch_shape`` re-enables batch padding).
    samples_padded: int
    throughput_rps: float
    mean_latency_seconds: float
    p50_latency_seconds: float
    p99_latency_seconds: float
    #: Whether every parameterized layer ended bit-identical to its golden
    #: pre-soak weights.
    bit_exact: bool
    #: Whether the post-soak drain reached two consecutive clean detections.
    converged: bool
    #: Dirty plan scratch buffers caught (and healed) by the per-serve canary
    #: -- the only detector that sees activation/scratch corruption.
    scratch_detections: int
    #: Samples served through a ULP-certified fused plan.
    fused_served: int
    #: Fused batches that fell back to the bit-exact plan (certification
    #: failed or lapsed at that batch size).
    fused_fallbacks: int
    #: Samples served through a fused plan *without* a passing certificate.
    #: Invariant: stays zero -- fused serving always re-certifies or falls
    #: back, no matter what the fault driver does to the weights.
    uncertified_fused_served: int
    #: Blacklisted stuck-at cells healed by the scrubber's remap pass.
    remap_repairs: int
    #: Memory cells blacklisted as repeat offenders during the soak.
    blacklisted_cells: int
    sla: SLAReport
    #: Exceptions raised by the background traffic thread, as
    #: ``"TypeName: message"`` strings.  Empty on a clean run -- a submission
    #: crash used to die silently inside the daemon thread and read as a
    #: mysteriously idle soak.
    errors: tuple = ()
    #: Correlated fault-lifecycle chain summaries
    #: (:class:`~repro.obs.lifecycle.FaultChainSummary`) exported by the
    #: telemetry layer; empty when telemetry is disabled.
    fault_chains: tuple = ()

    @property
    def all_errors_detected(self) -> bool:
        """Every corrupted layer was eventually flagged by the scrubber."""
        return self.injected_layers <= self.detected_layers

    def as_row(self) -> dict[str, object]:
        return {
            "network": self.network,
            "duration_s": self.duration_seconds,
            "faults": len(self.fault_events),
            "detected": self.all_errors_detected,
            "bit_exact": self.bit_exact,
            "requests": self.requests_completed,
            "rps": self.throughput_rps,
            "plan_invalidations": self.plan_invalidations,
            "p99_ms": self.p99_latency_seconds * 1e3,
            "scratch_detections": self.scratch_detections,
            "fused_served": self.fused_served,
            "remap_repairs": self.remap_repairs,
            "blacklisted_cells": self.blacklisted_cells,
            "availability": self.sla.availability,
            "min_accuracy": self.sla.minimum_accuracy,
            "observed_avail": self.sla.observed_availability,
        }


def latency_percentile(latencies: "list[float]", q: float) -> float:
    """Percentile ``q`` (0-100) of a latency sample list.

    Edge cases are explicit rather than delegated: an empty sample has no
    percentiles and returns 0.0 (so reports of an idle service read as zero
    latency, not NaN), and a single sample is every percentile of itself.
    Larger samples use numpy's default linear interpolation between the two
    nearest order statistics -- e.g. the p50 of ``[1.0, 2.0]`` is 1.5, not
    either endpoint.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not latencies:
        return 0.0
    if len(latencies) == 1:
        return float(latencies[0])
    return float(np.percentile(np.asarray(latencies), q))


def run_soak(
    network: str = "mnist_reduced",
    duration_seconds: float = 3.0,
    mean_fault_interval_seconds: float = 0.15,
    max_fault_events: Optional[int] = None,
    scrub_period_seconds: float = 0.1,
    request_interval_seconds: float = 0.002,
    trained: bool = False,
    seed: int = 0,
    flips_per_event: int = 1,
    service_config: Optional[ServiceConfig] = None,
    drain_timeout_seconds: float = 60.0,
    milr_config: Optional[MILRConfig] = None,
    fault_layer_indices: Optional[Sequence[int]] = None,
    fault_models: Optional[object] = None,
    reassert_interval_seconds: float = 0.2,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
) -> SoakResult:
    """Serve continuous traffic under Poisson bit-flip pressure, then drain.

    The scenario: one protected model serves synthetic single-sample traffic
    through the batching engine while a :class:`FaultPressureDriver` corrupts
    live weights and the scrubber detects/quarantines/recovers in the
    background.  After ``duration_seconds`` (or ``max_fault_events``) the
    driver stops, the service drains until two consecutive full detection
    passes come back clean, and the final weights are compared bit-for-bit
    against a golden pre-soak snapshot.

    ``fault_models`` switches the driver to mixed-model zoo pressure: a
    mapping of fault-model name to arrival weight (or a plain sequence of
    names for equal weights); persistent models re-assert their standing
    faults every ``reassert_interval_seconds`` while the driver runs.

    ``trace_out`` writes the retained telemetry spans (fault-lifecycle
    chains, serve batches, scrub slices) to a JSONL file when the soak ends;
    ``metrics_out`` appends one metrics snapshot line roughly every second
    while the soak runs (so ``repro telemetry`` can watch it live) plus a
    final snapshot.  Both are no-ops with telemetry disabled.
    """
    if duration_seconds <= 0:
        raise ExperimentError("duration_seconds must be positive")
    config = service_config or ServiceConfig()
    config = replace(config, scrub_period_seconds=scrub_period_seconds)
    service = SelfHealingService(config)
    entry = service.load_model(network, trained=trained, milr_config=milr_config)

    golden = {
        index: entry.model.layers[index].get_weights()
        for index in entry.parameterized_indices
    }

    # Synthetic request traffic: a small pool of PRNG samples reused round-robin.
    rng = np.random.default_rng(seed)
    pool = rng.random((32,) + entry.model.input_shape).astype(FLOAT_DTYPE)
    requests: list[InferenceRequest] = []
    traffic_stop = threading.Event()
    traffic_errors: list[str] = []

    def _traffic() -> None:
        cursor = 0
        while not traffic_stop.is_set():
            try:
                requests.append(service.submit(entry.name, pool[cursor % len(pool)]))
            except ExperimentError:
                # Engine stopped under us (normal shutdown race): not an error.
                return
            except BaseException as error:  # noqa: BLE001 - surfaced in result
                traffic_errors.append(f"{type(error).__name__}: {error}")
                return
            cursor += 1
            traffic_stop.wait(request_interval_seconds)

    driver = FaultPressureDriver(
        entry,
        mean_interval_seconds=mean_fault_interval_seconds,
        seed=seed,
        flips_per_event=flips_per_event,
        max_events=max_fault_events,
        layer_indices=fault_layer_indices,
        fault_models=fault_models,
        reassert_interval_seconds=reassert_interval_seconds,
        telemetry=service.telemetry,
    )

    started = time.perf_counter()
    service.start()
    traffic_thread = threading.Thread(target=_traffic, name="soak-traffic", daemon=True)
    traffic_thread.start()
    driver.start()

    deadline = started + duration_seconds
    next_snapshot = started + 1.0
    while time.perf_counter() < deadline:
        if max_fault_events is not None and driver.exhausted:
            break
        if metrics_out is not None and time.perf_counter() >= next_snapshot:
            service.telemetry.export_metrics(metrics_out, registry=service.registry)
            next_snapshot = time.perf_counter() + 1.0
        time.sleep(min(0.05, duration_seconds))
    driver.stop()

    # Drain: keep scrubbing until two consecutive full passes are clean (all
    # injected corruption detected, recovered and verified).
    converged = False
    clean_passes = 0
    reopens_left = 3
    drain_deadline = time.perf_counter() + drain_timeout_seconds
    while time.perf_counter() < drain_deadline:
        # Repairs that failed mid-storm (recovery passes travelling through a
        # then-corrupted neighbour) can succeed now; give them a bounded
        # number of fresh attempts.
        if entry.degraded and entry.is_healthy() and reopens_left > 0:
            reopens_left -= 1
            service.scrubber.reopen_degraded(entry)
        elif entry.degraded and entry.is_healthy():
            # Out of re-open budget: accept the degraded state and stop.
            break
        service.scrub_now(entry.name)
        if entry.is_healthy():
            with entry.lock:
                report = entry.protector.detect()
            if not report.any_errors:
                clean_passes += 1
                if clean_passes >= 2:
                    converged = True
                    break
                continue
        clean_passes = 0
        time.sleep(min(0.02, scrub_period_seconds))

    traffic_stop.set()
    traffic_thread.join(timeout=10.0)
    elapsed = time.perf_counter() - started
    service.stop()

    if trace_out is not None:
        service.telemetry.export_trace(trace_out)
    if metrics_out is not None:
        service.telemetry.export_metrics(metrics_out, registry=service.registry)

    completed = 0
    failed = 0
    latencies: list[float] = []
    for request in requests:
        if not request.done():
            failed += 1
            continue
        if request.failed:
            failed += 1
        else:
            completed += 1
            latencies.append(request.latency_seconds or 0.0)

    bit_exact = all(
        np.array_equal(
            entry.model.layers[index].get_weights().view(np.uint32),
            golden[index].view(np.uint32),
        )
        for index in entry.parameterized_indices
    )

    sla = entry.tracker.report(
        config.scrub_period_seconds,
        yearly_accuracy_floor=config.yearly_accuracy_floor,
    )
    return SoakResult(
        network=network,
        duration_seconds=elapsed,
        fault_events=tuple(driver.events),
        injected_layers=frozenset(driver.injected_layers(entry.name)),
        detected_layers=frozenset(entry.ever_quarantined),
        requests_completed=completed,
        requests_failed=failed,
        served_during_quarantine=entry.stats.served_during_quarantine,
        plan_invalidations=entry.model.plan_stats.invalidations,
        samples_padded=entry.stats.samples_padded,
        throughput_rps=completed / elapsed if elapsed > 0 else 0.0,
        mean_latency_seconds=float(np.mean(latencies)) if latencies else 0.0,
        p50_latency_seconds=latency_percentile(latencies, 50),
        p99_latency_seconds=latency_percentile(latencies, 99),
        bit_exact=bit_exact,
        converged=converged,
        scratch_detections=entry.model.plan_stats.scratch_detections,
        fused_served=entry.stats.fused_served,
        fused_fallbacks=entry.stats.fused_fallbacks,
        uncertified_fused_served=entry.stats.uncertified_fused_served,
        remap_repairs=entry.remap_repairs,
        blacklisted_cells=entry.blacklisted_cell_count,
        sla=sla,
        errors=tuple(traffic_errors),
        fault_chains=tuple(service.telemetry.fault_chains()),
    )
