"""Self-healing inference service facade and the soak harness.

:class:`SelfHealingService` wires the registry, the batching inference
engine and the background scrubber together behind a small lifecycle API::

    service = SelfHealingService()
    service.load_model("mnist_reduced")
    service.start()
    request = service.submit("mnist_reduced", sample)
    # Pick the timeout your deployment needs (the serve CLI exposes it as
    # --request-timeout); there is no magic per-request default.
    probabilities = request.result(timeout=30.0)
    ...
    service.stop()

:func:`run_soak` is the headless fault-pressure scenario shared by the
``repro soak`` CLI command, the end-to-end tests and the example script: it
serves continuous synthetic traffic while a Poisson driver flips bits in the
live weights, then drains, verifies bit-exact restoration against a golden
snapshot, and reports the live availability figures (the paper's Fig. 12
counterpart measured instead of assumed).  Passing a
:class:`~repro.service.traffic.TrafficShape` replaces the legacy
fixed-interval loop with deterministic trace replay (bursts, diurnal curves,
multi-model mixes, stragglers); :func:`run_chaos_scenario` wraps that in the
named production-shape scenarios of
:data:`~repro.service.traffic.CHAOS_SCENARIOS` and judges the outcome
against an SLO.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.core.config import MILRConfig
from repro.exceptions import ExperimentError, ServiceOverloadError
from repro.nn.model import Sequential
from repro.service.config import ServiceConfig
from repro.service.engine import InferenceEngine, InferenceRequest
from repro.service.pressure import FaultEvent, FaultPressureDriver
from repro.service.registry import ManagedModel, ModelRegistry
from repro.service.scrubber import Scrubber
from repro.service.sla import SLAReport, SLOReport
from repro.service.traffic import CHAOS_SCENARIOS, ChaosScenario, TrafficShape
from repro.types import FLOAT_DTYPE

__all__ = [
    "SelfHealingService",
    "SoakResult",
    "ChaosRunResult",
    "run_soak",
    "run_chaos_scenario",
    "calibrate_capacity",
    "latency_percentile",
]


class SelfHealingService:
    """Protected models + batching inference + background scrubbing."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.registry = ModelRegistry(self.config)
        self.engine = InferenceEngine(self.registry, self.config)
        self.scrubber = Scrubber(self.registry, self.config)
        self._started = False

    @property
    def telemetry(self):
        """The registry-owned :class:`~repro.obs.telemetry.Telemetry` facade."""
        return self.registry.telemetry

    # ------------------------------------------------------------------ #
    # Model management
    # ------------------------------------------------------------------ #
    def add_model(
        self,
        name: str,
        model: Sequential,
        milr_config: Optional[MILRConfig] = None,
    ) -> ManagedModel:
        """Register (and protect) an already-built model."""
        entry = self.registry.register(name, model, milr_config=milr_config)
        if self._started:
            self.engine.add_worker(entry)
        return entry

    def load_model(
        self,
        network_name: str,
        name: Optional[str] = None,
        trained: bool = False,
        milr_config: Optional[MILRConfig] = None,
        **train_kwargs,
    ) -> ManagedModel:
        """Load a zoo network (optionally trained) into the registry."""
        entry = self.registry.load(
            network_name,
            name=name,
            trained=trained,
            milr_config=milr_config,
            **train_kwargs,
        )
        if self._started:
            self.engine.add_worker(entry)
        return entry

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        return self._started

    def start(self, scrub: bool = True) -> None:
        """Start serving (and, unless disabled, background scrubbing)."""
        if self._started:
            return
        self.engine.start()
        if scrub:
            self.scrubber.start()
        self._started = True

    def stop(self) -> None:
        if not self._started:
            return
        self.scrubber.stop()
        self.engine.stop()
        self._started = False

    def __enter__(self) -> "SelfHealingService":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def submit(
        self,
        model_name: str,
        sample: np.ndarray,
        deadline_seconds: Optional[float] = None,
    ) -> InferenceRequest:
        """Queue one sample for prediction (optionally with a deadline)."""
        return self.engine.submit(model_name, sample, deadline_seconds)

    def predict(
        self, model_name: str, samples: np.ndarray, timeout: float = 30.0
    ) -> np.ndarray:
        """Synchronous convenience: submit every row and gather the results."""
        requests = [self.submit(model_name, sample) for sample in samples]
        return np.stack([request.result(timeout=timeout) for request in requests])

    # ------------------------------------------------------------------ #
    # Maintenance and reporting
    # ------------------------------------------------------------------ #
    def scrub_now(self, model_name: Optional[str] = None) -> None:
        """Run one synchronous detection sweep (all models by default)."""
        if model_name is None:
            self.scrubber.scrub_all()
        else:
            self.scrubber.scrub_model(self.registry.get(model_name))

    def sla_report(
        self,
        model_name: str,
        scrub_period_seconds: Optional[float] = None,
        error_interval_seconds: Optional[float] = None,
    ) -> SLAReport:
        entry = self.registry.get(model_name)
        return entry.tracker.report(
            scrub_period_seconds or self.config.scrub_period_seconds,
            error_interval_seconds=error_interval_seconds,
            yearly_accuracy_floor=self.config.yearly_accuracy_floor,
        )

    def sla_reports(self) -> list[SLAReport]:
        return [self.sla_report(name) for name in self.registry.names()]


# ---------------------------------------------------------------------- #
# Soak harness
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SoakResult:
    """Outcome of one :func:`run_soak` scenario."""

    network: str
    duration_seconds: float
    fault_events: tuple[FaultEvent, ...]
    #: Layers the driver actually corrupted (ground truth).
    injected_layers: frozenset[int]
    #: Layers the scrubber ever quarantined (detection coverage).
    detected_layers: frozenset[int]
    requests_completed: int
    requests_failed: int
    served_during_quarantine: int
    #: Forward plans invalidated while serving (stale-epoch recompiles after
    #: injections/repairs plus fingerprint-sweep drops at quarantine lift).
    plan_invalidations: int
    #: Padding samples computed and discarded by the engine (zero unless
    #: ``ServiceConfig.fixed_batch_shape`` re-enables batch padding).
    samples_padded: int
    throughput_rps: float
    mean_latency_seconds: float
    p50_latency_seconds: float
    p99_latency_seconds: float
    #: Whether every parameterized layer ended bit-identical to its golden
    #: pre-soak weights.
    bit_exact: bool
    #: Whether the post-soak drain reached two consecutive clean detections.
    converged: bool
    #: Dirty plan scratch buffers caught (and healed) by the per-serve canary
    #: -- the only detector that sees activation/scratch corruption.
    scratch_detections: int
    #: Samples served through a ULP-certified fused plan.
    fused_served: int
    #: Fused batches that fell back to the bit-exact plan (certification
    #: failed or lapsed at that batch size).
    fused_fallbacks: int
    #: Samples served through a fused plan *without* a passing certificate.
    #: Invariant: stays zero -- fused serving always re-certifies or falls
    #: back, no matter what the fault driver does to the weights.
    uncertified_fused_served: int
    #: Blacklisted stuck-at cells healed by the scrubber's remap pass.
    remap_repairs: int
    #: Memory cells blacklisted as repeat offenders during the soak.
    blacklisted_cells: int
    sla: SLAReport
    #: Exceptions raised by the background traffic thread, as
    #: ``"TypeName: message"`` strings.  Empty on a clean run -- a submission
    #: crash used to die silently inside the daemon thread and read as a
    #: mysteriously idle soak.
    errors: tuple = ()
    #: Correlated fault-lifecycle chain summaries
    #: (:class:`~repro.obs.lifecycle.FaultChainSummary`) exported by the
    #: telemetry layer; empty when telemetry is disabled.
    fault_chains: tuple = ()
    #: Requests shed by overload protection, by reason (summed across models).
    shed_queue_full: int = 0
    shed_breaker: int = 0
    shed_deadline: int = 0
    #: Requests answered while the model carried degraded (inexact) layers.
    served_degraded: int = 0
    #: Deepest any model's bounded queue ever got (memory-bound witness).
    queue_depth_highwater: int = 0
    #: Circuit-breaker trips across all models (0 with breakers disabled).
    breaker_opens: int = 0
    #: Request-level SLO snapshot of the primary model (None on legacy runs
    #: predating the chaos harness fields).
    slo: Optional[SLOReport] = None

    @property
    def requests_shed(self) -> int:
        return self.shed_queue_full + self.shed_breaker + self.shed_deadline

    @property
    def all_errors_detected(self) -> bool:
        """Every corrupted layer was eventually flagged by the scrubber."""
        return self.injected_layers <= self.detected_layers

    def as_row(self) -> dict[str, object]:
        return {
            "network": self.network,
            "duration_s": self.duration_seconds,
            "faults": len(self.fault_events),
            "detected": self.all_errors_detected,
            "bit_exact": self.bit_exact,
            "requests": self.requests_completed,
            "rps": self.throughput_rps,
            "plan_invalidations": self.plan_invalidations,
            "p99_ms": self.p99_latency_seconds * 1e3,
            "scratch_detections": self.scratch_detections,
            "fused_served": self.fused_served,
            "remap_repairs": self.remap_repairs,
            "blacklisted_cells": self.blacklisted_cells,
            "availability": self.sla.availability,
            "min_accuracy": self.sla.minimum_accuracy,
            "observed_avail": self.sla.observed_availability,
            "shed": self.requests_shed,
            "served_degraded": self.served_degraded,
        }


def latency_percentile(latencies: "list[float]", q: float) -> float:
    """Percentile ``q`` (0-100) of a latency sample list.

    Edge cases are explicit rather than delegated: an empty sample has no
    percentiles and returns 0.0 (so reports of an idle service read as zero
    latency, not NaN), and a single sample is every percentile of itself.
    Larger samples use numpy's default linear interpolation between the two
    nearest order statistics -- e.g. the p50 of ``[1.0, 2.0]`` is 1.5, not
    either endpoint.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not latencies:
        return 0.0
    if len(latencies) == 1:
        return float(latencies[0])
    return float(np.percentile(np.asarray(latencies), q))


def run_soak(
    network: str = "mnist_reduced",
    duration_seconds: float = 3.0,
    mean_fault_interval_seconds: float = 0.15,
    max_fault_events: Optional[int] = None,
    scrub_period_seconds: float = 0.1,
    request_interval_seconds: float = 0.002,
    trained: bool = False,
    seed: int = 0,
    flips_per_event: int = 1,
    service_config: Optional[ServiceConfig] = None,
    drain_timeout_seconds: float = 60.0,
    milr_config: Optional[MILRConfig] = None,
    fault_layer_indices: Optional[Sequence[int]] = None,
    fault_models: Optional[object] = None,
    reassert_interval_seconds: float = 0.2,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    traffic: Optional[TrafficShape] = None,
    extra_networks: Sequence[str] = (),
    availability_target: Optional[float] = None,
) -> SoakResult:
    """Serve continuous traffic under Poisson bit-flip pressure, then drain.

    The scenario: one protected model serves synthetic single-sample traffic
    through the batching engine while a :class:`FaultPressureDriver` corrupts
    live weights and the scrubber detects/quarantines/recovers in the
    background.  After ``duration_seconds`` (or ``max_fault_events``) the
    driver stops, the service drains until two consecutive full detection
    passes come back clean, and the final weights are compared bit-for-bit
    against a golden pre-soak snapshot.

    ``fault_models`` switches the driver to mixed-model zoo pressure: a
    mapping of fault-model name to arrival weight (or a plain sequence of
    names for equal weights); persistent models re-assert their standing
    faults every ``reassert_interval_seconds`` while the driver runs.

    ``trace_out`` writes the retained telemetry spans (fault-lifecycle
    chains, serve batches, scrub slices) to a JSONL file when the soak ends;
    ``metrics_out`` appends one metrics snapshot line roughly every second
    while the soak runs (so ``repro telemetry`` can watch it live) plus a
    final snapshot.  Both are no-ops with telemetry disabled.

    ``traffic`` replaces the legacy fixed-interval request loop with
    deterministic trace replay of a :class:`TrafficShape`: the shape expands
    once (seeded) into arrival offsets, per-arrival model routing (against
    ``extra_networks``, loaded alongside the primary) and slow-client result
    delays, and the replay thread submits each arrival at its offset --
    falling behind (e.g. a blocked admission) shifts later arrivals rather
    than dropping them.  Requests shed by overload protection are counted,
    not errors.
    """
    if duration_seconds <= 0:
        raise ExperimentError("duration_seconds must be positive")
    config = service_config or ServiceConfig()
    config = replace(config, scrub_period_seconds=scrub_period_seconds)
    service = SelfHealingService(config)
    entry = service.load_model(network, trained=trained, milr_config=milr_config)
    extras = [
        service.load_model(name, trained=trained, milr_config=milr_config)
        for name in extra_networks
    ]

    golden = {
        index: entry.model.layers[index].get_weights()
        for index in entry.parameterized_indices
    }

    # Synthetic request traffic: a small pool of PRNG samples reused
    # round-robin (one pool per model -- input shapes differ across networks).
    rng = np.random.default_rng(seed)
    pools = {
        e.name: rng.random((32,) + e.model.input_shape).astype(FLOAT_DTYPE)
        for e in [entry, *extras]
    }
    requests: list[InferenceRequest] = []
    traffic_stop = threading.Event()
    traffic_errors: list[str] = []
    # Slow clients: (ready_at, request) pairs a collector thread calls
    # ``result()`` on after the client-side delay.
    stragglers: list = []
    straggler_lock = threading.Lock()
    replay_done = threading.Event()

    def _traffic() -> None:
        cursor = 0
        try:
            pool = pools[entry.name]
            while not traffic_stop.is_set():
                try:
                    requests.append(
                        service.submit(entry.name, pool[cursor % len(pool)])
                    )
                except ExperimentError:
                    # Engine stopped under us (normal shutdown race): not an error.
                    return
                except BaseException as error:  # noqa: BLE001 - surfaced in result
                    traffic_errors.append(f"{type(error).__name__}: {error}")
                    return
                cursor += 1
                traffic_stop.wait(request_interval_seconds)
        finally:
            replay_done.set()

    def _replay() -> None:
        # Single-submitter trace replay: arrivals fire at their recorded
        # offsets; when the submitter falls behind (a blocked admission or a
        # burst outrunning this thread) later arrivals shift instead of being
        # skipped, matching simulate_admission's clock semantics.
        assert traffic is not None
        cursor = 0
        epoch = time.perf_counter()
        try:
            trace = traffic.arrivals(duration_seconds)
            for arrival in trace:
                if traffic_stop.is_set():
                    return
                wait = (epoch + arrival.offset) - time.perf_counter()
                if wait > 0 and traffic_stop.wait(wait):
                    return
                target = arrival.model or entry.name
                pool = pools.get(target)
                if pool is None:
                    traffic_errors.append(
                        f"ExperimentError: trace routed to unknown model {target!r}"
                    )
                    return
                try:
                    request = service.submit(target, pool[cursor % len(pool)])
                except ServiceOverloadError:
                    # Shed at admission: accounted by the engine's counters.
                    cursor += 1
                    continue
                except ExperimentError:
                    return
                except BaseException as error:  # noqa: BLE001 - surfaced in result
                    traffic_errors.append(f"{type(error).__name__}: {error}")
                    return
                cursor += 1
                requests.append(request)
                if arrival.result_delay_seconds > 0:
                    with straggler_lock:
                        stragglers.append(
                            (
                                time.perf_counter() + arrival.result_delay_seconds,
                                request,
                            )
                        )
        except BaseException as error:  # noqa: BLE001 - surfaced in result
            traffic_errors.append(f"{type(error).__name__}: {error}")
        finally:
            replay_done.set()

    def _collect_stragglers() -> None:
        # Exercises the late-result path: a slow client only calls result()
        # after its delay, long after the engine completed the request.
        while True:
            item = None
            with straggler_lock:
                if stragglers and stragglers[0][0] <= time.perf_counter():
                    item = stragglers.pop(0)
                remaining = len(stragglers)
            if item is not None:
                try:
                    item[1].result(timeout=5.0)
                except BaseException:  # noqa: BLE001 - outcome read at drain
                    pass
                continue
            if replay_done.is_set() and remaining == 0:
                return
            if traffic_stop.is_set():
                return
            time.sleep(0.005)

    driver = FaultPressureDriver(
        entry,
        mean_interval_seconds=mean_fault_interval_seconds,
        seed=seed,
        flips_per_event=flips_per_event,
        max_events=max_fault_events,
        layer_indices=fault_layer_indices,
        fault_models=fault_models,
        reassert_interval_seconds=reassert_interval_seconds,
        telemetry=service.telemetry,
    )

    started = time.perf_counter()
    service.start()
    traffic_thread = threading.Thread(
        target=_replay if traffic is not None else _traffic,
        name="soak-traffic",
        daemon=True,
    )
    traffic_thread.start()
    collector_thread: Optional[threading.Thread] = None
    if traffic is not None:
        collector_thread = threading.Thread(
            target=_collect_stragglers, name="soak-stragglers", daemon=True
        )
        collector_thread.start()
    driver.start()

    deadline = started + duration_seconds
    next_snapshot = started + 1.0
    while time.perf_counter() < deadline:
        if max_fault_events is not None and driver.exhausted:
            break
        if metrics_out is not None and time.perf_counter() >= next_snapshot:
            service.telemetry.export_metrics(metrics_out, registry=service.registry)
            next_snapshot = time.perf_counter() + 1.0
        time.sleep(min(0.05, duration_seconds))
    driver.stop()

    # Drain: keep scrubbing until two consecutive full passes are clean (all
    # injected corruption detected, recovered and verified).
    converged = False
    clean_passes = 0
    reopens_left = 3
    drain_deadline = time.perf_counter() + drain_timeout_seconds
    while time.perf_counter() < drain_deadline:
        # Repairs that failed mid-storm (recovery passes travelling through a
        # then-corrupted neighbour) can succeed now; give them a bounded
        # number of fresh attempts.
        if entry.degraded and entry.is_healthy() and reopens_left > 0:
            reopens_left -= 1
            service.scrubber.reopen_degraded(entry)
        elif entry.degraded and entry.is_healthy():
            # Out of re-open budget: accept the degraded state and stop.
            break
        service.scrub_now(entry.name)
        if entry.is_healthy():
            with entry.lock:
                report = entry.protector.detect()
            if not report.any_errors:
                clean_passes += 1
                if clean_passes >= 2:
                    converged = True
                    break
                continue
        clean_passes = 0
        time.sleep(min(0.02, scrub_period_seconds))

    traffic_stop.set()
    traffic_thread.join(timeout=10.0)
    if collector_thread is not None:
        collector_thread.join(timeout=10.0)
    elapsed = time.perf_counter() - started
    service.stop()

    if trace_out is not None:
        service.telemetry.export_trace(trace_out)
    if metrics_out is not None:
        service.telemetry.export_metrics(metrics_out, registry=service.registry)

    completed = 0
    failed = 0
    latencies: list[float] = []
    for request in requests:
        if not request.done():
            failed += 1
            continue
        if request.failed:
            failed += 1
        else:
            completed += 1
            latencies.append(request.latency_seconds or 0.0)

    bit_exact = all(
        np.array_equal(
            entry.model.layers[index].get_weights().view(np.uint32),
            golden[index].view(np.uint32),
        )
        for index in entry.parameterized_indices
    )

    sla = entry.tracker.report(
        config.scrub_period_seconds,
        yearly_accuracy_floor=config.yearly_accuracy_floor,
    )
    slo = entry.tracker.slo_report(
        config.scrub_period_seconds,
        availability_target=(
            availability_target
            if availability_target is not None
            else config.slo_availability_target
        ),
        yearly_accuracy_floor=config.yearly_accuracy_floor,
    )
    all_entries = [entry, *extras]
    breaker_opens = sum(
        e.breaker.opens for e in all_entries if e.breaker is not None
    )
    return SoakResult(
        network=network,
        duration_seconds=elapsed,
        fault_events=tuple(driver.events),
        injected_layers=frozenset(driver.injected_layers(entry.name)),
        detected_layers=frozenset(entry.ever_quarantined),
        requests_completed=completed,
        requests_failed=failed,
        served_during_quarantine=entry.stats.served_during_quarantine,
        plan_invalidations=entry.model.plan_stats.invalidations,
        samples_padded=entry.stats.samples_padded,
        throughput_rps=completed / elapsed if elapsed > 0 else 0.0,
        mean_latency_seconds=float(np.mean(latencies)) if latencies else 0.0,
        p50_latency_seconds=latency_percentile(latencies, 50),
        p99_latency_seconds=latency_percentile(latencies, 99),
        bit_exact=bit_exact,
        converged=converged,
        scratch_detections=entry.model.plan_stats.scratch_detections,
        fused_served=entry.stats.fused_served,
        fused_fallbacks=entry.stats.fused_fallbacks,
        uncertified_fused_served=entry.stats.uncertified_fused_served,
        remap_repairs=entry.remap_repairs,
        blacklisted_cells=entry.blacklisted_cell_count,
        sla=sla,
        errors=tuple(traffic_errors),
        fault_chains=tuple(service.telemetry.fault_chains()),
        shed_queue_full=sum(e.stats.shed_queue_full for e in all_entries),
        shed_breaker=sum(e.stats.shed_breaker for e in all_entries),
        shed_deadline=sum(e.stats.shed_deadline for e in all_entries),
        served_degraded=sum(e.stats.served_degraded for e in all_entries),
        queue_depth_highwater=max(
            e.stats.queue_depth_highwater for e in all_entries
        ),
        breaker_opens=breaker_opens,
        slo=slo,
    )


# ---------------------------------------------------------------------- #
# Chaos scenarios
# ---------------------------------------------------------------------- #
def calibrate_capacity(
    network: str = "mnist_reduced",
    samples: int = 512,
    seed: int = 0,
    trained: bool = False,
    milr_config: Optional[MILRConfig] = None,
    service_config: Optional[ServiceConfig] = None,
) -> float:
    """Measure this machine's sustained serve capacity (requests/second).

    Submits ``samples`` single-sample requests full tilt through a fresh,
    fault-free, scrub-free service and divides by the wall-clock to complete
    them all.  Chaos scenarios scale their traffic to this figure so "3x
    overload" stresses every machine by the same ratio instead of a fixed
    rate that one box shrugs off and another melts under.
    """
    if samples < 1:
        raise ExperimentError("samples must be at least 1")
    config = service_config or ServiceConfig()
    service = SelfHealingService(config)
    entry = service.load_model(network, trained=trained, milr_config=milr_config)
    rng = np.random.default_rng(seed)
    pool = rng.random((32,) + entry.model.input_shape).astype(FLOAT_DTYPE)
    service.start(scrub=False)
    try:
        # Warm-up: plan compiles/certifications must not count as capacity.
        warmup = [service.submit(entry.name, pool[i % len(pool)]) for i in range(32)]
        for request in warmup:
            request.result(timeout=30.0)
        began = time.perf_counter()
        pending = [
            service.submit(entry.name, pool[i % len(pool)]) for i in range(samples)
        ]
        for request in pending:
            request.result(timeout=30.0)
        elapsed = time.perf_counter() - began
    finally:
        service.stop()
    if elapsed <= 0:  # pragma: no cover - sub-resolution clock
        raise ExperimentError("capacity calibration elapsed no measurable time")
    return samples / elapsed


@dataclass(frozen=True)
class ChaosRunResult:
    """Outcome of one named chaos scenario, judged against its SLO."""

    scenario: str
    capacity_rps: float
    soak: SoakResult
    #: Human-readable SLO/invariant violations; empty means the run passed.
    violations: tuple

    @property
    def passed(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, object]:
        """Machine-readable summary (the ``repro chaos --json`` payload)."""
        slo = self.soak.slo
        return {
            "scenario": self.scenario,
            "passed": self.passed,
            "violations": list(self.violations),
            "capacity_rps": self.capacity_rps,
            "requests_completed": self.soak.requests_completed,
            "requests_failed": self.soak.requests_failed,
            "requests_shed": self.soak.requests_shed,
            "shed_queue_full": self.soak.shed_queue_full,
            "shed_breaker": self.soak.shed_breaker,
            "shed_deadline": self.soak.shed_deadline,
            "served_degraded": self.soak.served_degraded,
            "queue_depth_highwater": self.soak.queue_depth_highwater,
            "breaker_opens": self.soak.breaker_opens,
            "uncertified_fused_served": self.soak.uncertified_fused_served,
            "converged": self.soak.converged,
            "bit_exact": self.soak.bit_exact,
            "fault_events": len(self.soak.fault_events),
            "slo": slo.as_dict() if slo is not None else None,
        }


def run_chaos_scenario(
    name: str,
    duration_seconds: float = 4.0,
    seed: int = 0,
    network: str = "mnist_reduced",
    capacity_rps: Optional[float] = None,
    trained: bool = False,
    scrub_period_seconds: float = 0.1,
    service_config: Optional[ServiceConfig] = None,
    milr_config: Optional[MILRConfig] = None,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
) -> ChaosRunResult:
    """Run one :data:`CHAOS_SCENARIOS` entry and judge it against its SLO.

    The scenario's traffic factory is scaled to ``capacity_rps`` (measured by
    :func:`calibrate_capacity` when not given), its overload-protection
    fields override the service config, and the resulting soak is checked
    for: admitted-request availability >= the scenario's target, drain
    convergence, bounded queue memory, zero uncertified-fused serves and a
    clean traffic thread.  Violations come back as strings so the CLI can
    print them and exit nonzero.
    """
    scenario = CHAOS_SCENARIOS.get(name)
    if scenario is None:
        raise ExperimentError(
            f"unknown chaos scenario {name!r}; choose from "
            f"{sorted(CHAOS_SCENARIOS)}"
        )
    if capacity_rps is None:
        capacity_rps = calibrate_capacity(
            network, seed=seed, trained=trained, milr_config=milr_config
        )
    traffic = scenario.traffic_factory(capacity_rps, seed)
    config = service_config or ServiceConfig()
    overrides: dict = {
        "max_queue_depth": scenario.max_queue_depth,
        "admission_policy": scenario.admission_policy,
        "breaker_enabled": scenario.breaker_enabled,
        "breaker_p99_threshold_seconds": scenario.breaker_p99_threshold_seconds,
        "slo_availability_target": scenario.slo_availability_target,
    }
    if scenario.deadline_seconds is not None:
        overrides["default_deadline_seconds"] = scenario.deadline_seconds
    overrides.update(scenario.config_overrides)
    config = replace(config, **overrides)
    soak = run_soak(
        network=network,
        duration_seconds=duration_seconds,
        mean_fault_interval_seconds=scenario.mean_fault_interval_seconds,
        scrub_period_seconds=scrub_period_seconds,
        trained=trained,
        seed=seed,
        flips_per_event=scenario.flips_per_event,
        service_config=config,
        milr_config=milr_config,
        fault_models=dict(scenario.fault_models) or None,
        reassert_interval_seconds=scenario.reassert_interval_seconds,
        trace_out=trace_out,
        metrics_out=metrics_out,
        traffic=traffic,
        extra_networks=scenario.extra_networks,
        availability_target=scenario.slo_availability_target,
    )
    violations: list[str] = []
    slo = soak.slo
    if slo is not None and not slo.meets_target:
        violations.append(
            f"admitted availability {slo.admitted_availability:.4f} below "
            f"target {slo.availability_target:.4f}"
        )
    if not soak.converged:
        violations.append("drain did not reach two consecutive clean detections")
    if soak.uncertified_fused_served:
        violations.append(
            f"{soak.uncertified_fused_served} samples served through an "
            "uncertified fused plan"
        )
    if config.max_queue_depth > 0 and (
        soak.queue_depth_highwater > config.max_queue_depth
    ):
        violations.append(
            f"queue depth highwater {soak.queue_depth_highwater} exceeded "
            f"bound {config.max_queue_depth}"
        )
    if soak.errors:
        violations.append(f"traffic thread errors: {'; '.join(soak.errors)}")
    return ChaosRunResult(
        scenario=name,
        capacity_rps=capacity_rps,
        soak=soak,
        violations=tuple(violations),
    )
