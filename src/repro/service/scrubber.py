"""Background detection scrubber and recovery dispatcher.

The scrubber periodically sweeps every registered model with MILR detection,
sliced into small chunks of layers so the model lock is only held for
sub-millisecond stretches and inference interleaves freely.  Layers with
detected errors are quarantined (pausing that model's serving) and handed to
a recovery worker, which re-runs detection on the quarantined subset for
fresh CRC suspect masks, runs the MILR solvers, and then attempts the
verified bit-exact repair (:mod:`repro.service.repair`).  Other models keep
serving throughout.

Detection slice durations and recovery durations are recorded in each model's
:class:`~repro.service.sla.SLATracker`, which is how the live availability
model gets its measured ``Td`` and ``Tr``.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import replace as dataclass_replace
from typing import Optional

import numpy as np

from repro.core.checkpoint import weight_fingerprint
from repro.core.handlers import handler_for
from repro.memory.bitops import bits_to_floats, floats_to_bits
from repro.service.config import ServiceConfig
from repro.service.registry import ManagedModel, ModelRegistry
from repro.service.repair import (
    RepairOutcome,
    estimate_guided_repair,
    refine_recovered_weights,
)

__all__ = ["Scrubber"]

_STOP = object()


class Scrubber:
    """Periodic detection sweeps + quarantine + recovery dispatch."""

    def __init__(self, registry: ModelRegistry, config: Optional[ServiceConfig] = None):
        self._registry = registry
        self._config = config or registry.config
        self._telemetry = registry.telemetry
        self._stop_event = threading.Event()
        self._scrub_thread: Optional[threading.Thread] = None
        self._recovery_thread: Optional[threading.Thread] = None
        self._recovery_queue: "queue.Queue" = queue.Queue()
        self._running = False
        #: Most recent exception swallowed by a background loop (the threads
        #: must outlive individual failures -- a dead scrubber would leave
        #: quarantined models stuck forever with nothing surfaced).
        self.last_error: Optional[BaseException] = None

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._stop_event.clear()
        if self._config.recovery_async:
            self._recovery_thread = threading.Thread(
                target=self._recovery_loop, name="scrub-recovery", daemon=True
            )
            self._recovery_thread.start()
        self._scrub_thread = threading.Thread(
            target=self._scrub_loop, name="scrubber", daemon=True
        )
        self._scrub_thread.start()

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._stop_event.set()
        if self._scrub_thread is not None:
            self._scrub_thread.join(timeout=30.0)
            self._scrub_thread = None
        if self._recovery_thread is not None:
            self._recovery_queue.put(_STOP)
            self._recovery_thread.join(timeout=60.0)
            self._recovery_thread = None

    # ------------------------------------------------------------------ #
    def _scrub_loop(self) -> None:
        while not self._stop_event.wait(self._config.scrub_period_seconds):
            try:
                self.scrub_all()
            except Exception as error:  # noqa: BLE001 - loop must survive
                self.last_error = error

    def _recovery_loop(self) -> None:
        while True:
            job = self._recovery_queue.get()
            if job is _STOP:
                return
            entry, indices = job
            try:
                self._recover(entry, indices)
            except Exception as error:  # noqa: BLE001 - loop must survive
                self.last_error = error

    # ------------------------------------------------------------------ #
    def scrub_all(self) -> None:
        """One full detection sweep over every registered model."""
        for entry in self._registry:
            self.scrub_model(entry)

    def scrub_model(self, entry: ManagedModel) -> None:
        """One full (but sliced) detection pass over one model.

        Layers already quarantined are skipped -- their recovery is pending --
        but quarantined layers without a dispatched recovery job (a previous
        recovery attempt that did not fully converge) are re-dispatched.
        """
        self._remap_pass(entry)
        telemetry = self._telemetry
        chunk_size = self._config.scrub_chunk_layers
        with entry.lock:
            skip = entry.quarantined
            targets = [i for i in entry.parameterized_indices if i not in skip]
            # Sweep every cached plan's scratch borders, not just the plans
            # the serve path happens to execute: with fused serving on, the
            # bit-exact plans (and fused plans for cold batch sizes) would
            # otherwise carry dirt until their next -- possibly never --
            # serve.  O(border) per buffer, so this costs microseconds.
            entry.model.verify_cached_scratch()
        total_seconds = 0.0
        flagged: list[int] = []
        for start in range(0, len(targets), chunk_size):
            chunk = targets[start : start + chunk_size]
            # The span times the slice even with telemetry disabled, so the
            # SLA tracker consumes span durations in both modes.
            with telemetry.tracer.span(
                "scrub.detect_slice",
                attrs={"model": entry.name, "layers": len(chunk)},
            ) as span:
                with entry.lock:
                    report = entry.protector.detect(layer_indices=chunk)
                    bad = [
                        index
                        for index in report.erroneous_layers
                        if not self._accepted_degraded(entry, index)
                    ]
                    # Quarantine under the same lock hold as the detection
                    # that flagged the layers -- releasing in between would
                    # let a waiting batch execute through the just-detected
                    # corruption.
                    if bad:
                        flagged.extend(bad)
                        detected_at = time.perf_counter()
                        for index in bad:
                            telemetry.fault_detected(
                                entry.name, index, span.start, detected_at
                            )
                        entry.quarantine(bad)
            total_seconds += span.duration
        entry.tracker.record_detection(total_seconds)
        if telemetry.enabled:
            telemetry.metrics.histogram(
                "repro_scrub_detection_seconds",
                buckets=telemetry.config.latency_buckets,
                model=entry.name,
            ).observe(total_seconds)
        if flagged:
            entry.tracker.record_errors_detected(len(flagged))
        with entry.lock:
            pending = entry.quarantined - entry.dispatched
            if pending:
                entry.dispatched.update(pending)
        if pending:
            self.dispatch_recovery(entry, sorted(pending))

    def _remap_pass(self, entry: ManagedModel) -> None:
        """Rewrite blacklisted stuck-at cells with their golden words.

        Cells promoted by :meth:`_note_repeat_offenders` re-corrupt after
        every repair; instead of paying a full detect/quarantine/recover cycle
        each time, this pass checks just the blacklisted words against their
        remembered golden values and rewrites dirty ones directly -- the
        software equivalent of remapping a bad DRAM row.  Rewrites are
        counted as detections/recoveries in the SLA tracker (they are real
        error events the service healed), and the brief quarantine around the
        write keeps the no-serve-through-corruption invariant.
        """
        with entry.lock:
            layers = {
                index: dict(cells)
                for index, cells in entry.blacklisted_cells.items()
                if cells
            }
        if not layers:
            return
        telemetry = self._telemetry
        healed_layers = 0
        with telemetry.tracer.span(
            "scrub.remap", attrs={"model": entry.name}
        ) as remap_span:
            for index, cells in sorted(layers.items()):
                with entry.lock:
                    if index in entry.quarantined:
                        continue  # full recovery already owns this layer
                    layer = entry.model.layers[index]
                    weights = layer.get_weights()
                    bits = floats_to_bits(weights).ravel()
                    dirty = [
                        word for word, golden in cells.items() if int(bits[word]) != golden
                    ]
                    if not dirty:
                        continue
                    found_at = time.perf_counter()
                    telemetry.fault_detected(entry.name, index, found_at, found_at)
                    entry.quarantine([index])
                    for word in dirty:
                        bits[word] = np.uint32(cells[word])
                    layer.set_weights(bits_to_floats(bits).reshape(weights.shape))
                    entry.remap_repairs += len(dirty)
                    entry.clear_quarantine([index])
                    healed_at = time.perf_counter()
                    telemetry.strategy_attempted("remap", True)
                    telemetry.repair_attempt(
                        entry.name, index, found_at, healed_at,
                        strategy="remap", round_number=1, bit_exact=True,
                    )
                    telemetry.fault_verified(
                        entry.name, index, healed_at, healed_at, bit_exact=True
                    )
                    if telemetry.enabled:
                        telemetry.metrics.counter(
                            "repro_scrub_remap_repairs_total", model=entry.name
                        ).inc(len(dirty))
                    healed_layers += 1
        if healed_layers:
            entry.tracker.record_errors_detected(healed_layers)
            entry.tracker.record_recovery(
                remap_span.duration, healed_layers, healed_layers
            )

    def _note_repeat_offenders(
        self, entry: ManagedModel, index: int, corrupted: np.ndarray
    ) -> None:
        """Track which cells a bit-exact repair corrected; blacklist repeats.

        Called right after layer ``index`` healed bit-exactly (caller holds
        the lock, so the live words *are* the golden words).  Diffing them
        against the corrupted snapshot yields exactly the cells this repair
        fixed; a cell corrected ``repeat_offender_threshold`` times is
        stuck-at hardware, not random noise, and gets remapped.
        """
        healed_bits = floats_to_bits(entry.model.layers[index].get_weights()).ravel()
        diff = healed_bits ^ floats_to_bits(corrupted).ravel()
        entry.repair_counts[index] = entry.repair_counts.get(index, 0) + 1
        offenders = entry.offender_counts.setdefault(index, {})
        blacklist = entry.blacklisted_cells.setdefault(index, {})
        for word in np.flatnonzero(diff):
            word = int(word)
            mask = int(diff[word])
            for bit in range(32):
                if not mask & (1 << bit):
                    continue
                cell = (word, bit)
                offenders[cell] = offenders.get(cell, 0) + 1
                if offenders[cell] >= self._config.repeat_offender_threshold:
                    blacklist[word] = int(healed_bits[word])

    def dispatch_recovery(self, entry: ManagedModel, indices: list[int]) -> None:
        """Queue (or run inline) a recovery job for quarantined layers."""
        if self._config.recovery_async and self._running:
            self._recovery_queue.put((entry, indices))
        else:
            self._recover(entry, indices)

    # ------------------------------------------------------------------ #
    def _accepted_degraded(self, entry: ManagedModel, index: int) -> bool:
        """Whether ``index`` is a degraded layer whose state is unchanged.

        Degraded layers (best-effort weights that recovery could not verify)
        keep failing detection by construction; they are only re-opened when a
        *new* fault changes their weight fingerprint.  Caller holds the lock.
        """
        accepted = entry.degraded.get(index)
        if accepted is None:
            return False
        current = weight_fingerprint(entry.model.layers[index].get_weights())
        if current == accepted:
            return True
        del entry.degraded[index]
        return False

    def reopen_degraded(self, entry: ManagedModel) -> list[int]:
        """Re-open every degraded layer for another recovery attempt.

        The stored bits each layer had before its failed recovery are restored
        (they are what bit-exact repair needs), the degraded acceptance is
        dropped and the attempt counters reset; the next scrub pass re-detects
        and re-dispatches them.  Used after fault pressure subsides, when
        repairs that failed mid-storm (e.g. through a then-corrupted
        neighbour) can succeed.
        """
        with entry.lock:
            reopened = sorted(entry.degraded)
            for index in reopened:
                original = entry.degraded_originals.pop(index, None)
                if original is not None:
                    entry.model.layers[index].set_weights(original)
                del entry.degraded[index]
                entry.recovery_attempts.pop(index, None)
            # The restored bits are known-corrupted: quarantine immediately
            # (same lock hold) so no batch is served through them while the
            # next scrub/recovery cycle re-detects and heals.
            entry.quarantine(reopened)
        return reopened

    @staticmethod
    def _repair_order(entry: ManagedModel):
        """Repair-order key: self-contained layers heal first.

        Each layer's protection handler declares a ``repair_rank``: rank 0
        repairs from the layer's own stored protection data (bias, batch
        norm), rank 1 from a stored dummy system (dense), rank 2 by
        travelling golden activations through neighbouring layers
        (convolutions), which go last, once those neighbours are (likely)
        healthy.
        """

        def key(index: int) -> tuple[int, int]:
            layer = entry.model.layers[index]
            return (handler_for(layer, index).repair_rank, index)

        return key

    def _repair_layer(
        self, entry: ManagedModel, index: int, corrupted: np.ndarray
    ) -> RepairOutcome:
        """Heal one flagged layer and attempt verified bit-exact restoration.

        ``corrupted`` is the layer's stored bit pattern as first seen by this
        recovery job -- the reference both for the sparse solve and for the
        bit-flip snap, even on later repair rounds.  The repair chain runs
        through the layer's protection handler: first the self-contained
        bit-exact repair from stored protection data alone (bias-sum search,
        CRC-guided correction), then the residual-guided sparse estimate on
        golden checkpoint passes (isolates the few corrupted coordinates
        where a full solve would be under-determined), and finally the plain
        MILR solver with snap refinement, which upgrades the estimate to
        bit-exact when the golden fingerprint confirms.  Caller holds the
        model lock.
        """
        config = self._config
        telemetry = self._telemetry
        store = entry.protector.store
        assert store is not None
        layer = entry.model.layers[index]
        layer_plan = entry.protector.plan.plan_for(index)
        handler = handler_for(layer, index)
        fingerprint = store.golden_fingerprint_for(index)
        repaired = handler.checkpoint_free_repair(
            layer,
            layer_plan,
            corrupted,
            fingerprint,
            store,
            entry.protector.config,
            config,
        )
        telemetry.strategy_attempted("checkpoint_free", repaired is not None)
        if repaired is not None:
            layer.set_weights(repaired)
            snapped = int(np.sum(repaired.view(np.uint32) != corrupted.view(np.uint32)))
            return RepairOutcome(
                bit_exact=True,
                snapped_weights=snapped,
                kept_weights=corrupted.size - snapped,
                strategy="checkpoint_free",
            )
        estimate = handler.residual_repair_estimate(
            layer, layer_plan, corrupted, entry.protector.recovery_engine, config
        )
        if estimate is not None:
            layer.set_weights(estimate)
            outcome = refine_recovered_weights(
                layer,
                corrupted,
                fingerprint,
                rtol=config.repair_rtol,
                atol=config.repair_atol,
                max_flips=config.repair_max_flips,
            )
            telemetry.strategy_attempted("residual_estimate", outcome.bit_exact)
            return dataclass_replace(outcome, strategy="residual_estimate")
        # Solver path: start from the stored bits so CRC localization (and the
        # restricted solves it feeds) sees the actual corruption pattern.
        layer.set_weights(corrupted)
        report = entry.protector.detect(layer_indices=[index])
        if report.erroneous_layers:
            entry.protector.recover(report)
        outcome = refine_recovered_weights(
            layer,
            corrupted,
            fingerprint,
            rtol=config.repair_rtol,
            atol=config.repair_atol,
            max_flips=config.repair_max_flips,
        )
        telemetry.strategy_attempted("solver_snap", outcome.bit_exact)
        if outcome.bit_exact:
            return dataclass_replace(outcome, strategy="solver_snap")
        # Last resort: the solver estimate may be unbiased but noisier than
        # the snap tolerances (e.g. a bias recovered through a dense-layer
        # inversion); retry with the noise-adaptive fingerprint search.
        repaired = estimate_guided_repair(
            corrupted,
            layer.get_weights(),
            fingerprint,
            atol=config.repair_atol,
            max_flips=config.repair_max_flips,
        )
        telemetry.strategy_attempted("estimate_guided", repaired is not None)
        if repaired is not None:
            layer.set_weights(repaired)
            return RepairOutcome(
                bit_exact=True,
                snapped_weights=outcome.snapped_weights,
                kept_weights=outcome.kept_weights,
                strategy="estimate_guided",
            )
        return dataclass_replace(outcome, strategy="solver_snap")

    def _recover(self, entry: ManagedModel, indices: list[int]) -> None:
        """Recover quarantined layers, then try the verified bit-exact repair.

        Repairs run in layer order and are iterated for up to
        ``max_recovery_attempts`` rounds within the job (lock held, so no new
        faults interleave): a layer whose golden input/output passes travelled
        through a still-corrupted neighbour in round one heals in round two,
        after the neighbour's functional repair.  Layers still failing
        verification at the end get their stored bits restored (so the
        information needed for a future bit-exact repair is never destroyed)
        and either stay quarantined for another job or -- once the cross-job
        attempt budget is spent -- are released in degraded state, keeping the
        best functional estimate while the original bits are stashed for
        :meth:`reopen_degraded`.
        """
        config = self._config
        telemetry = self._telemetry
        attempted_layers = 0
        healed_layers = 0
        bit_exact_layers = 0
        degraded_layers = 0
        # The span times the job even with telemetry disabled, so the SLA
        # tracker consumes the span duration in both modes.
        with telemetry.tracer.span(
            "scrub.recover", attrs={"model": entry.name, "layers": len(indices)}
        ) as recover_span:
            try:
                with entry.lock:
                    # Fresh detection over just the quarantined subset: weights
                    # may have degraded further since the scrub pass, and
                    # conv-partial layers need an up-to-date CRC suspect mask.
                    report = entry.protector.detect(layer_indices=indices)
                    flagged = report.erroneous_layers
                    cleared = [i for i in indices if i not in flagged]
                    originals = {
                        i: entry.model.layers[i].get_weights() for i in flagged
                    }
                    outcomes: dict[int, RepairOutcome] = {}
                    still_bad = set(flagged)
                    verify_began = verify_ended = recover_span.start
                    for round_number in range(1, config.max_recovery_attempts + 1):
                        if not still_bad:
                            break
                        for index in sorted(still_bad, key=self._repair_order(entry)):
                            repair_began = time.perf_counter()
                            outcomes[index] = self._repair_layer(
                                entry, index, originals[index]
                            )
                            telemetry.repair_attempt(
                                entry.name,
                                index,
                                repair_began,
                                time.perf_counter(),
                                strategy=outcomes[index].strategy,
                                round_number=round_number,
                                bit_exact=outcomes[index].bit_exact,
                            )
                        verify_began = time.perf_counter()
                        verify = entry.protector.detect(layer_indices=flagged)
                        still_bad = set(verify.erroneous_layers)
                        verify_ended = time.perf_counter()
                    attempted_layers = len(flagged)
                    degraded_indices: list[int] = []
                    for index in flagged:
                        if index not in still_bad:
                            cleared.append(index)
                            healed_layers += 1
                            entry.recovery_attempts.pop(index, None)
                            entry.degraded.pop(index, None)
                            entry.degraded_originals.pop(index, None)
                            if outcomes[index].bit_exact:
                                bit_exact_layers += 1
                                self._note_repeat_offenders(
                                    entry, index, originals[index]
                                )
                            continue
                        attempts = entry.recovery_attempts.get(index, 0) + 1
                        entry.recovery_attempts[index] = attempts
                        if attempts >= config.max_recovery_attempts:
                            # Degrade: serve the best functional estimate, stash
                            # the stored bits for a later re-opened repair.
                            entry.degraded[index] = weight_fingerprint(
                                entry.model.layers[index].get_weights()
                            )
                            entry.degraded_originals[index] = originals[index]
                            entry.recovery_attempts.pop(index, None)
                            cleared.append(index)
                            degraded_layers += 1
                            degraded_indices.append(index)
                        else:
                            entry.model.layers[index].set_weights(originals[index])
                    entry.clear_quarantine(cleared)
                    # Lifecycle closure runs after clear_quarantine so every
                    # chain records its full quarantine window before the
                    # verify stage closes it (on_verify pops the open chain).
                    for index in flagged:
                        if index not in still_bad:
                            telemetry.fault_verified(
                                entry.name,
                                index,
                                verify_began,
                                verify_ended,
                                outcomes[index].bit_exact,
                            )
                    for index in sorted(set(indices) - set(flagged)):
                        # Flagged by the scrub pass but clean on fresh
                        # detection: nothing was repaired, the passing detect
                        # is the verification.
                        telemetry.fault_verified(
                            entry.name,
                            index,
                            recover_span.start,
                            verify_ended,
                            bit_exact=False,
                        )
                    for index in degraded_indices:
                        telemetry.fault_degraded(
                            entry.name, index, time.perf_counter()
                        )
            finally:
                with entry.lock:
                    entry.dispatched.difference_update(indices)
                # Provisional end stamp: the span context manager overwrites it
                # microseconds later with (essentially) the same value.
                recover_span.end = time.perf_counter()
                if attempted_layers:
                    # The duration sample covers the whole attempt (that is the
                    # maintenance time Tr measures); the layer count reports
                    # only layers that actually passed verification.
                    entry.tracker.record_recovery(
                        recover_span.duration, healed_layers, bit_exact_layers
                    )
                if degraded_layers:
                    entry.tracker.record_degraded(degraded_layers)
