"""Batching inference engine.

Requests arrive one sample at a time (as they would from network handlers),
are queued per model, and a dedicated worker thread per model drains the
queue into batches executed through :meth:`Sequential.predict` -- the
plan-compiled fast path, one cached plan per batch occupancy, so partial
batches no longer pad to ``max_batch`` (unless
``ServiceConfig.fixed_batch_shape`` is set).  Every request carries
wall-clock latency accounting from enqueue to completion.

Worker loop contract: a batch only executes while the model's quarantine set
is empty.  The worker takes the model lock, waits on the health condition if
needed, and runs the forward pass under the lock -- so recovery never rewrites
weights mid-batch and no request is answered through a quarantined layer.

Overload protection: with ``ServiceConfig.max_queue_depth`` set, each model's
queue is bounded and :meth:`InferenceEngine.submit` becomes an admission
controller -- a full queue either rejects the request with
:class:`~repro.exceptions.ServiceOverloadError` or blocks the caller for a
bounded wait, and an armed circuit breaker sheds at admission when p99
latency or quarantine depth trips it.  Requests may carry deadlines: the
batch cut happens no later than half the oldest request's remaining budget,
and a request whose deadline already passed when its batch is assembled is
dropped before compute (counted as shed, failed with
:class:`~repro.exceptions.DeadlineExceededError`).
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Optional

import numpy as np

from repro.exceptions import (
    DeadlineExceededError,
    ExperimentError,
    ServiceOverloadError,
    ShapeError,
)
from repro.service.config import ServiceConfig
from repro.service.registry import ManagedModel, ModelRegistry
from repro.types import FLOAT_DTYPE

__all__ = ["InferenceRequest", "InferenceEngine"]

#: Sentinel that tells a worker to drain out.
_STOP = object()


class InferenceRequest:
    """A single-sample prediction request with latency accounting."""

    __slots__ = (
        "model_name",
        "sample",
        "enqueued_at",
        "deadline",
        "completed_at",
        "latency_seconds",
        "_done",
        "_result",
        "_error",
    )

    def __init__(
        self,
        model_name: str,
        sample: np.ndarray,
        deadline_seconds: Optional[float] = None,
    ):
        self.model_name = model_name
        self.sample = sample
        self.enqueued_at = time.perf_counter()
        #: Absolute monotonic-clock deadline (``None`` = no deadline).
        self.deadline: Optional[float] = (
            self.enqueued_at + deadline_seconds
            if deadline_seconds is not None
            else None
        )
        self.completed_at: Optional[float] = None
        self.latency_seconds: Optional[float] = None
        self._done = threading.Event()
        self._result: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    def _complete(self, result: np.ndarray, at: Optional[float] = None) -> None:
        # Requests of one batch complete together; the worker passes a shared
        # timestamp so the hot path reads the clock once per batch.
        self.completed_at = time.perf_counter() if at is None else at
        self.latency_seconds = self.completed_at - self.enqueued_at
        self._result = result
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self.completed_at = time.perf_counter()
        self.latency_seconds = self.completed_at - self.enqueued_at
        self._error = error
        self._done.set()

    # ------------------------------------------------------------------ #
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def failed(self) -> bool:
        return self._done.is_set() and self._error is not None

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until the prediction is available and return it."""
        if not self._done.wait(timeout=timeout):
            raise TimeoutError(
                f"request against model {self.model_name!r} did not complete "
                f"within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class InferenceEngine:
    """Queues single-sample requests and serves them as padded batches."""

    def __init__(self, registry: ModelRegistry, config: Optional[ServiceConfig] = None):
        self._registry = registry
        self._config = config or registry.config
        self._telemetry = registry.telemetry
        self._queues: dict[str, "queue.Queue"] = {}
        self._workers: dict[str, threading.Thread] = {}
        self._running = False
        self._lock = threading.Lock()
        #: Guards shed-counter bumps (entry.lock would serialize admission
        #: behind in-flight batch compute; self._lock is sometimes held when
        #: a shed happens, so neither can cover this path).
        self._shed_lock = threading.Lock()
        #: Models whose worker thread died with an unexpected exception;
        #: submits against them fail fast instead of queueing forever.
        self._dead_workers: set[str] = set()

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn one worker thread per registered model."""
        with self._lock:
            if self._running:
                return
            self._running = True
            self._dead_workers.clear()
            for entry in self._registry:
                self._start_worker(entry)

    def add_worker(self, entry: ManagedModel) -> None:
        """Start serving a model registered after :meth:`start` was called."""
        with self._lock:
            if self._running and entry.name not in self._workers:
                self._start_worker(entry)

    def _start_worker(self, entry: ManagedModel) -> None:
        # maxsize=0 (the default config) keeps the legacy unbounded queue.
        q: "queue.Queue" = queue.Queue(maxsize=self._config.max_queue_depth)
        worker = threading.Thread(
            target=self._worker_loop,
            args=(entry, q),
            name=f"infer-{entry.name}",
            daemon=True,
        )
        self._queues[entry.name] = q
        self._workers[entry.name] = worker
        entry.tracker.start()
        worker.start()

    def stop(self) -> None:
        """Stop all workers, failing any requests still queued behind the stop."""
        with self._lock:
            if not self._running:
                return
            self._running = False
            queues = dict(self._queues)
            workers = dict(self._workers)
            self._queues.clear()
            self._workers.clear()
        for q in queues.values():
            q.put(_STOP)
        for name, worker in workers.items():
            worker.join(timeout=30.0)
            if worker.is_alive():
                # The worker is wedged past the join timeout (e.g. deep in a
                # quarantine wait).  Leave its queue alone: draining here could
                # consume the _STOP sentinel it still needs to terminate.
                continue
            # Anything enqueued after the sentinel is failed, not dropped.
            q = queues[name]
            while True:
                try:
                    item = q.get_nowait()
                except queue.Empty:
                    break
                if item is not _STOP:
                    item._fail(ExperimentError("inference engine stopped"))

    # ------------------------------------------------------------------ #
    @staticmethod
    def _abort_probe(breaker) -> None:
        """Tell the breaker an admitted-by-``allow`` request never queued.

        A half-open breaker counts every ``allow`` as an in-flight probe; an
        admission that fails afterwards (queue full, engine stopping, dead
        worker) must report the probe as failed or the probe budget leaks and
        the breaker sheds forever in half-open.
        """
        if breaker is not None:
            breaker.record(0.0, failed=True)

    def _shed(self, entry: ManagedModel, reason: str, count: int = 1) -> None:
        """Account ``count`` shed requests against one model."""
        with self._shed_lock:
            stats = entry.stats
            if reason == "queue_full":
                stats.shed_queue_full += count
            elif reason == "breaker_open":
                stats.shed_breaker += count
            else:
                stats.shed_deadline += count
        entry.tracker.record_shed(reason, count)
        telemetry = self._telemetry
        if telemetry is not None and telemetry.enabled:
            for _ in range(count):
                telemetry.request_shed(entry.name, reason)

    def submit(
        self,
        model_name: str,
        sample: np.ndarray,
        deadline_seconds: Optional[float] = None,
    ) -> InferenceRequest:
        """Enqueue one sample; returns a request handle with ``result()``.

        Raises :class:`ServiceOverloadError` when overload protection sheds
        the request (full bounded queue under the ``"reject"`` policy, block
        timeout expiry under ``"block"``, or an open circuit breaker), and
        :class:`ExperimentError` when the engine is stopped or the model's
        worker has died.  ``deadline_seconds`` (default
        ``ServiceConfig.default_deadline_seconds``) starts the request's
        latency budget at admission.
        """
        entry = self._registry.get(model_name)
        config = self._config
        sample = np.asarray(sample, dtype=FLOAT_DTYPE)
        if sample.shape != entry.model.input_shape:
            raise ShapeError(
                f"model {model_name!r} expects per-sample shape "
                f"{entry.model.input_shape}, got {sample.shape}"
            )
        breaker = entry.breaker
        if breaker is not None and not breaker.allow(len(entry.quarantined)):
            self._shed(entry, "breaker_open")
            raise ServiceOverloadError(
                f"model {model_name!r} circuit breaker is open",
                reason="breaker_open",
            )
        if deadline_seconds is None:
            deadline_seconds = config.default_deadline_seconds
        request = InferenceRequest(model_name, sample, deadline_seconds)
        # Enqueue under the engine lock: a concurrent stop() (which also takes
        # the lock) can then never drain-and-join between our running check
        # and the put, which would strand the request until its timeout.
        blocked = False
        with self._lock:
            if not self._running:
                self._abort_probe(breaker)
                raise ExperimentError("inference engine is not running")
            if model_name in self._dead_workers:
                self._abort_probe(breaker)
                raise ExperimentError(
                    f"worker for model {model_name!r} died; restart the engine"
                )
            q = self._queues.get(model_name)
            if q is None:
                self._abort_probe(breaker)
                raise ExperimentError(f"no worker running for model {model_name!r}")
            try:
                q.put_nowait(request)
            except queue.Full:
                if config.admission_policy == "reject":
                    self._shed(entry, "queue_full")
                    self._abort_probe(breaker)
                    raise ServiceOverloadError(
                        f"model {model_name!r} queue is full "
                        f"(depth {config.max_queue_depth})",
                        reason="queue_full",
                    ) from None
                blocked = True
            else:
                depth = q.qsize()
                if depth > entry.stats.queue_depth_highwater:
                    entry.stats.queue_depth_highwater = depth
        if blocked:
            # Block policy: wait for queue space OUTSIDE the engine lock so a
            # full queue behind a quarantine-wedged worker can never hold up
            # stop() or other models' submits.  Short put timeouts let us
            # re-check for shutdown/worker death while waiting.
            give_up = time.perf_counter() + config.admission_block_timeout_seconds
            while True:
                remaining = give_up - time.perf_counter()
                if remaining <= 0:
                    self._shed(entry, "queue_full")
                    self._abort_probe(breaker)
                    raise ServiceOverloadError(
                        f"model {model_name!r} queue stayed full for "
                        f"{config.admission_block_timeout_seconds}s",
                        reason="queue_full",
                    )
                if not self._running or model_name in self._dead_workers:
                    self._abort_probe(breaker)
                    raise ExperimentError(
                        "inference engine stopped while waiting for queue space"
                    )
                try:
                    q.put(request, timeout=min(0.05, remaining))
                    break
                except queue.Full:
                    continue
            with self._lock:
                depth = q.qsize()
                if depth > entry.stats.queue_depth_highwater:
                    entry.stats.queue_depth_highwater = depth
                if not request.done() and (
                    not self._running or model_name in self._dead_workers
                ):
                    # stop() or a worker death may have drained the queue
                    # before our put landed; fail the request rather than
                    # strand it to its timeout.
                    request._fail(
                        ExperimentError(
                            "inference engine stopped while the request was queued"
                        )
                    )
        entry.tracker.record_admitted()
        return request

    # ------------------------------------------------------------------ #
    def _instruments(self, entry: ManagedModel) -> Optional[dict]:
        """Prefetched per-model metric handles for the serve hot path.

        Instrument lookup hashes names and takes the registry lock; doing it
        once per worker (not per batch) keeps the per-batch telemetry cost to
        a few lock-guarded adds.  Returns ``None`` when telemetry is off,
        which short-circuits every hot-path hook to one ``is None`` check.
        """
        telemetry = self._telemetry
        if telemetry is None or not telemetry.enabled:
            return None
        buckets = telemetry.config.latency_buckets
        metrics = telemetry.metrics
        return {
            "tracer": telemetry.tracer,
            "batch_seconds": metrics.histogram(
                "repro_serve_batch_seconds", buckets=buckets, model=entry.name
            ),
            "request_seconds": metrics.histogram(
                "repro_serve_request_seconds", buckets=buckets, model=entry.name
            ),
            "requests": metrics.counter(
                "repro_serve_requests_total", model=entry.name
            ),
            "failed": metrics.counter(
                "repro_serve_requests_failed_total", model=entry.name
            ),
            "batches": metrics.counter(
                "repro_serve_batches_total", model=entry.name
            ),
            "fused": metrics.counter(
                "repro_serve_fused_total", model=entry.name
            ),
            "fused_fallback": metrics.counter(
                "repro_serve_fused_fallback_total", model=entry.name
            ),
            "certifications": metrics.counter(
                "repro_fusion_certifications_total", model=entry.name
            ),
        }

    def _warm_plans(self, entry: ManagedModel) -> None:
        """Precompile (and certify) the plans variable-occupancy serving uses.

        Runs once per worker before it accepts requests: every occupancy
        ``1..max_batch`` gets its bit-exact plan -- and, with fused serving
        on, its fused plan plus ULP certification -- compiled up front, so no
        live request ever pays a plan compile or a calibration run.  Skipped
        while the model is quarantined (plans would be dropped on the
        quarantine lift anyway); serving then warms lazily as before.
        """
        config = self._config
        if not config.precompile_plans:
            return
        with entry.lock:
            if not entry.is_healthy():
                return
            probe = np.zeros((1,) + entry.model.input_shape, dtype=FLOAT_DTYPE)
            occupancies = (
                [config.max_batch]
                if config.fixed_batch_shape
                else range(1, config.max_batch + 1)
            )
            for occupancy in occupancies:
                batch = np.broadcast_to(probe, (occupancy,) + probe.shape[1:])
                _outputs, serve_info = entry.model.predict_served(
                    batch,
                    fused=config.fused_forward,
                    certify=config.certify_fusion,
                )
                if serve_info["certified_now"]:
                    entry.stats.fusion_certifications += 1

    def _worker_loop(self, entry: ManagedModel, q: "queue.Queue") -> None:
        try:
            self._serve_loop(entry, q)
        except BaseException:
            # The worker died with an unexpected error (not the clean _STOP
            # path).  Fail everything still queued and poison future submits
            # so callers fail fast instead of queueing against a dead model.
            self._on_worker_death(entry, q)
            raise

    def _serve_loop(self, entry: ManagedModel, q: "queue.Queue") -> None:
        config = self._config
        instruments = self._instruments(entry)
        self._warm_plans(entry)
        while True:
            item = q.get()
            if item is _STOP:
                return
            batch = [item]
            now = time.perf_counter()
            cut = now + config.batch_timeout_seconds
            if config.deadline_batch_cut and item.deadline is not None:
                # Deadline-aware cut: stop gathering once the oldest request
                # has spent half its latency budget, leaving the other half
                # for compute instead of letting a sparse queue burn it all
                # waiting for batch-mates.
                half_spent = item.enqueued_at + 0.5 * (item.deadline - item.enqueued_at)
                cut = min(cut, half_spent)
            stopping = False
            while len(batch) < config.max_batch:
                remaining = cut - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    extra = q.get(timeout=remaining)
                except queue.Empty:
                    break
                if extra is _STOP:
                    stopping = True
                    break
                batch.append(extra)
            batch = self._drop_expired(entry, batch)
            if batch:
                self._execute(entry, batch, instruments)
            if stopping:
                return

    def _drop_expired(
        self, entry: ManagedModel, batch: list[InferenceRequest]
    ) -> list[InferenceRequest]:
        """Drop deadline-passed requests before compute; they count as shed."""
        now = time.perf_counter()
        live = [r for r in batch if r.deadline is None or now < r.deadline]
        expired = len(batch) - len(live)
        if expired:
            breaker = entry.breaker
            for request in batch:
                if request.deadline is not None and now >= request.deadline:
                    request._fail(
                        DeadlineExceededError(
                            f"request against model {entry.name!r} missed its "
                            "deadline before compute"
                        )
                    )
                    if breaker is not None:
                        breaker.record(0.0, failed=True)
            self._shed(entry, "deadline", expired)
        return live

    def _on_worker_death(self, entry: ManagedModel, q: "queue.Queue") -> None:
        # Mark dead under the engine lock FIRST: any submit serialized after
        # this point fails fast, and any put that already landed is drained
        # below -- no request can be stranded in between.
        with self._lock:
            self._dead_workers.add(entry.name)
        failures = 0
        while True:
            try:
                item = q.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                continue
            item._fail(
                ExperimentError(f"inference worker for model {entry.name!r} died")
            )
            failures += 1
        if failures:
            with entry.lock:
                entry.stats.requests_failed += failures
            entry.tracker.record_request_failures(failures)

    def _execute(
        self,
        entry: ManagedModel,
        batch: list[InferenceRequest],
        instruments: Optional[dict] = None,
    ) -> None:
        config = self._config
        began = time.perf_counter() if instruments is not None else 0.0
        try:
            with entry.lock:
                if not entry.wait_healthy(timeout=config.quarantine_wait_seconds):
                    raise ExperimentError(
                        f"model {entry.name!r} stayed quarantined for more than "
                        f"{config.quarantine_wait_seconds}s"
                    )
                if not entry.is_healthy():  # pragma: no cover - invariant guard
                    entry.stats.served_during_quarantine += len(batch)
                stacked = np.stack([request.sample for request in batch])
                # Batches execute at their actual occupancy: the compiled
                # forward plans accept any batch size (one cached plan per
                # size), so padding to max_batch -- which computed up to
                # max_batch - 1 throwaway samples per partial batch -- is only
                # done when a fixed-shape plan is explicitly configured.
                if config.fixed_batch_shape and stacked.shape[0] < config.max_batch:
                    pad = np.zeros(
                        (config.max_batch - stacked.shape[0],) + stacked.shape[1:],
                        dtype=stacked.dtype,
                    )
                    stacked = np.concatenate([stacked, pad], axis=0)
                    entry.stats.samples_padded += pad.shape[0]
                # The production forward: fused by default, but only served
                # through a plan whose network passed ULP certification at
                # this batch size -- anything else silently falls back to the
                # bit-exact plan (attributed below).
                outputs, serve_info = entry.model.predict_served(
                    stacked,
                    fused=config.fused_forward,
                    certify=config.certify_fusion,
                )
                outputs = outputs[: len(batch)]
                entry.stats.batches_executed += 1
                entry.stats.samples_served += len(batch)
                # A serve through repaired-but-inexact (degraded) layers still
                # answers, but the SLO report separates it from healthy serves.
                degraded_serving = bool(entry.degraded)
                if degraded_serving:
                    entry.stats.served_degraded += len(batch)
                mode = serve_info["mode"]
                if mode == "fused":
                    entry.stats.fused_served += len(batch)
                    if serve_info["uncertified"]:
                        entry.stats.uncertified_fused_served += len(batch)
                elif mode == "fallback":
                    entry.stats.fused_fallbacks += len(batch)
                if serve_info["certified_now"]:
                    entry.stats.fusion_certifications += 1
        except BaseException as error:  # noqa: BLE001 - forwarded to requests
            with entry.lock:
                entry.stats.requests_failed += len(batch)
            for request in batch:
                request._fail(error)
            entry.tracker.record_request_failures(len(batch))
            breaker = entry.breaker
            if breaker is not None:
                for _ in batch:
                    breaker.record(0.0, failed=True)
            if instruments is not None:
                instruments["failed"].inc(len(batch))
                instruments["tracer"].record(
                    "serve.batch",
                    start=began,
                    attrs={
                        "model": entry.name,
                        "occupancy": len(batch),
                        "error": type(error).__name__,
                    },
                )
            return
        completed_at = time.perf_counter()
        for request, output in zip(batch, outputs):
            request._complete(output, at=completed_at)
        latencies = [request.latency_seconds or 0.0 for request in batch]
        with entry.lock:
            entry.stats.requests_completed += len(batch)
            for latency in latencies:
                entry.stats.total_latency_seconds += latency
                entry.stats.max_latency_seconds = max(
                    entry.stats.max_latency_seconds, latency
                )
        entry.tracker.record_served(len(batch), degraded_serving, latencies)
        breaker = entry.breaker
        if breaker is not None:
            for latency in latencies:
                breaker.record(latency)
        if instruments is not None:
            ended = time.perf_counter()
            instruments["batches"].inc()
            instruments["requests"].inc(len(batch))
            instruments["batch_seconds"].observe(ended - began)
            instruments["request_seconds"].observe_many(latencies)
            mode = serve_info["mode"]
            if mode == "fused":
                instruments["fused"].inc(len(batch))
            elif mode == "fallback":
                instruments["fused_fallback"].inc(len(batch))
            if serve_info["certified_now"]:
                certificate = serve_info["certificate"]
                instruments["certifications"].inc()
                # The calibration ran inside this batch's forward; backdate
                # the span so its duration is the measured calibration cost.
                instruments["tracer"].record(
                    "plan.certify",
                    start=ended - certificate.calibration_seconds,
                    end=ended,
                    attrs={
                        "model": entry.name,
                        "batch_size": certificate.batch_size,
                        "certified": certificate.certified,
                        "max_ulp": certificate.max_ulp,
                        "ulp_bound": certificate.ulp_bound,
                    },
                )
            instruments["tracer"].record(
                "serve.batch",
                start=began,
                end=ended,
                attrs={
                    "model": entry.name,
                    "occupancy": len(batch),
                    "mode": mode,
                },
            )
