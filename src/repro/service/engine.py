"""Batching inference engine.

Requests arrive one sample at a time (as they would from network handlers),
are queued per model, and a dedicated worker thread per model drains the
queue into batches executed through :meth:`Sequential.predict` -- the
plan-compiled fast path, one cached plan per batch occupancy, so partial
batches no longer pad to ``max_batch`` (unless
``ServiceConfig.fixed_batch_shape`` is set).  Every request carries
wall-clock latency accounting from enqueue to completion.

Worker loop contract: a batch only executes while the model's quarantine set
is empty.  The worker takes the model lock, waits on the health condition if
needed, and runs the forward pass under the lock -- so recovery never rewrites
weights mid-batch and no request is answered through a quarantined layer.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Optional

import numpy as np

from repro.exceptions import ExperimentError, ShapeError
from repro.service.config import ServiceConfig
from repro.service.registry import ManagedModel, ModelRegistry
from repro.types import FLOAT_DTYPE

__all__ = ["InferenceRequest", "InferenceEngine"]

#: Sentinel that tells a worker to drain out.
_STOP = object()


class InferenceRequest:
    """A single-sample prediction request with latency accounting."""

    __slots__ = (
        "model_name",
        "sample",
        "enqueued_at",
        "completed_at",
        "latency_seconds",
        "_done",
        "_result",
        "_error",
    )

    def __init__(self, model_name: str, sample: np.ndarray):
        self.model_name = model_name
        self.sample = sample
        self.enqueued_at = time.perf_counter()
        self.completed_at: Optional[float] = None
        self.latency_seconds: Optional[float] = None
        self._done = threading.Event()
        self._result: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    def _complete(self, result: np.ndarray, at: Optional[float] = None) -> None:
        # Requests of one batch complete together; the worker passes a shared
        # timestamp so the hot path reads the clock once per batch.
        self.completed_at = time.perf_counter() if at is None else at
        self.latency_seconds = self.completed_at - self.enqueued_at
        self._result = result
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self.completed_at = time.perf_counter()
        self.latency_seconds = self.completed_at - self.enqueued_at
        self._error = error
        self._done.set()

    # ------------------------------------------------------------------ #
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def failed(self) -> bool:
        return self._done.is_set() and self._error is not None

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until the prediction is available and return it."""
        if not self._done.wait(timeout=timeout):
            raise TimeoutError(
                f"request against model {self.model_name!r} did not complete "
                f"within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class InferenceEngine:
    """Queues single-sample requests and serves them as padded batches."""

    def __init__(self, registry: ModelRegistry, config: Optional[ServiceConfig] = None):
        self._registry = registry
        self._config = config or registry.config
        self._telemetry = registry.telemetry
        self._queues: dict[str, "queue.Queue"] = {}
        self._workers: dict[str, threading.Thread] = {}
        self._running = False
        self._lock = threading.Lock()

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn one worker thread per registered model."""
        with self._lock:
            if self._running:
                return
            self._running = True
            for entry in self._registry:
                self._start_worker(entry)

    def add_worker(self, entry: ManagedModel) -> None:
        """Start serving a model registered after :meth:`start` was called."""
        with self._lock:
            if self._running and entry.name not in self._workers:
                self._start_worker(entry)

    def _start_worker(self, entry: ManagedModel) -> None:
        q: "queue.Queue" = queue.Queue()
        worker = threading.Thread(
            target=self._worker_loop,
            args=(entry, q),
            name=f"infer-{entry.name}",
            daemon=True,
        )
        self._queues[entry.name] = q
        self._workers[entry.name] = worker
        entry.tracker.start()
        worker.start()

    def stop(self) -> None:
        """Stop all workers, failing any requests still queued behind the stop."""
        with self._lock:
            if not self._running:
                return
            self._running = False
            queues = dict(self._queues)
            workers = dict(self._workers)
            self._queues.clear()
            self._workers.clear()
        for q in queues.values():
            q.put(_STOP)
        for name, worker in workers.items():
            worker.join(timeout=30.0)
            if worker.is_alive():
                # The worker is wedged past the join timeout (e.g. deep in a
                # quarantine wait).  Leave its queue alone: draining here could
                # consume the _STOP sentinel it still needs to terminate.
                continue
            # Anything enqueued after the sentinel is failed, not dropped.
            q = queues[name]
            while True:
                try:
                    item = q.get_nowait()
                except queue.Empty:
                    break
                if item is not _STOP:
                    item._fail(ExperimentError("inference engine stopped"))

    # ------------------------------------------------------------------ #
    def submit(self, model_name: str, sample: np.ndarray) -> InferenceRequest:
        """Enqueue one sample; returns a request handle with ``result()``."""
        entry = self._registry.get(model_name)
        sample = np.asarray(sample, dtype=FLOAT_DTYPE)
        if sample.shape != entry.model.input_shape:
            raise ShapeError(
                f"model {model_name!r} expects per-sample shape "
                f"{entry.model.input_shape}, got {sample.shape}"
            )
        request = InferenceRequest(model_name, sample)
        # Enqueue under the engine lock: a concurrent stop() (which also takes
        # the lock) can then never drain-and-join between our running check
        # and the put, which would strand the request until its timeout.
        with self._lock:
            if not self._running:
                raise ExperimentError("inference engine is not running")
            q = self._queues.get(model_name)
            if q is None:
                raise ExperimentError(f"no worker running for model {model_name!r}")
            q.put(request)
        return request

    # ------------------------------------------------------------------ #
    def _instruments(self, entry: ManagedModel) -> Optional[dict]:
        """Prefetched per-model metric handles for the serve hot path.

        Instrument lookup hashes names and takes the registry lock; doing it
        once per worker (not per batch) keeps the per-batch telemetry cost to
        a few lock-guarded adds.  Returns ``None`` when telemetry is off,
        which short-circuits every hot-path hook to one ``is None`` check.
        """
        telemetry = self._telemetry
        if telemetry is None or not telemetry.enabled:
            return None
        buckets = telemetry.config.latency_buckets
        metrics = telemetry.metrics
        return {
            "tracer": telemetry.tracer,
            "batch_seconds": metrics.histogram(
                "repro_serve_batch_seconds", buckets=buckets, model=entry.name
            ),
            "request_seconds": metrics.histogram(
                "repro_serve_request_seconds", buckets=buckets, model=entry.name
            ),
            "requests": metrics.counter(
                "repro_serve_requests_total", model=entry.name
            ),
            "failed": metrics.counter(
                "repro_serve_requests_failed_total", model=entry.name
            ),
            "batches": metrics.counter(
                "repro_serve_batches_total", model=entry.name
            ),
            "fused": metrics.counter(
                "repro_serve_fused_total", model=entry.name
            ),
            "fused_fallback": metrics.counter(
                "repro_serve_fused_fallback_total", model=entry.name
            ),
            "certifications": metrics.counter(
                "repro_fusion_certifications_total", model=entry.name
            ),
        }

    def _warm_plans(self, entry: ManagedModel) -> None:
        """Precompile (and certify) the plans variable-occupancy serving uses.

        Runs once per worker before it accepts requests: every occupancy
        ``1..max_batch`` gets its bit-exact plan -- and, with fused serving
        on, its fused plan plus ULP certification -- compiled up front, so no
        live request ever pays a plan compile or a calibration run.  Skipped
        while the model is quarantined (plans would be dropped on the
        quarantine lift anyway); serving then warms lazily as before.
        """
        config = self._config
        if not config.precompile_plans:
            return
        with entry.lock:
            if not entry.is_healthy():
                return
            probe = np.zeros((1,) + entry.model.input_shape, dtype=FLOAT_DTYPE)
            occupancies = (
                [config.max_batch]
                if config.fixed_batch_shape
                else range(1, config.max_batch + 1)
            )
            for occupancy in occupancies:
                batch = np.broadcast_to(probe, (occupancy,) + probe.shape[1:])
                _outputs, serve_info = entry.model.predict_served(
                    batch,
                    fused=config.fused_forward,
                    certify=config.certify_fusion,
                )
                if serve_info["certified_now"]:
                    entry.stats.fusion_certifications += 1

    def _worker_loop(self, entry: ManagedModel, q: "queue.Queue") -> None:
        config = self._config
        instruments = self._instruments(entry)
        self._warm_plans(entry)
        while True:
            item = q.get()
            if item is _STOP:
                return
            batch = [item]
            deadline = time.perf_counter() + config.batch_timeout_seconds
            stopping = False
            while len(batch) < config.max_batch:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    extra = q.get(timeout=remaining)
                except queue.Empty:
                    break
                if extra is _STOP:
                    stopping = True
                    break
                batch.append(extra)
            self._execute(entry, batch, instruments)
            if stopping:
                return

    def _execute(
        self,
        entry: ManagedModel,
        batch: list[InferenceRequest],
        instruments: Optional[dict] = None,
    ) -> None:
        config = self._config
        began = time.perf_counter() if instruments is not None else 0.0
        try:
            with entry.lock:
                if not entry.wait_healthy(timeout=config.quarantine_wait_seconds):
                    raise ExperimentError(
                        f"model {entry.name!r} stayed quarantined for more than "
                        f"{config.quarantine_wait_seconds}s"
                    )
                if not entry.is_healthy():  # pragma: no cover - invariant guard
                    entry.stats.served_during_quarantine += len(batch)
                stacked = np.stack([request.sample for request in batch])
                # Batches execute at their actual occupancy: the compiled
                # forward plans accept any batch size (one cached plan per
                # size), so padding to max_batch -- which computed up to
                # max_batch - 1 throwaway samples per partial batch -- is only
                # done when a fixed-shape plan is explicitly configured.
                if config.fixed_batch_shape and stacked.shape[0] < config.max_batch:
                    pad = np.zeros(
                        (config.max_batch - stacked.shape[0],) + stacked.shape[1:],
                        dtype=stacked.dtype,
                    )
                    stacked = np.concatenate([stacked, pad], axis=0)
                    entry.stats.samples_padded += pad.shape[0]
                # The production forward: fused by default, but only served
                # through a plan whose network passed ULP certification at
                # this batch size -- anything else silently falls back to the
                # bit-exact plan (attributed below).
                outputs, serve_info = entry.model.predict_served(
                    stacked,
                    fused=config.fused_forward,
                    certify=config.certify_fusion,
                )
                outputs = outputs[: len(batch)]
                entry.stats.batches_executed += 1
                entry.stats.samples_served += len(batch)
                mode = serve_info["mode"]
                if mode == "fused":
                    entry.stats.fused_served += len(batch)
                    if serve_info["uncertified"]:
                        entry.stats.uncertified_fused_served += len(batch)
                elif mode == "fallback":
                    entry.stats.fused_fallbacks += len(batch)
                if serve_info["certified_now"]:
                    entry.stats.fusion_certifications += 1
        except BaseException as error:  # noqa: BLE001 - forwarded to requests
            with entry.lock:
                entry.stats.requests_failed += len(batch)
            for request in batch:
                request._fail(error)
            if instruments is not None:
                instruments["failed"].inc(len(batch))
                instruments["tracer"].record(
                    "serve.batch",
                    start=began,
                    attrs={
                        "model": entry.name,
                        "occupancy": len(batch),
                        "error": type(error).__name__,
                    },
                )
            return
        completed_at = time.perf_counter()
        for request, output in zip(batch, outputs):
            request._complete(output, at=completed_at)
        with entry.lock:
            entry.stats.requests_completed += len(batch)
            for request in batch:
                latency = request.latency_seconds or 0.0
                entry.stats.total_latency_seconds += latency
                entry.stats.max_latency_seconds = max(
                    entry.stats.max_latency_seconds, latency
                )
        if instruments is not None:
            ended = time.perf_counter()
            instruments["batches"].inc()
            instruments["requests"].inc(len(batch))
            instruments["batch_seconds"].observe(ended - began)
            instruments["request_seconds"].observe_many(
                [request.latency_seconds or 0.0 for request in batch]
            )
            mode = serve_info["mode"]
            if mode == "fused":
                instruments["fused"].inc(len(batch))
            elif mode == "fallback":
                instruments["fused_fallback"].inc(len(batch))
            if serve_info["certified_now"]:
                certificate = serve_info["certificate"]
                instruments["certifications"].inc()
                # The calibration ran inside this batch's forward; backdate
                # the span so its duration is the measured calibration cost.
                instruments["tracer"].record(
                    "plan.certify",
                    start=ended - certificate.calibration_seconds,
                    end=ended,
                    attrs={
                        "model": entry.name,
                        "batch_size": certificate.batch_size,
                        "certified": certificate.certified,
                        "max_ulp": certificate.max_ulp,
                        "ulp_bound": certificate.ulp_bound,
                    },
                )
            instruments["tracer"].record(
                "serve.batch",
                start=began,
                end=ended,
                attrs={
                    "model": entry.name,
                    "occupancy": len(batch),
                    "mode": mode,
                },
            )
