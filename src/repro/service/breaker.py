"""Per-model circuit breaker: early load shedding under latency/fault stress.

The breaker sits in front of a model's request queue.  While *closed* it
admits everything and keeps a rolling window of completed-request latencies;
it trips *open* when the window's p99 crosses its threshold or the model's
quarantine depth reaches its bound (recovery is struggling -- shedding early
beats queueing requests that will time out anyway).  Open state sheds at
admission for an exponentially backed-off interval with seeded uniform
jitter, then goes *half-open*: a bounded number of probe requests are
admitted, and one full probe round completing under the latency threshold
closes the breaker (and resets the backoff) while any probe failure re-opens
it with a doubled backoff.

The jitter RNG is seeded per breaker, so a chaos run's breaker transitions
are reproducible given the scenario seed.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.service.config import ServiceConfig

__all__ = ["CircuitBreaker"]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"

#: Recompute the cached rolling p99 every this many latency records; the
#: admission path then only reads the cache instead of paying a percentile
#: per submit.
_P99_REFRESH_INTERVAL = 32


class CircuitBreaker:
    """Latency/quarantine-tripped admission breaker for one model."""

    def __init__(
        self,
        model_name: str,
        config: ServiceConfig,
        seed: int = 0,
        telemetry=None,
        clock=time.perf_counter,
    ):
        self.model_name = model_name
        self._config = config
        self._telemetry = telemetry
        self._clock = clock
        self._rng = np.random.default_rng(np.random.SeedSequence(seed))
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._latencies: list[float] = []
        self._cursor = 0
        self._records_since_refresh = 0
        self._p99_cache = 0.0
        self._backoff = config.breaker_backoff_seconds
        self._reopen_at = 0.0
        self._probes_in_flight = 0
        self._probes_succeeded = 0
        #: Transition counters (monotonic; read by reports/telemetry collect).
        self.opens = 0
        self.closes = 0
        self.shed = 0
        #: Clock time of the first trip (0.0 if the breaker never opened) --
        #: the chaos benchmarks measure reaction time from it.
        self.first_opened_at = 0.0

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def rolling_p99(self) -> float:
        """Cached rolling-window p99 latency (seconds)."""
        with self._lock:
            return self._p99_cache

    # ------------------------------------------------------------------ #
    def allow(self, quarantine_depth: int = 0) -> bool:
        """Admission check: may a new request enter the queue right now?"""
        config = self._config
        with self._lock:
            now = self._clock()
            if self._state == STATE_CLOSED:
                if (
                    quarantine_depth >= config.breaker_quarantine_depth
                    or (
                        len(self._latencies) >= config.breaker_min_samples
                        and self._p99_cache > config.breaker_p99_threshold_seconds
                    )
                ):
                    self._trip(now, reason=(
                        "quarantine_depth"
                        if quarantine_depth >= config.breaker_quarantine_depth
                        else "p99_latency"
                    ))
                    self.shed += 1
                    return False
                return True
            if self._state == STATE_OPEN:
                if now < self._reopen_at:
                    self.shed += 1
                    return False
                self._transition(STATE_HALF_OPEN, now, reason="backoff_elapsed")
                self._probes_in_flight = 0
                self._probes_succeeded = 0
            # Half-open: admit a bounded probe round.
            if self._probes_in_flight < config.breaker_half_open_probes:
                self._probes_in_flight += 1
                return True
            self.shed += 1
            return False

    def record(self, latency_seconds: float, failed: bool = False) -> None:
        """Account one finished (or failed) admitted request."""
        config = self._config
        with self._lock:
            if not failed:
                if len(self._latencies) < config.breaker_window:
                    self._latencies.append(latency_seconds)
                else:
                    self._latencies[self._cursor] = latency_seconds
                    self._cursor = (self._cursor + 1) % config.breaker_window
                self._records_since_refresh += 1
                if self._records_since_refresh >= _P99_REFRESH_INTERVAL:
                    self._refresh_p99()
            now = self._clock()
            if self._state != STATE_HALF_OPEN:
                return
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            if failed or latency_seconds > config.breaker_p99_threshold_seconds:
                self._trip(now, reason="probe_failed")
                return
            self._probes_succeeded += 1
            if self._probes_succeeded >= config.breaker_half_open_probes:
                self._transition(STATE_CLOSED, now, reason="probes_passed")
                self._backoff = config.breaker_backoff_seconds
                self._latencies.clear()
                self._cursor = 0
                self._p99_cache = 0.0
                self._records_since_refresh = 0
                self.closes += 1

    # ------------------------------------------------------------------ #
    def _refresh_p99(self) -> None:
        self._records_since_refresh = 0
        if self._latencies:
            self._p99_cache = float(np.percentile(np.asarray(self._latencies), 99))

    def _trip(self, now: float, reason: str) -> None:
        """Enter (or re-enter) the open state with jittered backoff."""
        jitter = float(self._rng.uniform(0.0, self._config.breaker_jitter)) * self._backoff
        self._reopen_at = now + self._backoff + jitter
        self._backoff = min(
            self._backoff * 2.0, self._config.breaker_backoff_max_seconds
        )
        if self.opens == 0:
            self.first_opened_at = now
        self.opens += 1
        self._transition(STATE_OPEN, now, reason=reason)

    def _transition(self, state: str, now: float, reason: str) -> None:
        previous = self._state
        self._state = state
        telemetry = self._telemetry
        if telemetry is not None and telemetry.enabled and previous != state:
            telemetry.breaker_transition(self.model_name, previous, state, now, reason)

    def snapshot(self) -> dict:
        """State dump for reports (lock-consistent)."""
        with self._lock:
            return {
                "state": self._state,
                "opens": self.opens,
                "closes": self.closes,
                "shed": self.shed,
                "rolling_p99_seconds": self._p99_cache,
                "backoff_seconds": self._backoff,
                "first_opened_at": self.first_opened_at,
            }
