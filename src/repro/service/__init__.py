"""Self-healing inference service runtime (the paper's Sec. V-E made live).

This package turns the one-shot ``MILRProtector.detect()/recover()`` API into
an *online* system: protected models keep serving batched inference while a
background scrubber periodically detects errors, quarantines corrupted
layers, and heals them -- the availability model of the paper (Fig. 12)
evaluated with measured detection/recovery times instead of assumptions.

* :mod:`repro.service.registry` -- managed models with quarantine state
* :mod:`repro.service.engine` -- batching inference engine with latency
  accounting
* :mod:`repro.service.scrubber` -- periodic sliced detection + recovery
  dispatch
* :mod:`repro.service.repair` -- verified bit-exact repair refinement
* :mod:`repro.service.sla` -- live availability / minimum-accuracy tracking
* :mod:`repro.service.pressure` -- Poisson bit-flip fault driver
* :mod:`repro.service.traffic` -- composable trace-driven traffic shapes,
  the deterministic admission simulation and the named chaos scenarios
* :mod:`repro.service.breaker` -- per-model circuit breaker (early load
  shedding under latency/fault stress)
* :mod:`repro.service.runtime` -- the :class:`SelfHealingService` facade,
  the :func:`run_soak` scenario harness and :func:`run_chaos_scenario`

Observability for the whole stack lives in :mod:`repro.obs` (re-exported
here for convenience): every component above reports into one
:class:`~repro.obs.telemetry.Telemetry` facade owned by the model registry.
"""

from repro.obs.lifecycle import FaultChainSummary
from repro.obs.telemetry import Telemetry, TelemetryConfig
from repro.service.config import ServiceConfig
from repro.service.engine import InferenceEngine, InferenceRequest
from repro.service.pressure import (
    DEFAULT_BIT_POSITIONS,
    SCRATCH_LAYER_NAME,
    FaultEvent,
    FaultPressureDriver,
)
from repro.service.registry import ManagedModel, ModelRegistry, RequestStats
from repro.service.repair import (
    RepairOutcome,
    crc_guided_kernel_repair,
    estimate_guided_repair,
    refine_recovered_weights,
    snap_to_bit_flips,
    sparse_bias_repair,
    sparse_kernel_repair,
)
from repro.service.breaker import CircuitBreaker
from repro.service.runtime import (
    ChaosRunResult,
    SelfHealingService,
    SoakResult,
    calibrate_capacity,
    run_chaos_scenario,
    run_soak,
)
from repro.service.scrubber import Scrubber
from repro.service.sla import SLAReport, SLATracker, SLOReport
from repro.service.traffic import (
    CHAOS_SCENARIOS,
    Arrival,
    BurstTraffic,
    ChaosScenario,
    ConstantTraffic,
    DiurnalTraffic,
    PoissonTraffic,
    RampTraffic,
    ReplayTrace,
    SuperposedTraffic,
    Trace,
    TrafficShape,
    simulate_admission,
)

__all__ = [
    "ServiceConfig",
    "ModelRegistry",
    "ManagedModel",
    "RequestStats",
    "InferenceEngine",
    "InferenceRequest",
    "Scrubber",
    "SLATracker",
    "SLAReport",
    "FaultPressureDriver",
    "FaultEvent",
    "DEFAULT_BIT_POSITIONS",
    "SCRATCH_LAYER_NAME",
    "RepairOutcome",
    "crc_guided_kernel_repair",
    "estimate_guided_repair",
    "refine_recovered_weights",
    "snap_to_bit_flips",
    "sparse_bias_repair",
    "sparse_kernel_repair",
    "SelfHealingService",
    "SoakResult",
    "run_soak",
    "ChaosRunResult",
    "run_chaos_scenario",
    "calibrate_capacity",
    "CircuitBreaker",
    "SLOReport",
    "Arrival",
    "Trace",
    "TrafficShape",
    "ConstantTraffic",
    "PoissonTraffic",
    "DiurnalTraffic",
    "BurstTraffic",
    "RampTraffic",
    "ReplayTrace",
    "SuperposedTraffic",
    "simulate_admission",
    "ChaosScenario",
    "CHAOS_SCENARIOS",
    "Telemetry",
    "TelemetryConfig",
    "FaultChainSummary",
]
