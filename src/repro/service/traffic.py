"""Trace-driven traffic shapes for the chaos/soak harness.

Production request streams are not fixed-interval: they burst, follow
diurnal curves, mix models and include slow clients.  This module generates
such streams as *traces* -- every shape expands, seeded and deterministic,
into a :class:`Trace` of arrival offsets (plus optional per-arrival model
names and client-side result delays) that :func:`~repro.service.runtime.
run_soak` replays against the live service.  Same seed, same shape, same
duration => byte-identical trace, which is what makes chaos scenarios
reproducible and admission decisions replayable.

Shapes compose: ``base + BurstTraffic(...)`` superposes two streams, and
:class:`ReplayTrace` turns a recorded offset array back into a shape.
:func:`simulate_admission` is the deterministic single-worker counterpart of
the engine's admission controller -- a pure discrete-event simulation used
to pin down (and test) which requests of a trace are admitted, shed at the
queue, or dropped at their deadline, independent of wall-clock jitter.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ExperimentError

__all__ = [
    "Arrival",
    "Trace",
    "TrafficShape",
    "ConstantTraffic",
    "PoissonTraffic",
    "DiurnalTraffic",
    "BurstTraffic",
    "RampTraffic",
    "ReplayTrace",
    "SuperposedTraffic",
    "AdmissionSimulation",
    "simulate_admission",
    "ChaosScenario",
    "CHAOS_SCENARIOS",
]


@dataclass(frozen=True)
class Arrival:
    """One request of a trace.

    ``offset`` is seconds from trace start; ``model`` optionally routes the
    request to a named model (``None`` = the scenario's primary model);
    ``result_delay_seconds`` is the slow-client delay between submit and the
    client calling ``result()`` (0 for a prompt client).
    """

    offset: float
    model: Optional[str] = None
    result_delay_seconds: float = 0.0


@dataclass(frozen=True)
class Trace:
    """A materialized request trace: sorted arrival offsets plus metadata."""

    offsets: np.ndarray
    models: Optional[tuple] = None
    result_delays: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        offsets = np.asarray(self.offsets, dtype=np.float64)
        if offsets.ndim != 1:
            raise ExperimentError("trace offsets must be one-dimensional")
        if offsets.size and np.any(np.diff(offsets) < 0):
            raise ExperimentError("trace offsets must be sorted")
        object.__setattr__(self, "offsets", offsets)
        if self.models is not None and len(self.models) != offsets.size:
            raise ExperimentError("trace models must match offsets length")
        if self.result_delays is not None:
            delays = np.asarray(self.result_delays, dtype=np.float64)
            if delays.shape != offsets.shape:
                raise ExperimentError("trace result_delays must match offsets shape")
            object.__setattr__(self, "result_delays", delays)

    def __len__(self) -> int:
        return int(self.offsets.size)

    def arrival(self, index: int) -> Arrival:
        return Arrival(
            offset=float(self.offsets[index]),
            model=self.models[index] if self.models is not None else None,
            result_delay_seconds=(
                float(self.result_delays[index])
                if self.result_delays is not None
                else 0.0
            ),
        )

    def __iter__(self) -> Iterator[Arrival]:
        for index in range(len(self)):
            yield self.arrival(index)

    def merge(self, other: "Trace") -> "Trace":
        """Superpose two traces (stable merge by offset)."""
        offsets = np.concatenate([self.offsets, other.offsets])
        order = np.argsort(offsets, kind="stable")
        models: Optional[tuple] = None
        if self.models is not None or other.models is not None:
            mine = self.models or (None,) * len(self)
            theirs = other.models or (None,) * len(other)
            combined = tuple(mine) + tuple(theirs)
            models = tuple(combined[i] for i in order)
        delays: Optional[np.ndarray] = None
        if self.result_delays is not None or other.result_delays is not None:
            mine_d = (
                self.result_delays
                if self.result_delays is not None
                else np.zeros(len(self))
            )
            theirs_d = (
                other.result_delays
                if other.result_delays is not None
                else np.zeros(len(other))
            )
            delays = np.concatenate([mine_d, theirs_d])[order]
        return Trace(offsets=offsets[order], models=models, result_delays=delays)


class TrafficShape:
    """Base class of the composable, seeded load generators.

    Subclasses define the instantaneous request rate :meth:`rate` (requests
    per second at elapsed time ``t``) and its :attr:`peak_rate`; arrival
    offsets are drawn by Lewis thinning of a homogeneous Poisson process at
    the peak rate, so any integrable rate curve becomes a valid arrival
    process.  Shapes with a closed-form arrival pattern (constant spacing,
    replayed traces) override :meth:`_offsets` directly.

    Common decoration, applied to every shape:

    * ``model_mix`` -- mapping of model name to weight; each arrival draws
      its target model from the normalized mix (``None`` keeps every arrival
      on the scenario's primary model).
    * ``straggler_fraction`` / ``straggler_delay_seconds`` -- that fraction
      of arrivals are slow clients which wait a uniform draw from the delay
      range between submit and ``result()``.
    """

    def __init__(
        self,
        seed: int = 0,
        model_mix: Optional[Mapping[str, float]] = None,
        straggler_fraction: float = 0.0,
        straggler_delay_seconds: tuple = (0.1, 0.5),
    ):
        self.seed = int(seed)
        if model_mix is not None:
            weights = {str(k): float(v) for k, v in dict(model_mix).items()}
            if not weights or any(w < 0 for w in weights.values()):
                raise ExperimentError("model_mix weights must be non-negative")
            total = sum(weights.values())
            if total <= 0:
                raise ExperimentError("model_mix weights must not all be zero")
            model_mix = {k: w / total for k, w in sorted(weights.items())}
        self.model_mix = model_mix
        if not 0.0 <= straggler_fraction <= 1.0:
            raise ExperimentError("straggler_fraction must be in [0, 1]")
        self.straggler_fraction = float(straggler_fraction)
        lo, hi = (float(straggler_delay_seconds[0]), float(straggler_delay_seconds[1]))
        if lo < 0 or hi < lo:
            raise ExperimentError("straggler_delay_seconds must be a (lo, hi) range")
        self.straggler_delay_seconds = (lo, hi)

    # ------------------------------------------------------------------ #
    def rate(self, t: float) -> float:
        """Instantaneous request rate (req/s) at elapsed time ``t``."""
        raise NotImplementedError

    @property
    def peak_rate(self) -> float:
        """Upper bound of :meth:`rate` over the trace (thinning envelope)."""
        raise NotImplementedError

    def _offsets(self, duration_seconds: float, rng: np.random.Generator) -> np.ndarray:
        """Arrival offsets by Lewis thinning at :attr:`peak_rate`."""
        peak = float(self.peak_rate)
        if peak <= 0:
            return np.empty(0, dtype=np.float64)
        expected = peak * duration_seconds
        # Draw candidate inter-arrivals in chunks until past the horizon.
        gaps: list[np.ndarray] = []
        total = 0.0
        while total < duration_seconds:
            chunk = rng.exponential(1.0 / peak, size=max(int(expected) + 64, 64))
            gaps.append(chunk)
            total += float(chunk.sum())
        candidates = np.cumsum(np.concatenate(gaps))
        candidates = candidates[candidates < duration_seconds]
        accept = rng.random(candidates.size)
        rates = np.array([self.rate(float(t)) for t in candidates], dtype=np.float64)
        return candidates[accept * peak < rates]

    # ------------------------------------------------------------------ #
    def arrivals(self, duration_seconds: float) -> Trace:
        """Expand the shape into a deterministic trace of ``duration`` seconds."""
        if duration_seconds <= 0:
            raise ExperimentError("duration_seconds must be positive")
        rng = np.random.default_rng(np.random.SeedSequence(self.seed))
        offsets = np.sort(
            np.asarray(self._offsets(float(duration_seconds), rng), dtype=np.float64)
        )
        offsets = offsets[(offsets >= 0.0) & (offsets < duration_seconds)]
        models: Optional[tuple] = None
        if self.model_mix is not None:
            names = tuple(self.model_mix)
            weights = np.array([self.model_mix[name] for name in names])
            draws = rng.choice(len(names), size=offsets.size, p=weights)
            models = tuple(names[i] for i in draws)
        delays: Optional[np.ndarray] = None
        if self.straggler_fraction > 0.0:
            slow = rng.random(offsets.size) < self.straggler_fraction
            lo, hi = self.straggler_delay_seconds
            delays = np.where(
                slow, rng.uniform(lo, hi, size=offsets.size), 0.0
            ).astype(np.float64)
        return Trace(offsets=offsets, models=models, result_delays=delays)

    def __add__(self, other: "TrafficShape") -> "SuperposedTraffic":
        return SuperposedTraffic([self, other])


class ConstantTraffic(TrafficShape):
    """Evenly spaced arrivals at a fixed rate (the legacy soak pattern)."""

    def __init__(self, rate_rps: float, **kwargs):
        super().__init__(**kwargs)
        if rate_rps < 0:
            raise ExperimentError("rate_rps must be non-negative")
        self.rate_rps = float(rate_rps)

    def rate(self, t: float) -> float:
        return self.rate_rps

    @property
    def peak_rate(self) -> float:
        return self.rate_rps

    def _offsets(self, duration_seconds: float, rng: np.random.Generator) -> np.ndarray:
        if self.rate_rps <= 0:
            return np.empty(0, dtype=np.float64)
        return np.arange(0.0, duration_seconds, 1.0 / self.rate_rps, dtype=np.float64)


class PoissonTraffic(TrafficShape):
    """Homogeneous Poisson arrivals at a fixed mean rate."""

    def __init__(self, rate_rps: float, **kwargs):
        super().__init__(**kwargs)
        if rate_rps < 0:
            raise ExperimentError("rate_rps must be non-negative")
        self.rate_rps = float(rate_rps)

    def rate(self, t: float) -> float:
        return self.rate_rps

    @property
    def peak_rate(self) -> float:
        return self.rate_rps

    def _offsets(self, duration_seconds: float, rng: np.random.Generator) -> np.ndarray:
        if self.rate_rps <= 0:
            return np.empty(0, dtype=np.float64)
        expected = self.rate_rps * duration_seconds
        gaps: list[np.ndarray] = []
        total = 0.0
        while total < duration_seconds:
            chunk = rng.exponential(
                1.0 / self.rate_rps, size=max(int(expected) + 64, 64)
            )
            gaps.append(chunk)
            total += float(chunk.sum())
        offsets = np.cumsum(np.concatenate(gaps))
        return offsets[offsets < duration_seconds]


class DiurnalTraffic(TrafficShape):
    """Sinusoidal day/night curve: ``base * (1 + amplitude * sin(...))``."""

    def __init__(
        self,
        base_rate_rps: float,
        amplitude: float = 0.5,
        period_seconds: float = 60.0,
        phase: float = 0.0,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if base_rate_rps < 0:
            raise ExperimentError("base_rate_rps must be non-negative")
        if not 0.0 <= amplitude <= 1.0:
            raise ExperimentError("amplitude must be in [0, 1]")
        if period_seconds <= 0:
            raise ExperimentError("period_seconds must be positive")
        self.base_rate_rps = float(base_rate_rps)
        self.amplitude = float(amplitude)
        self.period_seconds = float(period_seconds)
        self.phase = float(phase)

    def rate(self, t: float) -> float:
        cycle = np.sin(2.0 * np.pi * t / self.period_seconds + self.phase)
        return max(0.0, self.base_rate_rps * (1.0 + self.amplitude * float(cycle)))

    @property
    def peak_rate(self) -> float:
        return self.base_rate_rps * (1.0 + self.amplitude)


class BurstTraffic(TrafficShape):
    """Square-wave bursts: ``burst_rate`` for ``duty`` of every period."""

    def __init__(
        self,
        base_rate_rps: float,
        burst_rate_rps: float,
        period_seconds: float = 1.0,
        duty: float = 0.25,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if base_rate_rps < 0 or burst_rate_rps < 0:
            raise ExperimentError("rates must be non-negative")
        if period_seconds <= 0:
            raise ExperimentError("period_seconds must be positive")
        if not 0.0 < duty < 1.0:
            raise ExperimentError("duty must be in (0, 1)")
        self.base_rate_rps = float(base_rate_rps)
        self.burst_rate_rps = float(burst_rate_rps)
        self.period_seconds = float(period_seconds)
        self.duty = float(duty)

    def rate(self, t: float) -> float:
        in_burst = (t % self.period_seconds) < self.duty * self.period_seconds
        return self.burst_rate_rps if in_burst else self.base_rate_rps

    @property
    def peak_rate(self) -> float:
        return max(self.base_rate_rps, self.burst_rate_rps)


class RampTraffic(TrafficShape):
    """Linear ramp from ``start_rate`` to ``end_rate`` over ``ramp_seconds``."""

    def __init__(
        self,
        start_rate_rps: float,
        end_rate_rps: float,
        ramp_seconds: float,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if start_rate_rps < 0 or end_rate_rps < 0:
            raise ExperimentError("rates must be non-negative")
        if ramp_seconds <= 0:
            raise ExperimentError("ramp_seconds must be positive")
        self.start_rate_rps = float(start_rate_rps)
        self.end_rate_rps = float(end_rate_rps)
        self.ramp_seconds = float(ramp_seconds)

    def rate(self, t: float) -> float:
        frac = min(1.0, max(0.0, t / self.ramp_seconds))
        return self.start_rate_rps + frac * (self.end_rate_rps - self.start_rate_rps)

    @property
    def peak_rate(self) -> float:
        return max(self.start_rate_rps, self.end_rate_rps)


class ReplayTrace(TrafficShape):
    """Replay a recorded trace: explicit offsets (and optional metadata).

    Arrivals beyond the requested duration are clipped; the recorded
    per-arrival models/result delays (when given) override the base-class
    mix/straggler decoration, which keeps a replayed trace byte-faithful.
    """

    def __init__(
        self,
        offsets: Sequence[float],
        models: Optional[Sequence[Optional[str]]] = None,
        result_delays: Optional[Sequence[float]] = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self._trace = Trace(
            offsets=np.asarray(list(offsets), dtype=np.float64),
            models=tuple(models) if models is not None else None,
            result_delays=(
                np.asarray(list(result_delays), dtype=np.float64)
                if result_delays is not None
                else None
            ),
        )

    def rate(self, t: float) -> float:
        # Mean rate of the recorded window (informational only).
        if len(self._trace) < 2:
            return float(len(self._trace))
        span = float(self._trace.offsets[-1] - self._trace.offsets[0]) or 1.0
        return len(self._trace) / span

    @property
    def peak_rate(self) -> float:
        return self.rate(0.0)

    def arrivals(self, duration_seconds: float) -> Trace:
        if duration_seconds <= 0:
            raise ExperimentError("duration_seconds must be positive")
        keep = self._trace.offsets < duration_seconds
        return Trace(
            offsets=self._trace.offsets[keep],
            models=(
                tuple(
                    m for m, k in zip(self._trace.models, keep) if k
                )
                if self._trace.models is not None
                else None
            ),
            result_delays=(
                self._trace.result_delays[keep]
                if self._trace.result_delays is not None
                else None
            ),
        )


class SuperposedTraffic(TrafficShape):
    """Superposition of component shapes (``shape_a + shape_b``)."""

    def __init__(self, shapes: Sequence[TrafficShape], **kwargs):
        super().__init__(**kwargs)
        if not shapes:
            raise ExperimentError("SuperposedTraffic needs at least one shape")
        self.shapes = list(shapes)

    def rate(self, t: float) -> float:
        return sum(shape.rate(t) for shape in self.shapes)

    @property
    def peak_rate(self) -> float:
        # Conservative envelope: the sum of component peaks.
        return sum(shape.peak_rate for shape in self.shapes)

    def arrivals(self, duration_seconds: float) -> Trace:
        trace = self.shapes[0].arrivals(duration_seconds)
        for shape in self.shapes[1:]:
            trace = trace.merge(shape.arrivals(duration_seconds))
        return trace

    def __add__(self, other: TrafficShape) -> "SuperposedTraffic":
        return SuperposedTraffic([*self.shapes, other])


# ---------------------------------------------------------------------- #
# Deterministic single-worker admission simulation
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class AdmissionSimulation:
    """Outcome of :func:`simulate_admission` over one trace."""

    #: Per-arrival decision, trace order: ``served`` / ``shed_queue`` /
    #: ``shed_deadline``.
    decisions: tuple
    served: int
    shed_queue: int
    shed_deadline: int

    @property
    def admitted(self) -> int:
        return self.served + self.shed_deadline

    @property
    def shed_total(self) -> int:
        return self.shed_queue + self.shed_deadline


def simulate_admission(
    trace: Trace,
    service_seconds_per_request: float,
    max_queue_depth: int = 0,
    policy: str = "reject",
    deadline_seconds: Optional[float] = None,
    block_timeout_seconds: float = 1.0,
) -> AdmissionSimulation:
    """Replay a trace through a deterministic single-worker queue model.

    This is the pure-function counterpart of the engine's admission
    controller: one FIFO worker with constant per-request service time, a
    bounded in-system request count, reject/block admission and
    drop-before-compute deadlines.  It models the *single-submitter* replay
    mode :func:`~repro.service.runtime.run_soak` uses (a blocked submit under
    the ``block`` policy delays every later arrival), so the same trace
    always yields the same admission decisions -- the property the chaos
    harness's determinism tests pin down.
    """
    if service_seconds_per_request <= 0:
        raise ExperimentError("service_seconds_per_request must be positive")
    if policy not in ("reject", "block"):
        raise ExperimentError("policy must be 'reject' or 'block'")
    if max_queue_depth < 0:
        raise ExperimentError("max_queue_depth must be non-negative")
    service = float(service_seconds_per_request)
    decisions: list[str] = []
    #: Completion times (service end, or drop time for deadline sheds) of
    #: admitted requests, non-decreasing by FIFO construction.
    finish: list[float] = []
    server_free = 0.0
    clock = 0.0  # single submitter: a blocked admit delays later arrivals
    served = shed_queue = shed_deadline = 0
    for offset in trace.offsets:
        t = max(float(offset), clock)
        clock = t
        admit_at = t
        if max_queue_depth > 0:
            in_system = len(finish) - bisect_right(finish, t)
            if in_system >= max_queue_depth:
                if policy == "reject":
                    decisions.append("shed_queue")
                    shed_queue += 1
                    continue
                # block: space frees when in-system drops below the bound.
                frees_at = finish[len(finish) - max_queue_depth]
                if frees_at - t > block_timeout_seconds:
                    decisions.append("shed_queue")
                    shed_queue += 1
                    clock = t + block_timeout_seconds
                    continue
                admit_at = frees_at
                clock = admit_at
        start = max(admit_at, server_free)
        if deadline_seconds is not None and start > t + deadline_seconds:
            # The worker pops the expired request at `start` and drops it
            # before compute.
            decisions.append("shed_deadline")
            shed_deadline += 1
            finish.append(start)
            continue
        decisions.append("served")
        served += 1
        server_free = start + service
        finish.append(server_free)
    return AdmissionSimulation(
        decisions=tuple(decisions),
        served=served,
        shed_queue=shed_queue,
        shed_deadline=shed_deadline,
    )


# ---------------------------------------------------------------------- #
# Named chaos scenarios
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChaosScenario:
    """A named production-shape chaos workload.

    ``traffic_factory(capacity_rps, seed)`` builds the scenario's traffic
    shape scaled to the service's measured sustained capacity, so "3x
    overload" means the same thing on every machine.  The remaining fields
    parameterize the soak (fault mix, overload protection) and the SLO gate
    the run is judged against.
    """

    name: str
    description: str
    traffic_factory: Callable[[float, int], TrafficShape]
    fault_models: tuple = ()
    mean_fault_interval_seconds: float = 0.25
    reassert_interval_seconds: float = 0.2
    max_queue_depth: int = 256
    admission_policy: str = "reject"
    deadline_seconds: Optional[float] = None
    breaker_enabled: bool = False
    breaker_p99_threshold_seconds: float = 0.25
    slo_availability_target: float = 0.99
    extra_networks: tuple = ()
    flips_per_event: int = 1
    config_overrides: Mapping[str, object] = field(default_factory=dict)


def _burst_storm_traffic(capacity_rps: float, seed: int) -> TrafficShape:
    return BurstTraffic(
        base_rate_rps=0.5 * capacity_rps,
        burst_rate_rps=3.0 * capacity_rps,
        period_seconds=1.0,
        duty=0.35,
        seed=seed,
    )


def _diurnal_traffic(capacity_rps: float, seed: int) -> TrafficShape:
    return DiurnalTraffic(
        base_rate_rps=0.8 * capacity_rps,
        amplitude=0.9,
        period_seconds=4.0,
        seed=seed,
    )


def _straggler_flood_traffic(capacity_rps: float, seed: int) -> TrafficShape:
    return PoissonTraffic(
        rate_rps=1.5 * capacity_rps,
        straggler_fraction=0.3,
        straggler_delay_seconds=(0.2, 0.8),
        seed=seed,
    )


#: The named scenarios ``repro.cli chaos`` runs.  Each pairs a traffic shape
#: (scaled to measured capacity) with a fault mix and an overload-protection
#: configuration; :func:`~repro.service.runtime.run_chaos_scenario` executes
#: one and judges it against its SLO.
CHAOS_SCENARIOS: dict[str, ChaosScenario] = {
    "burst-storm": ChaosScenario(
        name="burst-storm",
        description=(
            "square-wave bursts to 3x sustained capacity under mixed "
            "stuck-at / row-hammer / activation fault pressure"
        ),
        traffic_factory=_burst_storm_traffic,
        fault_models=(("stuck_at", 1.0), ("row_hammer", 1.0), ("activation", 1.0)),
        mean_fault_interval_seconds=0.3,
        max_queue_depth=256,
        admission_policy="reject",
        breaker_enabled=True,
        breaker_p99_threshold_seconds=0.5,
    ),
    "diurnal-with-stuck-at": ChaosScenario(
        name="diurnal-with-stuck-at",
        description=(
            "diurnal sine between 0.1x and 1.7x capacity with persistent "
            "stuck-at faults reasserting against repairs"
        ),
        traffic_factory=_diurnal_traffic,
        fault_models=(("stuck_at", 1.0),),
        mean_fault_interval_seconds=0.4,
        reassert_interval_seconds=0.15,
        max_queue_depth=512,
        admission_policy="reject",
    ),
    "straggler-flood": ChaosScenario(
        name="straggler-flood",
        description=(
            "sustained 1.5x-capacity Poisson flood where 30% of clients "
            "are stragglers that delay collecting their results"
        ),
        traffic_factory=_straggler_flood_traffic,
        fault_models=(("row_hammer", 1.0), ("activation", 1.0)),
        mean_fault_interval_seconds=0.35,
        max_queue_depth=128,
        admission_policy="reject",
        breaker_enabled=True,
        breaker_p99_threshold_seconds=0.5,
    ),
}
