"""Model zoo: the paper's evaluation networks and reduced-scale variants.

Networks self-register through the :func:`register_network` decorator; the
CLI, the experiment harnesses and the service registry all enumerate
:func:`network_table`, so a newly decorated builder is served, soaked and
benchmarked with no further wiring.
"""

from repro.zoo.networks import (
    NetworkSpec,
    build_cifar_depthwise_network,
    build_cifar_large_network,
    build_cifar_small_network,
    build_mnist_bn_network,
    build_mnist_network,
    build_reduced_cifar_large_network,
    build_reduced_cifar_network,
    build_reduced_mnist_network,
    network_table,
    paper_layer_table,
    register_network,
)

__all__ = [
    "NetworkSpec",
    "register_network",
    "build_mnist_network",
    "build_cifar_small_network",
    "build_cifar_large_network",
    "build_reduced_mnist_network",
    "build_reduced_cifar_network",
    "build_reduced_cifar_large_network",
    "build_mnist_bn_network",
    "build_cifar_depthwise_network",
    "network_table",
    "paper_layer_table",
]
