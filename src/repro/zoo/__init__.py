"""Model zoo: the paper's evaluation networks and reduced-scale variants."""

from repro.zoo.networks import (
    NetworkSpec,
    build_cifar_large_network,
    build_cifar_small_network,
    build_mnist_network,
    build_reduced_cifar_large_network,
    build_reduced_cifar_network,
    build_reduced_mnist_network,
    network_table,
    paper_layer_table,
)

__all__ = [
    "NetworkSpec",
    "build_mnist_network",
    "build_cifar_small_network",
    "build_cifar_large_network",
    "build_reduced_mnist_network",
    "build_reduced_cifar_network",
    "build_reduced_cifar_large_network",
    "network_table",
    "paper_layer_table",
]
