"""The paper's three evaluation networks (Tables I-III) and reduced variants.

Every convolution and dense layer is followed by an explicit :class:`Bias`
layer and a ReLU activation, exactly as the paper describes ("a bias and ReLu
activation layer after each dense and convolution layer"), because MILR treats
the bias as its own layer with its own algebraic relationship.

The reduced variants keep the same structural motifs (conv blocks, pooling,
flatten, dense head with biases and ReLUs) but shrink filter counts and dense
widths so that training and the linear-algebra recovery paths run in seconds
on a laptop-class CPU.  Accuracy experiments default to the reduced variants;
storage and architecture experiments use the paper-exact networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.nn import (
    Bias,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.types import Shape

__all__ = [
    "NetworkSpec",
    "build_mnist_network",
    "build_cifar_small_network",
    "build_cifar_large_network",
    "build_reduced_mnist_network",
    "build_reduced_cifar_network",
    "build_reduced_cifar_large_network",
    "network_table",
    "paper_layer_table",
]


@dataclass(frozen=True)
class NetworkSpec:
    """Description of a zoo network."""

    name: str
    input_shape: Shape
    builder: Callable[[], Sequential]
    paper_table: str


def _conv_block(
    model: Sequential, filters: int, kernel: int, padding: str, prefix: str, seed: int
) -> None:
    """Conv2D + Bias + ReLU, named consistently."""
    model.add(Conv2D(filters, kernel, padding=padding, seed=seed, name=f"{prefix}_conv"))
    model.add(Bias(name=f"{prefix}_bias", seed=seed + 1))
    model.add(ReLU(name=f"{prefix}_relu"))


def _dense_block(model: Sequential, units: int, prefix: str, seed: int, relu: bool = True) -> None:
    """Dense + Bias (+ ReLU), named consistently."""
    model.add(Dense(units, seed=seed, name=f"{prefix}_dense"))
    model.add(Bias(name=f"{prefix}_bias", seed=seed + 1))
    if relu:
        model.add(ReLU(name=f"{prefix}_relu"))


def build_mnist_network(seed: int = 10) -> Sequential:
    """Paper Table I: the MNIST network (valid-padding convolutions)."""
    model = Sequential(name="mnist")
    _conv_block(model, 32, 3, "valid", "block1", seed)
    _conv_block(model, 32, 3, "valid", "block2", seed + 10)
    model.add(MaxPool2D(2, name="pool1"))
    _conv_block(model, 64, 3, "valid", "block3", seed + 20)
    model.add(Flatten(name="flatten"))
    _dense_block(model, 256, "head1", seed + 30)
    _dense_block(model, 10, "head2", seed + 40, relu=False)
    model.build((28, 28, 1))
    return model


def build_cifar_small_network(seed: int = 20) -> Sequential:
    """Paper Table II: the CIFAR-10 small network (same-padding convolutions)."""
    model = Sequential(name="cifar_small")
    _conv_block(model, 32, 3, "same", "block1", seed)
    _conv_block(model, 32, 3, "same", "block2", seed + 10)
    model.add(MaxPool2D(2, name="pool1"))
    _conv_block(model, 64, 3, "same", "block3", seed + 20)
    _conv_block(model, 64, 3, "same", "block4", seed + 30)
    model.add(MaxPool2D(2, name="pool2"))
    _conv_block(model, 128, 3, "same", "block5", seed + 40)
    _conv_block(model, 128, 3, "same", "block6", seed + 50)
    _conv_block(model, 128, 3, "same", "block7", seed + 60)
    model.add(MaxPool2D(2, name="pool3"))
    model.add(Flatten(name="flatten"))
    _dense_block(model, 128, "head1", seed + 70)
    _dense_block(model, 10, "head2", seed + 80, relu=False)
    model.build((32, 32, 3))
    return model


def build_cifar_large_network(seed: int = 30) -> Sequential:
    """Paper Table III: the CIFAR-10 large network (FAWCA-style, 5x5 filters)."""
    model = Sequential(name="cifar_large")
    _conv_block(model, 96, 5, "same", "block1", seed)
    model.add(MaxPool2D(2, name="pool1"))
    _conv_block(model, 96, 5, "same", "block2", seed + 10)
    model.add(MaxPool2D(2, name="pool2"))
    _conv_block(model, 80, 5, "same", "block3", seed + 20)
    _conv_block(model, 64, 5, "same", "block4", seed + 30)
    _conv_block(model, 64, 5, "same", "block5", seed + 40)
    _conv_block(model, 96, 5, "same", "block6", seed + 50)
    model.add(Flatten(name="flatten"))
    _dense_block(model, 256, "head1", seed + 60)
    _dense_block(model, 10, "head2", seed + 70, relu=False)
    model.build((32, 32, 3))
    return model


def build_reduced_mnist_network(seed: int = 40) -> Sequential:
    """Reduced MNIST-style network used by the fast accuracy experiments."""
    model = Sequential(name="mnist_reduced")
    _conv_block(model, 8, 3, "valid", "block1", seed)
    _conv_block(model, 8, 3, "valid", "block2", seed + 10)
    model.add(MaxPool2D(2, name="pool1"))
    model.add(Flatten(name="flatten"))
    _dense_block(model, 32, "head1", seed + 20)
    _dense_block(model, 10, "head2", seed + 30, relu=False)
    model.build((28, 28, 1))
    return model


def build_reduced_cifar_network(seed: int = 50) -> Sequential:
    """Reduced CIFAR-style network used by the fast accuracy experiments."""
    model = Sequential(name="cifar_reduced")
    _conv_block(model, 12, 3, "same", "block1", seed)
    model.add(MaxPool2D(2, name="pool1"))
    _conv_block(model, 16, 3, "same", "block2", seed + 10)
    model.add(MaxPool2D(2, name="pool2"))
    model.add(Flatten(name="flatten"))
    _dense_block(model, 48, "head1", seed + 20)
    _dense_block(model, 10, "head2", seed + 30, relu=False)
    model.build((32, 32, 3))
    return model


def build_reduced_cifar_large_network(seed: int = 60) -> Sequential:
    """Reduced stand-in for the CIFAR-10 large network (Table III).

    It keeps the large network's distinguishing traits at small scale: 5x5
    filters, a deeper all-convolutional middle section whose later layers use
    partial recoverability (``G^2 < F^2 Z``), and a wider dense head.
    """
    model = Sequential(name="cifar_reduced_large")
    _conv_block(model, 16, 5, "same", "block1", seed)
    model.add(MaxPool2D(2, name="pool1"))
    _conv_block(model, 16, 5, "same", "block2", seed + 10)
    model.add(MaxPool2D(2, name="pool2"))
    _conv_block(model, 12, 3, "same", "block3", seed + 20)
    _conv_block(model, 16, 3, "same", "block4", seed + 30)
    model.add(Flatten(name="flatten"))
    _dense_block(model, 64, "head1", seed + 40)
    _dense_block(model, 10, "head2", seed + 50, relu=False)
    model.build((32, 32, 3))
    return model


_SPECS = {
    "mnist": NetworkSpec("mnist", (28, 28, 1), build_mnist_network, "Table I"),
    "cifar_small": NetworkSpec("cifar_small", (32, 32, 3), build_cifar_small_network, "Table II"),
    "cifar_large": NetworkSpec("cifar_large", (32, 32, 3), build_cifar_large_network, "Table III"),
    "mnist_reduced": NetworkSpec("mnist_reduced", (28, 28, 1), build_reduced_mnist_network, "-"),
    "cifar_reduced": NetworkSpec("cifar_reduced", (32, 32, 3), build_reduced_cifar_network, "-"),
    "cifar_reduced_large": NetworkSpec(
        "cifar_reduced_large", (32, 32, 3), build_reduced_cifar_large_network, "-"
    ),
}


def network_table() -> dict[str, NetworkSpec]:
    """All registered zoo networks keyed by name."""
    return dict(_SPECS)


def paper_layer_table(model: Sequential) -> list[dict[str, object]]:
    """Rows matching the paper's architecture tables (Tables I-III).

    The paper's "Trainable" column counts a layer's kernel *and* bias
    together, so this helper merges each Bias layer into the preceding
    convolution/dense layer and skips activation layers.
    """
    rows: list[dict[str, object]] = []
    for layer in model.layers:
        kind = type(layer).__name__
        if kind in ("Conv2D", "Dense"):
            rows.append(
                {
                    "layer": kind,
                    "output_shape": layer.output_shape,
                    "trainable": layer.parameter_count,
                }
            )
        elif kind == "Bias" and rows:
            rows[-1]["trainable"] = int(rows[-1]["trainable"]) + layer.parameter_count
        elif kind in ("MaxPool2D", "AvgPool2D"):
            rows.append(
                {"layer": "Max Pooling", "output_shape": layer.output_shape, "trainable": 0}
            )
    return rows
