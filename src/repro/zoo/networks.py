"""The paper's evaluation networks (Tables I-III), reduced variants, and the
handler-registry exercise networks.

Every convolution and dense layer is followed by an explicit :class:`Bias`
layer and a ReLU activation, exactly as the paper describes ("a bias and ReLu
activation layer after each dense and convolution layer"), because MILR treats
the bias as its own layer with its own algebraic relationship.  The ``*_bn``
and ``*_depthwise`` networks swap some of those bias layers for folded
:class:`BatchNorm` affines and add :class:`DepthwiseConv2D` blocks -- the
layer types protected purely through the handler registry.

The reduced variants keep the same structural motifs (conv blocks, pooling,
flatten, dense head with biases and ReLUs) but shrink filter counts and dense
widths so that training and the linear-algebra recovery paths run in seconds
on a laptop-class CPU.  Accuracy experiments default to the reduced variants;
storage and architecture experiments use the paper-exact networks.

Networks self-register: decorate a builder with :func:`register_network` and
it appears in :func:`network_table` -- and therefore in every CLI
``choices=`` list (``summary``/``storage``/.../``serve``/``soak``) -- with no
further wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ExperimentError
from repro.nn import (
    BatchNorm,
    Bias,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.types import Shape

__all__ = [
    "NetworkSpec",
    "register_network",
    "build_mnist_network",
    "build_cifar_small_network",
    "build_cifar_large_network",
    "build_reduced_mnist_network",
    "build_reduced_cifar_network",
    "build_reduced_cifar_large_network",
    "build_mnist_bn_network",
    "build_cifar_depthwise_network",
    "network_table",
    "paper_layer_table",
]


@dataclass(frozen=True)
class NetworkSpec:
    """Description of a zoo network."""

    name: str
    input_shape: Shape
    builder: Callable[[], Sequential]
    paper_table: str


_SPECS: dict[str, NetworkSpec] = {}


def register_network(name: str, input_shape: Shape, paper_table: str = "-"):
    """Decorator: register a network builder in the zoo table.

    ::

        @register_network("mnist", (28, 28, 1), "Table I")
        def build_mnist_network(seed: int = 10) -> Sequential:
            ...

    The builder must be callable with no arguments (defaults for seeds).
    Registration is what makes a network appear in every CLI ``choices=``
    list, the service registry's ``load`` lookup and the experiment
    harnesses.
    """

    def decorate(builder: Callable[..., Sequential]):
        if name in _SPECS:
            raise ExperimentError(f"network {name!r} is already registered")
        _SPECS[name] = NetworkSpec(name, tuple(input_shape), builder, paper_table)
        return builder

    return decorate


def network_table() -> dict[str, NetworkSpec]:
    """All registered zoo networks keyed by name."""
    return dict(_SPECS)


def _conv_block(
    model: Sequential, filters: int, kernel: int, padding: str, prefix: str, seed: int
) -> None:
    """Conv2D + Bias + ReLU, named consistently."""
    model.add(Conv2D(filters, kernel, padding=padding, seed=seed, name=f"{prefix}_conv"))
    model.add(Bias(name=f"{prefix}_bias", seed=seed + 1))
    model.add(ReLU(name=f"{prefix}_relu"))


def _conv_bn_block(
    model: Sequential, filters: int, kernel: int, padding: str, prefix: str, seed: int
) -> None:
    """Conv2D + BatchNorm + ReLU (the bias is folded into the affine shift)."""
    model.add(Conv2D(filters, kernel, padding=padding, seed=seed, name=f"{prefix}_conv"))
    model.add(BatchNorm(name=f"{prefix}_bn", seed=seed + 1))
    model.add(ReLU(name=f"{prefix}_relu"))


def _dense_block(model: Sequential, units: int, prefix: str, seed: int, relu: bool = True) -> None:
    """Dense + Bias (+ ReLU), named consistently."""
    model.add(Dense(units, seed=seed, name=f"{prefix}_dense"))
    model.add(Bias(name=f"{prefix}_bias", seed=seed + 1))
    if relu:
        model.add(ReLU(name=f"{prefix}_relu"))


@register_network("mnist", (28, 28, 1), "Table I")
def build_mnist_network(seed: int = 10) -> Sequential:
    """Paper Table I: the MNIST network (valid-padding convolutions)."""
    model = Sequential(name="mnist")
    _conv_block(model, 32, 3, "valid", "block1", seed)
    _conv_block(model, 32, 3, "valid", "block2", seed + 10)
    model.add(MaxPool2D(2, name="pool1"))
    _conv_block(model, 64, 3, "valid", "block3", seed + 20)
    model.add(Flatten(name="flatten"))
    _dense_block(model, 256, "head1", seed + 30)
    _dense_block(model, 10, "head2", seed + 40, relu=False)
    model.build((28, 28, 1))
    return model


@register_network("cifar_small", (32, 32, 3), "Table II")
def build_cifar_small_network(seed: int = 20) -> Sequential:
    """Paper Table II: the CIFAR-10 small network (same-padding convolutions)."""
    model = Sequential(name="cifar_small")
    _conv_block(model, 32, 3, "same", "block1", seed)
    _conv_block(model, 32, 3, "same", "block2", seed + 10)
    model.add(MaxPool2D(2, name="pool1"))
    _conv_block(model, 64, 3, "same", "block3", seed + 20)
    _conv_block(model, 64, 3, "same", "block4", seed + 30)
    model.add(MaxPool2D(2, name="pool2"))
    _conv_block(model, 128, 3, "same", "block5", seed + 40)
    _conv_block(model, 128, 3, "same", "block6", seed + 50)
    _conv_block(model, 128, 3, "same", "block7", seed + 60)
    model.add(MaxPool2D(2, name="pool3"))
    model.add(Flatten(name="flatten"))
    _dense_block(model, 128, "head1", seed + 70)
    _dense_block(model, 10, "head2", seed + 80, relu=False)
    model.build((32, 32, 3))
    return model


@register_network("cifar_large", (32, 32, 3), "Table III")
def build_cifar_large_network(seed: int = 30) -> Sequential:
    """Paper Table III: the CIFAR-10 large network (FAWCA-style, 5x5 filters)."""
    model = Sequential(name="cifar_large")
    _conv_block(model, 96, 5, "same", "block1", seed)
    model.add(MaxPool2D(2, name="pool1"))
    _conv_block(model, 96, 5, "same", "block2", seed + 10)
    model.add(MaxPool2D(2, name="pool2"))
    _conv_block(model, 80, 5, "same", "block3", seed + 20)
    _conv_block(model, 64, 5, "same", "block4", seed + 30)
    _conv_block(model, 64, 5, "same", "block5", seed + 40)
    _conv_block(model, 96, 5, "same", "block6", seed + 50)
    model.add(Flatten(name="flatten"))
    _dense_block(model, 256, "head1", seed + 60)
    _dense_block(model, 10, "head2", seed + 70, relu=False)
    model.build((32, 32, 3))
    return model


@register_network("mnist_reduced", (28, 28, 1))
def build_reduced_mnist_network(seed: int = 40) -> Sequential:
    """Reduced MNIST-style network used by the fast accuracy experiments."""
    model = Sequential(name="mnist_reduced")
    _conv_block(model, 8, 3, "valid", "block1", seed)
    _conv_block(model, 8, 3, "valid", "block2", seed + 10)
    model.add(MaxPool2D(2, name="pool1"))
    model.add(Flatten(name="flatten"))
    _dense_block(model, 32, "head1", seed + 20)
    _dense_block(model, 10, "head2", seed + 30, relu=False)
    model.build((28, 28, 1))
    return model


@register_network("cifar_reduced", (32, 32, 3))
def build_reduced_cifar_network(seed: int = 50) -> Sequential:
    """Reduced CIFAR-style network used by the fast accuracy experiments."""
    model = Sequential(name="cifar_reduced")
    _conv_block(model, 12, 3, "same", "block1", seed)
    model.add(MaxPool2D(2, name="pool1"))
    _conv_block(model, 16, 3, "same", "block2", seed + 10)
    model.add(MaxPool2D(2, name="pool2"))
    model.add(Flatten(name="flatten"))
    _dense_block(model, 48, "head1", seed + 20)
    _dense_block(model, 10, "head2", seed + 30, relu=False)
    model.build((32, 32, 3))
    return model


@register_network("cifar_reduced_large", (32, 32, 3))
def build_reduced_cifar_large_network(seed: int = 60) -> Sequential:
    """Reduced stand-in for the CIFAR-10 large network (Table III).

    It keeps the large network's distinguishing traits at small scale: 5x5
    filters, a deeper all-convolutional middle section whose later layers use
    partial recoverability (``G^2 < F^2 Z``), and a wider dense head.
    """
    model = Sequential(name="cifar_reduced_large")
    _conv_block(model, 16, 5, "same", "block1", seed)
    model.add(MaxPool2D(2, name="pool1"))
    _conv_block(model, 16, 5, "same", "block2", seed + 10)
    model.add(MaxPool2D(2, name="pool2"))
    _conv_block(model, 12, 3, "same", "block3", seed + 20)
    _conv_block(model, 16, 3, "same", "block4", seed + 30)
    model.add(Flatten(name="flatten"))
    _dense_block(model, 64, "head1", seed + 40)
    _dense_block(model, 10, "head2", seed + 50, relu=False)
    model.build((32, 32, 3))
    return model


@register_network("mnist_bn", (28, 28, 1))
def build_mnist_bn_network(seed: int = 70) -> Sequential:
    """Batch-normalized MNIST-style network (handler-registry exercise).

    Every conv/dense block uses a folded :class:`BatchNorm` affine instead of
    a plain bias, in both convolutional and dense positions, so recovery
    passes for the neighbouring layers must invert the affine and the
    self-healing service must repair it from its sum + CRC protection data.
    """
    model = Sequential(name="mnist_bn")
    _conv_bn_block(model, 8, 3, "valid", "block1", seed)
    _conv_bn_block(model, 8, 3, "valid", "block2", seed + 10)
    model.add(MaxPool2D(2, name="pool1"))
    model.add(Flatten(name="flatten"))
    model.add(Dense(32, seed=seed + 20, name="head1_dense"))
    model.add(BatchNorm(name="head1_bn", seed=seed + 21))
    model.add(ReLU(name="head1_relu"))
    _dense_block(model, 10, "head2", seed + 30, relu=False)
    model.build((28, 28, 1))
    return model


@register_network("cifar_depthwise", (32, 32, 3))
def build_cifar_depthwise_network(seed: int = 80) -> Sequential:
    """Depthwise-separable CIFAR-style network (handler-registry exercise).

    The middle block is a MobileNet-style depthwise convolution followed by a
    folded batch norm: the depthwise kernel is 2-D-CRC protected with
    checkpoint-guided per-channel recovery, and the batch norm must be
    inverted when the depthwise layer's golden output is reconstructed from
    the succeeding checkpoint.
    """
    model = Sequential(name="cifar_depthwise")
    _conv_block(model, 12, 3, "same", "block1", seed)
    model.add(MaxPool2D(2, name="pool1"))
    model.add(DepthwiseConv2D(3, padding="same", seed=seed + 10, name="block2_depthwise"))
    model.add(BatchNorm(name="block2_bn", seed=seed + 11))
    model.add(ReLU(name="block2_relu"))
    model.add(MaxPool2D(2, name="pool2"))
    model.add(Flatten(name="flatten"))
    _dense_block(model, 48, "head1", seed + 20)
    _dense_block(model, 10, "head2", seed + 30, relu=False)
    model.build((32, 32, 3))
    return model


def paper_layer_table(model: Sequential) -> list[dict[str, object]]:
    """Rows matching the paper's architecture tables (Tables I-III).

    The paper's "Trainable" column counts a layer's kernel *and* bias
    together, so this helper merges each Bias layer (and each folded
    BatchNorm affine) into the preceding convolution/dense layer and skips
    activation layers.
    """
    rows: list[dict[str, object]] = []
    for layer in model.layers:
        kind = type(layer).__name__
        if kind in ("Conv2D", "DepthwiseConv2D", "Dense"):
            rows.append(
                {
                    "layer": kind,
                    "output_shape": layer.output_shape,
                    "trainable": layer.parameter_count,
                }
            )
        elif kind in ("Bias", "BatchNorm") and rows:
            rows[-1]["trainable"] = int(rows[-1]["trainable"]) + layer.parameter_count
        elif kind in ("MaxPool2D", "AvgPool2D"):
            rows.append(
                {"layer": "Max Pooling", "output_shape": layer.output_shape, "trainable": 0}
            )
    return rows
