"""Exception hierarchy for the MILR reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ShapeError(ReproError):
    """An array argument has an incompatible or unexpected shape."""


class LayerConfigurationError(ReproError):
    """A layer was constructed or connected with invalid hyper-parameters."""


class NotBuiltError(ReproError):
    """An operation requires a built (shape-bound) layer or model."""


class NotInvertibleError(ReproError):
    """A backward (inversion) pass was requested on a non-invertible layer."""


class UnsupportedLayerError(ReproError):
    """No :class:`LayerProtectionHandler` is registered for a layer type.

    Raised during planning when a model contains a layer the protection
    registry does not know, unless the layer declares itself pass-through
    (``is_passthrough = True`` and no parameters).
    """


class RecoveryError(ReproError):
    """Parameter recovery failed (e.g. singular or under-determined system)."""


class UnderdeterminedSystemError(RecoveryError):
    """The system of equations has more unknowns than independent equations."""


class DetectionError(ReproError):
    """Error-detection state is missing or inconsistent."""


class CheckpointError(ReproError):
    """A required checkpoint is missing, stale or malformed."""


class SerializationError(ReproError):
    """Model or checkpoint (de)serialization failed."""


class FaultInjectionError(ReproError):
    """Invalid fault-injection request (bad rate, empty target, ...)."""


class ECCError(ReproError):
    """SECDED encode/decode failure (e.g. detected-uncorrectable error)."""


class DatasetError(ReproError):
    """Synthetic dataset generation was requested with invalid parameters."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class ServiceOverloadError(ReproError):
    """A request was shed by overload protection before it was admitted.

    Raised by :meth:`~repro.service.engine.InferenceEngine.submit` when the
    model's bounded queue is full (reject policy, or the caller-block wait
    timed out) or its circuit breaker is open.  ``reason`` carries the shed
    cause (``"queue_full"`` or ``"breaker_open"``) for accounting.
    """

    def __init__(self, message: str, reason: str = "queue_full"):
        super().__init__(message)
        self.reason = reason


class DeadlineExceededError(ReproError):
    """A request's deadline expired before it could be served.

    Requests whose deadline has already passed when their batch is cut are
    dropped before compute and failed with this error (counted as shed, not
    as a service failure).
    """
