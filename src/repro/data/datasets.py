"""Dataset container and splitting utilities."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DatasetError
from repro.types import FLOAT_DTYPE

__all__ = ["Dataset", "train_test_split"]


@dataclass
class Dataset:
    """A labelled image dataset.

    Attributes:
        images: ``(N, H, W, C)`` float32 images in [0, 1].
        labels: ``(N,)`` integer class labels.
        num_classes: Number of distinct classes.
        name: Human readable dataset name.
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=FLOAT_DTYPE)
        self.labels = np.asarray(self.labels, dtype=np.int64).reshape(-1)
        if self.images.shape[0] != self.labels.shape[0]:
            raise DatasetError(
                f"images ({self.images.shape[0]}) and labels ({self.labels.shape[0]}) "
                "differ in length"
            )
        if self.num_classes <= 1:
            raise DatasetError(f"num_classes must be at least 2, got {self.num_classes}")

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def image_shape(self) -> tuple[int, ...]:
        """Per-sample image shape ``(H, W, C)``."""
        return tuple(self.images.shape[1:])

    def subset(self, indices: np.ndarray, name_suffix: str = "subset") -> "Dataset":
        """Return a new dataset restricted to ``indices``."""
        return Dataset(
            images=self.images[indices],
            labels=self.labels[indices],
            num_classes=self.num_classes,
            name=f"{self.name}-{name_suffix}",
        )

    def take(self, count: int) -> "Dataset":
        """Return the first ``count`` samples."""
        count = min(count, len(self))
        return self.subset(np.arange(count), name_suffix=f"take{count}")

    def batches(self, batch_size: int):
        """Yield ``(images, labels)`` mini-batches in order."""
        if batch_size <= 0:
            raise DatasetError(f"batch_size must be positive, got {batch_size}")
        for start in range(0, len(self), batch_size):
            yield (
                self.images[start : start + batch_size],
                self.labels[start : start + batch_size],
            )

    def class_counts(self) -> np.ndarray:
        """Return the number of samples per class."""
        return np.bincount(self.labels, minlength=self.num_classes)


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, seed: int = 0
) -> tuple[Dataset, Dataset]:
    """Split a dataset into reproducible train/test partitions."""
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    test_count = max(1, int(round(len(dataset) * test_fraction)))
    test_idx = order[:test_count]
    train_idx = order[test_count:]
    if train_idx.size == 0:
        raise DatasetError("train split is empty; lower test_fraction or add samples")
    return dataset.subset(train_idx, "train"), dataset.subset(test_idx, "test")
