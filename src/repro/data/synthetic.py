"""Deterministic synthetic image datasets.

Each class is defined by a smooth random prototype image (low-frequency
pattern) plus class-specific geometric structure (an oriented bar and a
bright blob at a class-dependent location).  Samples are prototypes with
additive noise, small brightness jitter and optional translation.  Small CNNs
reach high accuracy on these datasets within a few epochs, which is all the
error-injection experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Dataset
from repro.exceptions import DatasetError
from repro.types import FLOAT_DTYPE

__all__ = [
    "SyntheticImageConfig",
    "make_synthetic_images",
    "make_mnist_like",
    "make_cifar_like",
]


@dataclass(frozen=True)
class SyntheticImageConfig:
    """Configuration of a synthetic image-classification dataset.

    Attributes:
        height, width, channels: Image dimensions.
        num_classes: Number of classes.
        samples_per_class: Samples generated per class.
        noise_level: Standard deviation of the additive Gaussian noise.
        max_shift: Maximum absolute translation (pixels) applied per sample.
        seed: Master seed; the whole dataset is a pure function of the config.
        name: Dataset name.
    """

    height: int = 28
    width: int = 28
    channels: int = 1
    num_classes: int = 10
    samples_per_class: int = 100
    noise_level: float = 0.08
    max_shift: int = 2
    seed: int = 0
    name: str = "synthetic"

    def validate(self) -> None:
        if self.height < 8 or self.width < 8:
            raise DatasetError("images must be at least 8x8")
        if self.channels not in (1, 3):
            raise DatasetError(f"channels must be 1 or 3, got {self.channels}")
        if self.num_classes < 2:
            raise DatasetError("need at least 2 classes")
        if self.samples_per_class < 1:
            raise DatasetError("need at least 1 sample per class")
        if self.noise_level < 0:
            raise DatasetError("noise_level must be non-negative")
        if self.max_shift < 0:
            raise DatasetError("max_shift must be non-negative")


def _smooth_noise(rng: np.random.Generator, height: int, width: int, channels: int) -> np.ndarray:
    """Low-frequency random field in [0, 1] built from a coarse grid."""
    coarse_h = max(height // 4, 2)
    coarse_w = max(width // 4, 2)
    coarse = rng.random((coarse_h, coarse_w, channels))
    rows = np.linspace(0, coarse_h - 1, height)
    cols = np.linspace(0, coarse_w - 1, width)
    row_idx = rows.astype(int)
    col_idx = cols.astype(int)
    row_frac = (rows - row_idx)[:, None, None]
    col_frac = (cols - col_idx)[None, :, None]
    row_next = np.minimum(row_idx + 1, coarse_h - 1)
    col_next = np.minimum(col_idx + 1, coarse_w - 1)
    top = (1 - col_frac) * coarse[row_idx][:, col_idx] + col_frac * coarse[row_idx][:, col_next]
    bottom = (1 - col_frac) * coarse[row_next][:, col_idx] + col_frac * coarse[row_next][:, col_next]
    return (1 - row_frac) * top + row_frac * bottom


def _class_prototype(
    rng: np.random.Generator, class_index: int, height: int, width: int, channels: int
) -> np.ndarray:
    """Build the prototype image for one class."""
    base = 0.35 * _smooth_noise(rng, height, width, channels)
    rows, cols = np.mgrid[0:height, 0:width]
    # Oriented bar whose angle depends on the class.
    angle = np.pi * class_index / 7.0
    distance = np.abs(
        (rows - height / 2) * np.cos(angle) + (cols - width / 2) * np.sin(angle)
    )
    bar = np.exp(-(distance**2) / (2.0 * (height / 10.0) ** 2))
    # Bright blob at a class-dependent location.
    blob_row = height * (0.25 + 0.5 * ((class_index * 37) % 11) / 10.0)
    blob_col = width * (0.25 + 0.5 * ((class_index * 17) % 7) / 6.0)
    blob = np.exp(
        -((rows - blob_row) ** 2 + (cols - blob_col) ** 2) / (2.0 * (height / 8.0) ** 2)
    )
    pattern = 0.6 * bar + 0.7 * blob
    prototype = base + pattern[:, :, None]
    if channels == 3:
        # Give each class a distinct colour balance.
        colour = 0.5 + 0.5 * np.array(
            [
                np.cos(2 * np.pi * class_index / 10.0),
                np.cos(2 * np.pi * class_index / 10.0 + 2.0),
                np.cos(2 * np.pi * class_index / 10.0 + 4.0),
            ]
        )
        prototype = prototype * colour[None, None, :]
    return np.clip(prototype, 0.0, 1.0)


def _shift_image(image: np.ndarray, shift_row: int, shift_col: int) -> np.ndarray:
    """Translate an image with zero fill (keeps shape)."""
    shifted = np.zeros_like(image)
    height, width = image.shape[:2]
    src_rows = slice(max(0, -shift_row), min(height, height - shift_row))
    src_cols = slice(max(0, -shift_col), min(width, width - shift_col))
    dst_rows = slice(max(0, shift_row), min(height, height + shift_row))
    dst_cols = slice(max(0, shift_col), min(width, width + shift_col))
    shifted[dst_rows, dst_cols] = image[src_rows, src_cols]
    return shifted


def make_synthetic_images(config: SyntheticImageConfig) -> Dataset:
    """Generate the dataset described by ``config``."""
    config.validate()
    rng = np.random.default_rng(config.seed)
    prototypes = [
        _class_prototype(rng, class_index, config.height, config.width, config.channels)
        for class_index in range(config.num_classes)
    ]
    total = config.num_classes * config.samples_per_class
    images = np.empty((total, config.height, config.width, config.channels), dtype=FLOAT_DTYPE)
    labels = np.empty((total,), dtype=np.int64)
    cursor = 0
    for class_index, prototype in enumerate(prototypes):
        for _ in range(config.samples_per_class):
            sample = prototype.copy()
            if config.max_shift > 0:
                shift_row = int(rng.integers(-config.max_shift, config.max_shift + 1))
                shift_col = int(rng.integers(-config.max_shift, config.max_shift + 1))
                sample = _shift_image(sample, shift_row, shift_col)
            brightness = 1.0 + rng.uniform(-0.1, 0.1)
            sample = sample * brightness
            sample = sample + rng.normal(0.0, config.noise_level, size=sample.shape)
            images[cursor] = np.clip(sample, 0.0, 1.0)
            labels[cursor] = class_index
            cursor += 1
    # Shuffle deterministically so batches mix classes.
    order = np.random.default_rng(config.seed + 1).permutation(total)
    return Dataset(
        images=images[order],
        labels=labels[order],
        num_classes=config.num_classes,
        name=config.name,
    )


def make_mnist_like(samples_per_class: int = 100, seed: int = 0) -> Dataset:
    """28x28x1, 10-class dataset standing in for MNIST."""
    config = SyntheticImageConfig(
        height=28,
        width=28,
        channels=1,
        num_classes=10,
        samples_per_class=samples_per_class,
        seed=seed,
        name="mnist-like",
    )
    return make_synthetic_images(config)


def make_cifar_like(samples_per_class: int = 100, seed: int = 1) -> Dataset:
    """32x32x3, 10-class dataset standing in for CIFAR-10."""
    config = SyntheticImageConfig(
        height=32,
        width=32,
        channels=3,
        num_classes=10,
        samples_per_class=samples_per_class,
        noise_level=0.06,
        seed=seed,
        name="cifar-like",
    )
    return make_synthetic_images(config)
