"""Synthetic image-classification datasets.

The paper trains on MNIST and CIFAR-10.  This environment has no network
access, so :mod:`repro.data` generates deterministic synthetic datasets with
the same shapes (28x28x1 and 32x32x3, 10 classes) whose classes are separable
by small CNNs.  Normalized accuracy -- the paper's metric -- only requires a
trained baseline network, not the original natural-image data; see DESIGN.md.
"""

from repro.data.datasets import Dataset, train_test_split
from repro.data.synthetic import (
    SyntheticImageConfig,
    make_cifar_like,
    make_mnist_like,
    make_synthetic_images,
)

__all__ = [
    "Dataset",
    "train_test_split",
    "SyntheticImageConfig",
    "make_synthetic_images",
    "make_mnist_like",
    "make_cifar_like",
]
