"""Shared type aliases and small value objects used across the library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

import numpy as np

#: Canonical floating point dtype used for all parameters and activations.
#: The paper operates on 32-bit floats; keeping everything in float32 ensures
#: the bit-level fault model (32 bits per weight) matches the arithmetic.
FLOAT_DTYPE = np.float32

#: Integer dtype used when viewing float32 weights as raw bit patterns.
BITS_DTYPE = np.uint32

#: Number of bits in one weight word.
BITS_PER_WEIGHT = 32

#: A shape is a tuple of ints; layer APIs accept any int sequence.
Shape = tuple[int, ...]
ShapeLike = Union[Sequence[int], Shape]

ArrayLike = Union[np.ndarray, Sequence[float], float]


def as_shape(shape: ShapeLike) -> Shape:
    """Normalize a shape-like sequence into a tuple of plain ints."""
    return tuple(int(dim) for dim in shape)


def as_float_array(values: ArrayLike) -> np.ndarray:
    """Convert ``values`` to a C-contiguous float32 ndarray."""
    return np.ascontiguousarray(np.asarray(values, dtype=FLOAT_DTYPE))


@dataclass(frozen=True)
class LayerSignature:
    """Static description of a layer used by planners and reports.

    Attributes:
        name: Unique layer name within its model.
        kind: Layer class name (``"Conv2D"``, ``"Dense"``, ...).
        input_shape: Per-sample input shape (no batch dimension).
        output_shape: Per-sample output shape (no batch dimension).
        parameter_count: Number of trainable parameters owned by the layer.
    """

    name: str
    kind: str
    input_shape: Shape
    output_shape: Shape
    parameter_count: int


@dataclass
class StorageReport:
    """Byte-level accounting of protection overheads for one model.

    All quantities are in bytes.  ``breakdown`` maps a human readable item
    name (e.g. ``"partial_checkpoints"``) to its size.
    """

    weights_bytes: int = 0
    total_bytes: int = 0
    breakdown: dict[str, int] = field(default_factory=dict)

    def add(self, item: str, nbytes: int) -> None:
        """Add ``nbytes`` under ``item`` and update the total."""
        nbytes = int(nbytes)
        self.breakdown[item] = self.breakdown.get(item, 0) + nbytes
        self.total_bytes += nbytes

    @property
    def total_megabytes(self) -> float:
        """Total overhead in decimal megabytes (paper reports MB)."""
        return self.total_bytes / 1e6

    @property
    def weights_megabytes(self) -> float:
        """Size of the raw weights in decimal megabytes."""
        return self.weights_bytes / 1e6

    def fraction_of_weights(self) -> float:
        """Overhead expressed as a fraction of the raw weight size."""
        if self.weights_bytes == 0:
            return 0.0
        return self.total_bytes / self.weights_bytes
