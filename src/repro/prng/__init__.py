"""Seeded pseudo-random tensor generation.

MILR relies on seeded pseudo-random number generators in three places:

* the known input used during the error-detection forward pass,
* dummy parameters appended to make a layer invertible,
* dummy inputs appended to make parameter solving well determined.

Only the seed needs to be stored; the tensors are regenerated on demand.
"""

from repro.prng.generator import SeededTensorGenerator, derive_seed

__all__ = ["SeededTensorGenerator", "derive_seed"]
