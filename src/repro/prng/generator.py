"""Deterministic, seed-addressable tensor generation.

The generator must produce *identical* tensors every time it is asked for the
same (seed, purpose, shape) triple: MILR regenerates detection inputs and dummy
data long after initialization, potentially in a different process.  We
therefore derive a child seed from a stable hash of the purpose string and use
a fresh :class:`numpy.random.Generator` per request instead of sharing stateful
generators.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.types import FLOAT_DTYPE, ShapeLike, as_shape

__all__ = ["derive_seed", "SeededTensorGenerator"]

_SEED_MODULUS = 2**63 - 1


def derive_seed(master_seed: int, purpose: str) -> int:
    """Derive a stable child seed from ``master_seed`` and a purpose label.

    The derivation uses SHA-256 so that distinct purposes ("detection-input",
    "dummy-filters/layer3", ...) map to uncorrelated seeds, and the result is
    identical across processes and Python versions (unlike ``hash``).
    """
    digest = hashlib.sha256(f"{master_seed}:{purpose}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % _SEED_MODULUS


class SeededTensorGenerator:
    """Generates reproducible pseudo-random tensors addressed by purpose.

    Args:
        master_seed: The single seed that must be stored in error-resistant
            memory.  Every tensor the generator produces is a pure function of
            this seed and the request arguments.
        low: Lower bound of the uniform distribution used for tensors.
        high: Upper bound of the uniform distribution used for tensors.

    The uniform range defaults to ``[-1, 1)`` which keeps activations in the
    detection pass well scaled for typical CNN weight magnitudes.
    """

    def __init__(self, master_seed: int = 0, low: float = -1.0, high: float = 1.0):
        if high <= low:
            raise ValueError(f"high ({high}) must be greater than low ({low})")
        self._master_seed = int(master_seed)
        self._low = float(low)
        self._high = float(high)

    @property
    def master_seed(self) -> int:
        """The stored master seed."""
        return self._master_seed

    def seed_for(self, purpose: str) -> int:
        """Return the derived child seed for ``purpose``."""
        return derive_seed(self._master_seed, purpose)

    def uniform(self, purpose: str, shape: ShapeLike) -> np.ndarray:
        """Return a float32 tensor of ``shape`` drawn uniformly from [low, high)."""
        shape = as_shape(shape)
        rng = np.random.default_rng(self.seed_for(purpose))
        values = rng.uniform(self._low, self._high, size=shape)
        return values.astype(FLOAT_DTYPE)

    def standard_normal(self, purpose: str, shape: ShapeLike) -> np.ndarray:
        """Return a float32 tensor of ``shape`` drawn from N(0, 1)."""
        shape = as_shape(shape)
        rng = np.random.default_rng(self.seed_for(purpose))
        return rng.standard_normal(size=shape).astype(FLOAT_DTYPE)

    def detection_input(self, shape: ShapeLike, batch: int = 1) -> np.ndarray:
        """Return the golden detection-phase input tensor of ``(batch, *shape)``."""
        shape = (int(batch),) + as_shape(shape)
        return self.uniform("detection-input", shape)

    def dummy_parameters(self, layer_name: str, shape: ShapeLike) -> np.ndarray:
        """Return dummy parameters for ``layer_name`` (e.g. extra filters/columns)."""
        return self.uniform(f"dummy-parameters/{layer_name}", shape)

    def dummy_inputs(self, layer_name: str, shape: ShapeLike) -> np.ndarray:
        """Return dummy input rows/patches for ``layer_name``."""
        return self.uniform(f"dummy-inputs/{layer_name}", shape)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SeededTensorGenerator(master_seed={self._master_seed}, "
            f"low={self._low}, high={self._high})"
        )
