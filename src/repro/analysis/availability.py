"""Availability / minimum-accuracy trade-off model (paper Sec. V-E, Eq. 6, Fig. 12).

The paper models a CNN system that periodically runs MILR error detection (time
``Td``), recovers when errors are found (time ``Tr``), and whose accuracy
degrades linearly with the number of accumulated uncorrected errors ``A(n)``.
Spending more time on detection/recovery lowers availability but keeps the
minimum accuracy high; running them rarely does the opposite.

This module reconstructs that trade-off with an explicit maintenance-period
parameterization: if detection+recovery is performed every ``tau`` seconds,

* availability  ``a(tau) = 1 - (Td * I + Tr) / tau``  (``I`` detection runs per
  period, one recovery), and
* minimum accuracy ``A(n(tau))`` with ``n(tau) = tau / Tbe`` the expected number
  of errors accumulated within a period (``Tbe`` = mean time between errors).

Sweeping ``tau`` traces the curve of Fig. 12; the paper's worked assumptions
(75,000 FIT/Mbit DRAM error rate, detection running twice between errors,
linear accuracy degradation over one year of expected errors) are provided as
defaults and helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ExperimentError

__all__ = ["AvailabilityPoint", "AvailabilityModel", "dram_error_interval_seconds"]

#: Errors per billion device-hours per Mbit (Schroeder et al., worst case used
#: by the paper).
DRAM_FIT_PER_MBIT = 75_000.0
_SECONDS_PER_HOUR = 3600.0
_SECONDS_PER_YEAR = 365.0 * 24.0 * _SECONDS_PER_HOUR


def dram_error_interval_seconds(model_bytes: int, fit_per_mbit: float = DRAM_FIT_PER_MBIT) -> float:
    """Mean time between memory errors (seconds) for a model of ``model_bytes``.

    ``fit_per_mbit`` is the error rate in errors per 10^9 device-hours per Mbit
    of memory; the paper uses 75,000 as the worst case from the DRAM field
    study it cites.
    """
    if model_bytes <= 0:
        raise ExperimentError("model_bytes must be positive")
    megabits = model_bytes * 8.0 / 1e6
    errors_per_hour = fit_per_mbit * megabits / 1e9
    if errors_per_hour <= 0:
        return float("inf")
    return _SECONDS_PER_HOUR / errors_per_hour


@dataclass(frozen=True)
class AvailabilityPoint:
    """One point of the availability / minimum-accuracy curve."""

    maintenance_period_seconds: float
    availability: float
    minimum_accuracy: float
    accumulated_errors: float


class AvailabilityModel:
    """Evaluates the accuracy/availability trade-off for one network.

    Args:
        detection_seconds: Time of one detection pass (``Td``).
        recovery_seconds: Time of one recovery pass (``Tr``); the paper uses
            the maximum recovery time expected for one year's worth of errors.
        error_interval_seconds: Mean time between errors (``Tbe``).
        detections_per_period: How many detection runs happen per maintenance
            period (``I``; the paper assumes detection runs twice between
            errors).
        yearly_accuracy_floor: Normalized accuracy after one year of
            accumulated, never-recovered errors.  Accuracy degrades linearly
            from 1.0 (zero errors) to this floor (errors expected in a year),
            matching the paper's assumption that ``A(n)`` is linear.
    """

    def __init__(
        self,
        detection_seconds: float,
        recovery_seconds: float,
        error_interval_seconds: float,
        detections_per_period: int = 2,
        yearly_accuracy_floor: float = 0.0,
    ):
        if detection_seconds < 0 or recovery_seconds < 0:
            raise ExperimentError("detection and recovery times must be non-negative")
        if error_interval_seconds <= 0:
            raise ExperimentError("error_interval_seconds must be positive")
        if detections_per_period < 1:
            raise ExperimentError("detections_per_period must be at least 1")
        if not 0.0 <= yearly_accuracy_floor <= 1.0:
            raise ExperimentError("yearly_accuracy_floor must be in [0, 1]")
        self.detection_seconds = float(detection_seconds)
        self.recovery_seconds = float(recovery_seconds)
        self.error_interval_seconds = float(error_interval_seconds)
        self.detections_per_period = int(detections_per_period)
        self.yearly_accuracy_floor = float(yearly_accuracy_floor)

    @classmethod
    def from_observations(
        cls,
        detection_seconds_samples: Sequence[float],
        recovery_seconds_samples: Sequence[float],
        *,
        error_interval_seconds: Optional[float] = None,
        observed_errors: Optional[int] = None,
        observation_seconds: Optional[float] = None,
        detections_per_period: int = 2,
        yearly_accuracy_floor: float = 0.0,
    ) -> "AvailabilityModel":
        """Build the model from *measured* detection/recovery times.

        This is the constructor used by the online service runtime: instead of
        the offline timing experiments it takes the detection and recovery
        durations an :class:`~repro.service.SLATracker` actually observed.

        The error-arrival rate comes from ``error_interval_seconds`` when
        given; otherwise it is estimated as ``observation_seconds /
        observed_errors``.  When no error was observed during the window the
        window length itself is used as a conservative lower bound on the mean
        time between errors ("at most one error per observation window").
        """
        detection_seconds = (
            float(np.mean(detection_seconds_samples)) if len(detection_seconds_samples) else 0.0
        )
        recovery_seconds = (
            float(np.mean(recovery_seconds_samples)) if len(recovery_seconds_samples) else 0.0
        )
        if error_interval_seconds is None:
            if observation_seconds is None or observation_seconds <= 0:
                raise ExperimentError(
                    "from_observations needs error_interval_seconds or a positive "
                    "observation_seconds"
                )
            errors = int(observed_errors or 0)
            if errors > 0:
                error_interval_seconds = observation_seconds / errors
            else:
                error_interval_seconds = observation_seconds
        return cls(
            detection_seconds=detection_seconds,
            recovery_seconds=recovery_seconds,
            error_interval_seconds=error_interval_seconds,
            detections_per_period=detections_per_period,
            yearly_accuracy_floor=yearly_accuracy_floor,
        )

    # ------------------------------------------------------------------ #
    @property
    def errors_per_year(self) -> float:
        """Expected number of errors accumulated over one year."""
        return _SECONDS_PER_YEAR / self.error_interval_seconds

    def accuracy_after_errors(self, error_count: float) -> float:
        """Linear accuracy-degradation model ``A(n)``."""
        if error_count <= 0:
            return 1.0
        per_year = max(self.errors_per_year, 1e-12)
        fraction = min(error_count / per_year, 1.0)
        return 1.0 - fraction * (1.0 - self.yearly_accuracy_floor)

    def maintenance_overhead_seconds(self) -> float:
        """Unavailable time per maintenance period (detections + one recovery)."""
        return self.detection_seconds * self.detections_per_period + self.recovery_seconds

    def evaluate_period(self, maintenance_period_seconds: float) -> AvailabilityPoint:
        """Availability and minimum accuracy for one maintenance period ``tau``."""
        overhead = self.maintenance_overhead_seconds()
        if maintenance_period_seconds <= overhead:
            raise ExperimentError(
                f"maintenance period {maintenance_period_seconds}s must exceed the "
                f"maintenance overhead {overhead}s"
            )
        availability = 1.0 - overhead / maintenance_period_seconds
        accumulated = maintenance_period_seconds / self.error_interval_seconds
        return AvailabilityPoint(
            maintenance_period_seconds=maintenance_period_seconds,
            availability=availability,
            minimum_accuracy=self.accuracy_after_errors(accumulated),
            accumulated_errors=accumulated,
        )

    def trade_off_curve(self, points: int = 50) -> list[AvailabilityPoint]:
        """Sweep the maintenance period and return the Fig. 12 curve."""
        if points < 2:
            raise ExperimentError("need at least 2 points for a curve")
        overhead = self.maintenance_overhead_seconds()
        shortest = max(overhead * 1.01, 1e-6)
        longest = max(self.error_interval_seconds * 1000.0, shortest * 10.0)
        periods = np.geomspace(shortest, longest, points)
        return [self.evaluate_period(float(tau)) for tau in periods]

    # ------------------------------------------------------------------ #
    def availability_for_accuracy(self, minimum_accuracy: float) -> float:
        """Best availability achievable while keeping accuracy above a floor.

        This answers the paper's "user A" question (e.g. accuracy >= 99.999%).
        """
        if not 0.0 <= minimum_accuracy <= 1.0:
            raise ExperimentError("minimum_accuracy must be in [0, 1]")
        # Invert A(n) to the largest tolerable error count, then the largest
        # tolerable maintenance period, then the availability it implies.
        degradation = 1.0 - self.yearly_accuracy_floor
        if degradation <= 0:
            return 1.0
        max_errors = (1.0 - minimum_accuracy) / degradation * self.errors_per_year
        max_period = max_errors * self.error_interval_seconds
        overhead = self.maintenance_overhead_seconds()
        if max_period <= overhead:
            return 0.0
        return 1.0 - overhead / max_period

    def accuracy_for_availability(self, availability: float) -> float:
        """Best minimum accuracy achievable at a given availability target.

        This answers the paper's "user B" question (e.g. availability >= 99.9%).
        """
        if not 0.0 <= availability < 1.0:
            raise ExperimentError("availability must be in [0, 1)")
        overhead = self.maintenance_overhead_seconds()
        period = overhead / (1.0 - availability)
        accumulated = period / self.error_interval_seconds
        return self.accuracy_after_errors(accumulated)
