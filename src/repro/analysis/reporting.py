"""Plain-text table formatting and campaign-store aggregation.

Besides the generic table renderers this module owns the campaign
aggregation layer: :func:`aggregate_campaign` folds the JSONL records of a
:class:`~repro.experiments.results.ResultStore` into one summary row per grid
cell (network x fault mode x scheme x sweep point) -- detection rate,
recovery rate, bit-exactness, accuracy with a confidence interval, mean
Td/Tr and the implied availability -- and
:func:`format_campaign_report` renders those rows as the paper-style result
table.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.analysis.availability import dram_error_interval_seconds
from repro.analysis.stats import mean_confidence_interval

__all__ = [
    "format_table",
    "format_storage_table",
    "format_series",
    "aggregate_campaign",
    "format_campaign_report",
]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [_format_cell(row.get(col, ""), precision) for col in columns] for row in rows
    ]
    widths = [
        max(len(str(col)), *(len(cells[i]) for cells in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for cells in rendered:
        lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_storage_table(comparison_rows: Iterable[Mapping[str, object]], title: str) -> str:
    """Render storage-overhead comparison rows (paper Tables V/VII/IX style)."""
    columns = ["network", "backup_weights_mb", "ecc_mb", "milr_mb", "ecc_and_milr_mb"]
    return format_table(list(comparison_rows), columns=columns, title=title, precision=2)


def format_series(
    x_label: str,
    y_label: str,
    points: Sequence[tuple[object, object]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render an (x, y) series as a two-column table (figure data)."""
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(rows, columns=[x_label, y_label], title=title, precision=precision)


# --------------------------------------------------------------------------- #
# Campaign aggregation

#: Columns that are pure functions of the campaign spec (identical across
#: runs and worker counts).
CAMPAIGN_BASE_COLUMNS = (
    "network",
    "fault_mode",
    "scheme",
    "point",
    "trials",
    "detection_rate",
    "recovery_rate",
    "bit_exact_rate",
    "acc_mean",
    "acc_lo",
    "acc_hi",
)
#: Columns derived from wall-clock measurements (vary run to run).
CAMPAIGN_TIMING_COLUMNS = ("mean_td_ms", "mean_tr_ms", "availability")


def _format_point(point: object) -> str:
    if point is None:
        return "-"
    if isinstance(point, float):
        return f"{point:g}"
    return str(point)


def _point_sort_key(point: object) -> tuple:
    if isinstance(point, (int, float)):
        return (0, float(point), "")
    return (1, 0.0, str(point))


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def aggregate_campaign(
    records: Iterable[Mapping[str, object]], confidence: float = 0.95
) -> list[dict[str, object]]:
    """Fold campaign records into one summary row per grid cell.

    Cells are keyed by (network, fault mode, sweep point, scheme).  Rates are
    computed over the trials where their denominator is defined: detection
    rate over trials that actually injected a fault, recovery rate over
    trials where detection fired (all flagged layers recovered), and
    bit-exactness over faulted trials.  Cells without a defined denominator
    render the value as an empty cell rather than a fake 0.

    ``mean_td``/``mean_tr`` average the non-zero measured detection/recovery
    times; availability evaluates the paper's Eq. 6 at one maintenance period
    per expected memory error (two detections + one recovery per period,
    error interval from the 75,000 FIT/Mbit DRAM model).
    """
    cells: dict[tuple, list[Mapping[str, object]]] = {}
    for record in records:
        spec = record["spec"]
        key = (spec["network"], spec["fault_mode"], spec["scheme"], spec["point"])
        cells.setdefault(key, []).append(record)

    rows: list[dict[str, object]] = []
    for key in sorted(
        cells,
        key=lambda cell: (cell[0], cell[1], _point_sort_key(cell[3]), cell[2]),
    ):
        network, fault_mode, scheme, point = key
        cell_records = sorted(
            cells[key], key=lambda record: record["spec"].get("trial_index", 0)
        )
        results = [record["result"] for record in cell_records]

        faulted = [result for result in results if result.get("faulted")]
        detected = [result for result in faulted if result.get("detected")]
        detection_rate: Union[float, str] = (
            len(detected) / len(faulted) if faulted else ""
        )
        recovery_rate: Union[float, str] = (
            sum(
                1
                for result in detected
                if result.get("recovered_layers", 0) == result.get("detected_layers", 0)
            )
            / len(detected)
            if detected
            else ""
        )
        bit_exact_rate: Union[float, str] = (
            sum(1 for result in faulted if result.get("bit_exact")) / len(faulted)
            if faulted
            else ""
        )

        accuracies = [
            result["normalized_accuracy"]
            for result in results
            if "normalized_accuracy" in result
        ]
        if accuracies:
            interval = mean_confidence_interval(accuracies, confidence)
            acc_mean: Union[float, str] = interval.mean
            acc_lo: Union[float, str] = interval.lower
            acc_hi: Union[float, str] = interval.upper
        else:
            acc_mean = acc_lo = acc_hi = ""

        detection_times = [
            result["detection_seconds"]
            for result in results
            if result.get("detection_seconds", 0.0) > 0.0
        ]
        recovery_times = [
            result["recovery_seconds"]
            for result in results
            if result.get("recovery_seconds", 0.0) > 0.0
        ]
        mean_td = _mean(detection_times) if detection_times else None
        mean_tr = _mean(recovery_times) if recovery_times else None

        availability: Union[float, str] = ""
        model_bytes = next(
            (result["model_bytes"] for result in results if result.get("model_bytes")), None
        )
        if mean_td is not None and model_bytes:
            error_interval = next(
                (
                    result["error_interval_seconds"]
                    for result in results
                    if result.get("error_interval_seconds")
                ),
                dram_error_interval_seconds(int(model_bytes)),
            )
            overhead = 2.0 * mean_td + (mean_tr or 0.0)
            availability = max(0.0, 1.0 - overhead / error_interval)

        rows.append(
            {
                "network": network,
                "fault_mode": fault_mode,
                "scheme": scheme,
                "point": _format_point(point),
                "trials": len(results),
                "detection_rate": detection_rate,
                "recovery_rate": recovery_rate,
                "bit_exact_rate": bit_exact_rate,
                "acc_mean": acc_mean,
                "acc_lo": acc_lo,
                "acc_hi": acc_hi,
                "mean_td_ms": 1e3 * mean_td if mean_td is not None else "",
                "mean_tr_ms": 1e3 * mean_tr if mean_tr is not None else "",
                "availability": availability,
            }
        )
    return rows


def format_campaign_report(
    records: Iterable[Mapping[str, object]],
    include_timing: bool = True,
    confidence: float = 0.95,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render a campaign store as per-cell summary tables.

    With ``include_timing=False`` the report contains only spec-deterministic
    columns, so it is byte-identical for any worker count, interruption or
    resume of the same campaign.
    """
    rows = aggregate_campaign(records, confidence=confidence)
    if title is None:
        title = (
            f"Campaign summary ({sum(row['trials'] for row in rows)} trials, "
            f"{confidence:.0%} confidence intervals)"
        )
    columns = list(CAMPAIGN_BASE_COLUMNS)
    if include_timing:
        columns += list(CAMPAIGN_TIMING_COLUMNS)
    return format_table(rows, columns=columns, title=title, precision=precision)
