"""Plain-text table formatting for experiment and benchmark output."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_storage_table", "format_series"]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [_format_cell(row.get(col, ""), precision) for col in columns] for row in rows
    ]
    widths = [
        max(len(str(col)), *(len(cells[i]) for cells in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for cells in rendered:
        lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_storage_table(comparison_rows: Iterable[Mapping[str, object]], title: str) -> str:
    """Render storage-overhead comparison rows (paper Tables V/VII/IX style)."""
    columns = ["network", "backup_weights_mb", "ecc_mb", "milr_mb", "ecc_and_milr_mb"]
    return format_table(list(comparison_rows), columns=columns, title=title, precision=2)


def format_series(
    x_label: str,
    y_label: str,
    points: Sequence[tuple[object, object]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render an (x, y) series as a two-column table (figure data)."""
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(rows, columns=[x_label, y_label], title=title, precision=precision)
