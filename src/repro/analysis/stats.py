"""Summary statistics matching the paper's box plots."""

from __future__ import annotations

from dataclasses import dataclass
from statistics import NormalDist
from typing import Sequence

import numpy as np

__all__ = [
    "BoxPlotStats",
    "MeanConfidenceInterval",
    "mean_confidence_interval",
    "normalized_accuracy",
    "summarize_runs",
]


def normalized_accuracy(accuracy: float, baseline_accuracy: float) -> float:
    """Accuracy relative to the error-free model (the paper's y-axis).

    A baseline of zero would make the ratio meaningless; in that degenerate
    case the raw accuracy is returned.
    """
    if baseline_accuracy <= 0.0:
        return accuracy
    return accuracy / baseline_accuracy


@dataclass(frozen=True)
class BoxPlotStats:
    """Five-number summary (plus whiskers/outliers) used by the paper's figures.

    The whiskers extend 1.5x the inter-quartile range beyond the quartiles,
    clipped to the observed min/max, exactly as described in Sec. V-B.
    """

    count: int
    minimum: float
    first_quartile: float
    median: float
    third_quartile: float
    maximum: float
    mean: float
    lower_whisker: float
    upper_whisker: float
    outliers: tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BoxPlotStats":
        values = np.asarray(list(samples), dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot summarize an empty sample set")
        q1, median, q3 = np.percentile(values, [25, 50, 75])
        iqr = q3 - q1
        low_fence = q1 - 1.5 * iqr
        high_fence = q3 + 1.5 * iqr
        in_fence = values[(values >= low_fence) & (values <= high_fence)]
        lower_whisker = float(in_fence.min()) if in_fence.size else float(values.min())
        upper_whisker = float(in_fence.max()) if in_fence.size else float(values.max())
        outliers = tuple(
            float(v) for v in values[(values < low_fence) | (values > high_fence)]
        )
        return cls(
            count=int(values.size),
            minimum=float(values.min()),
            first_quartile=float(q1),
            median=float(median),
            third_quartile=float(q3),
            maximum=float(values.max()),
            mean=float(values.mean()),
            lower_whisker=lower_whisker,
            upper_whisker=upper_whisker,
            outliers=outliers,
        )

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary view (useful for CSV / table output)."""
        return {
            "count": self.count,
            "min": self.minimum,
            "q1": self.first_quartile,
            "median": self.median,
            "q3": self.third_quartile,
            "max": self.maximum,
            "mean": self.mean,
        }


@dataclass(frozen=True)
class MeanConfidenceInterval:
    """Normal-approximation confidence interval for a sample mean.

    Used by the campaign aggregation tables.  With a single sample (or zero
    variance) the interval degenerates to the mean itself.
    """

    mean: float
    lower: float
    upper: float
    confidence: float
    count: int

    @property
    def half_width(self) -> float:
        return (self.upper - self.lower) / 2.0


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> MeanConfidenceInterval:
    """Confidence interval of the mean (normal approximation, sample stddev).

    ``half_width = z * s / sqrt(n)`` with ``z`` the two-sided normal quantile
    for ``confidence`` and ``s`` the (ddof=1) sample standard deviation.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    values = np.asarray(list(samples), dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot build a confidence interval from zero samples")
    mean = float(values.mean())
    if values.size == 1:
        return MeanConfidenceInterval(mean, mean, mean, confidence, 1)
    z = NormalDist().inv_cdf((1.0 + confidence) / 2.0)
    half = z * float(values.std(ddof=1)) / float(np.sqrt(values.size))
    return MeanConfidenceInterval(
        mean=mean,
        lower=mean - half,
        upper=mean + half,
        confidence=confidence,
        count=int(values.size),
    )


def summarize_runs(samples_by_key: dict, sort_keys: bool = True) -> dict[str, BoxPlotStats]:
    """Summarize a mapping ``key -> list of samples`` into box-plot statistics."""
    keys = sorted(samples_by_key) if sort_keys else list(samples_by_key)
    return {str(key): BoxPlotStats.from_samples(samples_by_key[key]) for key in keys}
