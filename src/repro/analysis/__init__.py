"""Analysis utilities: summary statistics, the availability model and reporting."""

from repro.analysis.availability import (
    AvailabilityModel,
    AvailabilityPoint,
    dram_error_interval_seconds,
)
from repro.analysis.stats import BoxPlotStats, normalized_accuracy, summarize_runs
from repro.analysis.reporting import format_table, format_storage_table, format_series

__all__ = [
    "BoxPlotStats",
    "normalized_accuracy",
    "summarize_runs",
    "AvailabilityModel",
    "AvailabilityPoint",
    "dram_error_interval_seconds",
    "format_table",
    "format_storage_table",
    "format_series",
]
