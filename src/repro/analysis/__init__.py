"""Analysis utilities: summary statistics, the availability model and reporting."""

from repro.analysis.availability import (
    AvailabilityModel,
    AvailabilityPoint,
    dram_error_interval_seconds,
)
from repro.analysis.stats import (
    BoxPlotStats,
    MeanConfidenceInterval,
    mean_confidence_interval,
    normalized_accuracy,
    summarize_runs,
)
from repro.analysis.reporting import (
    aggregate_campaign,
    format_campaign_report,
    format_series,
    format_storage_table,
    format_table,
)

__all__ = [
    "BoxPlotStats",
    "MeanConfidenceInterval",
    "mean_confidence_interval",
    "normalized_accuracy",
    "summarize_runs",
    "AvailabilityModel",
    "AvailabilityPoint",
    "dram_error_interval_seconds",
    "aggregate_campaign",
    "format_campaign_report",
    "format_table",
    "format_storage_table",
    "format_series",
]
