"""Compiled forward execution plans -- the inference fast path.

A :class:`ForwardPlan` is compiled per ``(layer stack, input shape, batch
size)`` and replays exactly the same numpy operations as the layers' own
``forward`` methods -- same operand values, dtypes and memory layouts, so the
planned forward is **bit-identical** to the seed forward -- while skipping
everything that makes the per-call path slow:

* im2col / pooling gather indices and padding geometry are precomputed once
  and shared process-wide (:mod:`repro.nn.tensor_utils` caches them per
  geometry, so every batch size and every model with the same layer geometry
  reuses the same index arrays),
* every intermediate (padded input, patch matrix, layer output) is written
  into a preallocated scratch buffer reused across calls -- the steady state
  allocates nothing except the final output copy handed to the caller,
* training-only bookkeeping (``_last_patches``, padded-shape capture,
  activation caching) is never touched; the solver/inversion paths keep using
  ``layer.forward(..., training=True)`` when they need those captures.

Weight coherence: a plan captures each parameterized layer's
``weights_version`` epoch together with the weight arrays themselves.
:class:`~repro.nn.model.Sequential` checks the epochs with cheap integer
compares on every planned call and recompiles when any layer was mutated
(fault injection, repair, quarantine lift, a training step).  The service
runtime additionally revalidates plans against blake2b weight fingerprints
when quarantine is lifted (:meth:`ForwardPlan.fingerprints_match`): a
bit-exact repair restores the exact golden bytes, so a plan compiled on the
golden weights stays valid and is kept.

An opt-in ``fused=True`` mode folds Bias adds and BatchNorm affines into the
adjacent Conv2D / DepthwiseConv2D / Dense matmul output (BatchNorm scales are
folded into the kernel itself).  Fused outputs are *not* bit-identical -- they
are verified to tolerance in the test suite -- so fusion is never the default.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.layers.activation import Activation
from repro.nn.layers.base import Layer
from repro.nn.layers.batchnorm import BatchNorm
from repro.nn.layers.bias import Bias
from repro.nn.layers.conv2d import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.depthwise import DepthwiseConv2D
from repro.nn.layers.pooling import _Pool2D
from repro.nn.layers.structural import Flatten, ZeroPadding2D
from repro.nn.tensor_utils import im2col_into, pad_same_amounts
from repro.types import FLOAT_DTYPE

__all__ = [
    "PlanStats",
    "ScratchGuard",
    "ForwardPlan",
    "compile_plan",
    "plan_weight_fingerprint",
]

#: A compiled per-layer step: reads the previous activation, returns the next
#: one (usually a plan-owned scratch buffer).
PlanStep = Callable[[np.ndarray], np.ndarray]


@dataclass
class ScratchGuard:
    """Canary over a pinned scratch buffer's zero border.

    Padding buffers (conv/depthwise ``pad_buf``, zero-padding ``out_buf``)
    rely on a cross-call invariant: everything outside the interior window
    stays exactly zero.  A memory fault in that border silently corrupts every
    subsequent planned forward -- and lives outside the weights, so
    :class:`CheckpointStore` detection cannot see it.  The guard makes the
    invariant checkable in O(buffer) with no stored golden copy: the buffer's
    nonzero count must equal the interior's nonzero count.
    """

    layer_name: str
    buffer: np.ndarray
    interior: tuple[slice, ...]

    def is_clean(self) -> bool:
        """Whether the border invariant holds (no nonzeros outside interior)."""
        return int(np.count_nonzero(self.buffer)) == int(
            np.count_nonzero(self.buffer[self.interior])
        )

    def scrub(self) -> None:
        """Re-establish the invariant.  Zeroing the whole buffer is safe: the
        interior is fully rewritten at the start of every planned call."""
        self.buffer.fill(0.0)

    def border_indices(self) -> np.ndarray:
        """Flat indices (into ``buffer.ravel()``) of the guarded border."""
        mask = np.ones(self.buffer.shape, dtype=bool)
        mask[self.interior] = False
        return np.flatnonzero(mask)


def plan_weight_fingerprint(weights: np.ndarray) -> bytes:
    """Blake2b digest of a weight array's raw bytes.

    Byte-for-byte the same digest as
    :func:`repro.core.checkpoint.weight_fingerprint` (redeclared here so the
    ``nn`` substrate does not depend on the MILR core): two arrays share a
    fingerprint exactly when their bit patterns are identical, which is what
    lets a plan survive a bit-exact repair unchanged.
    """
    return hashlib.blake2b(
        np.ascontiguousarray(weights).tobytes(), digest_size=16
    ).digest()


@dataclass
class PlanStats:
    """Counters of the per-model plan cache (observable in tests/service)."""

    #: Plans compiled from scratch (cold key or after an invalidation).
    compiles: int = 0
    #: Planned calls served by a cached, weight-coherent plan.
    hits: int = 0
    #: Cached plans discarded because weights changed under them (stale epoch
    #: on lookup, or a failed fingerprint revalidation sweep).
    invalidations: int = 0
    #: Dirty scratch-buffer borders caught (and healed) by the per-serve
    #: canary check before they could corrupt a planned forward.
    scratch_detections: int = 0


class ForwardPlan:
    """One compiled forward pass for a fixed batch size.

    Created by :func:`compile_plan`; executed (and cached, invalidated,
    revalidated) by :class:`~repro.nn.model.Sequential`.
    """

    __slots__ = (
        "batch_size",
        "fused",
        "_steps",
        "_captured",
        "_result_provenance",
        "_guards",
    )

    def __init__(
        self,
        batch_size: int,
        fused: bool,
        steps: list[PlanStep],
        captured: list[tuple[Layer, int, bytes]],
        result_provenance: str = "scratch",
    ):
        self.batch_size = batch_size
        self.fused = fused
        self._steps = steps
        #: ``(layer, weights_version at compile, blake2b fingerprint at
        #: compile)`` for every parameterized layer the plan touched.
        self._captured = captured
        self._result_provenance = result_provenance
        self._guards = tuple(
            step.scratch_guard for step in steps if hasattr(step, "scratch_guard")
        )

    @property
    def scratch_guards(self) -> tuple[ScratchGuard, ...]:
        """Canaries over every pinned padding buffer the plan owns."""
        return self._guards

    def verify_scratch(self) -> int:
        """Check every scratch canary, healing dirty borders.

        Returns the number of dirty buffers found (0 on the clean fast path,
        which costs one ``count_nonzero`` pass per pinned buffer).
        """
        dirty = 0
        for guard in self._guards:
            if not guard.is_clean():
                guard.scrub()
                dirty += 1
        return dirty

    # ------------------------------------------------------------------ #
    def execute(self, inputs: np.ndarray) -> np.ndarray:
        """Run the compiled steps; returns a caller-owned output array."""
        if inputs.shape[0] != self.batch_size:
            raise ShapeError(
                f"plan compiled for batch size {self.batch_size}, "
                f"got {inputs.shape[0]}"
            )
        current = inputs
        for step in self._steps:
            current = step(current)
        if self._result_provenance == "fresh":
            # The last step allocated its result (e.g. softmax): hand it out.
            return current
        # Detach the result from the plan's scratch buffers (or the caller's
        # own input, for all-passthrough stacks): the caller may keep it
        # across the next planned call.
        return np.array(current)

    # ------------------------------------------------------------------ #
    def epochs_current(self) -> bool:
        """Cheap per-call weight-coherence check (integer compares only)."""
        for layer, version, _digest in self._captured:
            if layer.weights_version != version:
                return False
        return True

    def fingerprints_match(self) -> bool:
        """Whether every captured layer's weights are byte-identical to the
        bytes the plan was compiled from (blake2b comparison)."""
        for layer, _version, digest in self._captured:
            if plan_weight_fingerprint(layer.get_weights()) != digest:
                return False
        return True

    def refresh_epochs(self) -> None:
        """Re-arm :meth:`epochs_current` after fingerprints confirmed the
        weights are byte-identical (e.g. following a bit-exact repair)."""
        self._captured = [
            (layer, layer.weights_version, digest)
            for layer, _version, digest in self._captured
        ]


# ---------------------------------------------------------------------- #
# Step builders
# ---------------------------------------------------------------------- #
def _conv_geometry(layer) -> tuple[int, int, int, int, Optional[tuple[int, int]]]:
    """Padded spatial dims and the interior origin for a conv-like layer."""
    height, width, channels = layer.input_shape
    if layer.padding == "same":
        pad_h = pad_same_amounts(height, layer.kernel_size[0], layer.stride[0])
        pad_w = pad_same_amounts(width, layer.kernel_size[1], layer.stride[1])
        return (
            height + pad_h[0] + pad_h[1],
            width + pad_w[0] + pad_w[1],
            channels,
            height,
            (pad_h[0], pad_w[0]),
        )
    return height, width, channels, height, None


def _affine_fold(
    kernel_matrix: np.ndarray, affine: Optional[Layer]
) -> tuple[np.ndarray, Optional[np.ndarray]]:
    """Fold a following Bias/BatchNorm into ``(kernel_matrix, add_vector)``."""
    if affine is None:
        return kernel_matrix, None
    if isinstance(affine, Bias):
        return kernel_matrix, affine.values
    assert isinstance(affine, BatchNorm)
    folded = np.ascontiguousarray(
        kernel_matrix * affine.gamma[None, :], dtype=FLOAT_DTYPE
    )
    return folded, affine.beta


def _conv_step(layer: Conv2D, batch: int, affine: Optional[Layer]) -> PlanStep:
    padded_h, padded_w, channels, height, origin = _conv_geometry(layer)
    width = layer.input_shape[1]
    out_h, out_w, filters = layer.output_shape
    f1, f2 = layer.kernel_size
    stride = layer.stride
    positions = out_h * out_w
    taps = f1 * f2 * channels
    patch_buf = np.empty((batch, positions, taps), dtype=FLOAT_DTYPE)
    patch_mat = patch_buf.reshape(batch * positions, taps)
    patch_split = patch_buf.reshape(batch, out_h, out_w, f1, f2, channels)
    out_buf = np.empty((batch, out_h, out_w, filters), dtype=FLOAT_DTYPE)
    out_mat = out_buf.reshape(batch * positions, filters)
    pad_buf = (
        np.zeros((batch, padded_h, padded_w, channels), dtype=FLOAT_DTYPE)
        if origin is not None
        else None
    )
    top, left = origin if origin is not None else (0, 0)
    kernel_matrix, add_values = _affine_fold(layer.kernel_matrix(), affine)

    def run(x: np.ndarray) -> np.ndarray:
        if pad_buf is not None:
            pad_buf[:, top : top + height, left : left + width, :] = x
            source = pad_buf
        else:
            source = x
        im2col_into(source, (f1, f2), stride, patch_split)
        np.matmul(patch_mat, kernel_matrix, out=out_mat)
        if add_values is not None:
            np.add(out_buf, add_values, out=out_buf)
        return out_buf

    if pad_buf is not None:
        run.scratch_guard = ScratchGuard(
            layer.name,
            pad_buf,
            (slice(None), slice(top, top + height), slice(left, left + width), slice(None)),
        )
    return run


def _depthwise_step(
    layer: DepthwiseConv2D, batch: int, affine: Optional[Layer]
) -> PlanStep:
    padded_h, padded_w, channels, height, origin = _conv_geometry(layer)
    width = layer.input_shape[1]
    out_h, out_w, _ = layer.output_shape
    f1, f2 = layer.kernel_size
    stride = layer.stride
    positions = out_h * out_w
    taps = layer.taps_per_channel
    patch_buf = np.empty((batch, positions, taps * channels), dtype=FLOAT_DTYPE)
    patch_split = patch_buf.reshape(batch, out_h, out_w, f1, f2, channels)
    split = patch_buf.reshape(batch, out_h, out_w, taps, channels)
    out_buf = np.empty((batch, out_h, out_w, channels), dtype=FLOAT_DTYPE)
    pad_buf = (
        np.zeros((batch, padded_h, padded_w, channels), dtype=FLOAT_DTYPE)
        if origin is not None
        else None
    )
    top, left = origin if origin is not None else (0, 0)
    kernel_matrix, add_values = _affine_fold(layer.kernel_matrix(), affine)

    def run(x: np.ndarray) -> np.ndarray:
        if pad_buf is not None:
            pad_buf[:, top : top + height, left : left + width, :] = x
            source = pad_buf
        else:
            source = x
        im2col_into(source, (f1, f2), stride, patch_split)
        np.einsum("bhwkc,kc->bhwc", split, kernel_matrix, out=out_buf)
        if add_values is not None:
            np.add(out_buf, add_values, out=out_buf)
        return out_buf

    if pad_buf is not None:
        run.scratch_guard = ScratchGuard(
            layer.name,
            pad_buf,
            (slice(None), slice(top, top + height), slice(left, left + width), slice(None)),
        )
    return run


def _dense_step(layer: Dense, batch: int, affine: Optional[Layer]) -> PlanStep:
    out_buf = np.empty((batch, layer.units), dtype=FLOAT_DTYPE)
    weights, add_values = _affine_fold(layer.weights, affine)

    def run(x: np.ndarray) -> np.ndarray:
        np.matmul(x, weights, out=out_buf)
        if add_values is not None:
            np.add(out_buf, add_values, out=out_buf)
        return out_buf

    return run


def _bias_step(layer: Bias, batch: int, inplace: bool) -> PlanStep:
    values = layer.values
    if inplace:
        # The incoming activation is plan-owned scratch: add into it directly,
        # keeping the block's working set to one hot buffer.  Same values as
        # the out-of-place add, so still bit-identical.
        def run(x: np.ndarray) -> np.ndarray:
            np.add(x, values, out=x)
            return x

        return run
    out_buf = np.empty((batch,) + layer.output_shape, dtype=FLOAT_DTYPE)

    def run(x: np.ndarray) -> np.ndarray:
        np.add(x, values, out=out_buf)
        return out_buf

    return run


def _batchnorm_step(layer: BatchNorm, batch: int, inplace: bool) -> PlanStep:
    gamma, beta = layer.gamma, layer.beta
    if inplace:

        def run(x: np.ndarray) -> np.ndarray:
            np.multiply(x, gamma, out=x)
            np.add(x, beta, out=x)
            return x

        return run
    out_buf = np.empty((batch,) + layer.output_shape, dtype=FLOAT_DTYPE)

    def run(x: np.ndarray) -> np.ndarray:
        np.multiply(x, gamma, out=out_buf)
        np.add(out_buf, beta, out=out_buf)
        return out_buf

    return run


def _activation_step(layer: Activation, batch: int, inplace: bool) -> PlanStep:
    if layer.function == "linear":
        return lambda x: x
    if layer.function == "relu":
        if inplace:

            def run(x: np.ndarray) -> np.ndarray:
                np.maximum(x, 0.0, out=x)
                return x

            return run
        out_buf = np.empty((batch,) + layer.output_shape, dtype=FLOAT_DTYPE)

        def run(x: np.ndarray) -> np.ndarray:
            np.maximum(x, 0.0, out=out_buf)
            return out_buf

        return run
    # Softmax / sigmoid / tanh allocate internally (they upcast through
    # float64 exactly like the seed path); they sit on tiny head tensors.
    return layer.forward_function


def _pool_step(layer: _Pool2D, batch: int) -> PlanStep:
    height, width, channels = layer.input_shape
    out_h, out_w, _ = layer.output_shape
    p1, p2 = layer.pool_size
    s1, s2 = layer.stride
    out_buf = np.empty((batch, out_h, out_w, channels), dtype=FLOAT_DTYPE)

    if layer.window_reduce == "max":
        # Fold np.maximum over the P1*P2 shifted strided views instead of
        # materializing the window tensor.  A left fold in row-major window
        # order is bit-identical to the seed's windowed ``max(axis=3)`` for
        # every input: np.maximum keeps the first operand on ties (so the
        # leftmost maximal element wins in both formulations, signed zeros
        # included) and NaN propagates under any order.
        offsets = [(a, b) for a in range(p1) for b in range(p2)]

        def run(x: np.ndarray) -> np.ndarray:
            np.copyto(
                out_buf, x[:, 0 : out_h * s1 : s1, 0 : out_w * s2 : s2, :]
            )
            for a, b in offsets[1:]:
                np.maximum(
                    out_buf,
                    x[:, a : a + out_h * s1 : s1, b : b + out_w * s2 : s2, :],
                    out=out_buf,
                )
            return out_buf

        return run

    win_buf = np.empty((batch, out_h, out_w, p1 * p2, channels), dtype=FLOAT_DTYPE)
    win_split = win_buf.reshape(batch, out_h, out_w, p1, p2, channels)

    def run(x: np.ndarray) -> np.ndarray:
        # Mean pooling keeps the windowed form: np.mean's reduction order over
        # the window axis is part of the bit pattern, so the seed's window
        # tensor is reproduced (allocation-free -- the window buffer is the
        # same memory layout as an im2col patch buffer).
        im2col_into(x, (p1, p2), layer.stride, win_split)
        np.mean(win_buf, axis=3, out=out_buf)
        return out_buf

    return run


def _zeropad_step(layer: ZeroPadding2D, batch: int) -> PlanStep:
    height, width, _ = layer.input_shape
    out_buf = np.zeros((batch,) + layer.output_shape, dtype=FLOAT_DTYPE)
    pad_h, pad_w = layer.pad_h, layer.pad_w

    def run(x: np.ndarray) -> np.ndarray:
        out_buf[:, pad_h : pad_h + height, pad_w : pad_w + width, :] = x
        return out_buf

    run.scratch_guard = ScratchGuard(
        layer.name,
        out_buf,
        (slice(None), slice(pad_h, pad_h + height), slice(pad_w, pad_w + width), slice(None)),
    )
    return run


#: Provenance of the current activation while compiling, deciding whether an
#: elementwise step may mutate it in place and whether the final result must
#: be copied out of plan scratch:
#:   "input"   -- the caller's array (or a view of it): never mutate.
#:   "scratch" -- a plan-owned reusable buffer: mutable, copy before return.
#:   "pinned"  -- plan-owned scratch with a cross-call invariant (e.g. the
#:                pre-zeroed borders of a padding buffer): never mutate.
#:   "fresh"   -- allocated anew on every call: mutable, returnable as-is.
_INPUT, _SCRATCH, _PINNED, _FRESH = "input", "scratch", "pinned", "fresh"


def _build_step(
    layer: Layer, batch: int, affine: Optional[Layer], provenance: str
) -> tuple[PlanStep, str]:
    mutable = provenance in (_SCRATCH, _FRESH)
    if isinstance(layer, Conv2D):
        return _conv_step(layer, batch, affine), _SCRATCH
    if isinstance(layer, DepthwiseConv2D):
        return _depthwise_step(layer, batch, affine), _SCRATCH
    if isinstance(layer, Dense):
        return _dense_step(layer, batch, affine), _SCRATCH
    assert affine is None
    if isinstance(layer, Bias):
        return _bias_step(layer, batch, mutable), _SCRATCH if not mutable else provenance
    if isinstance(layer, BatchNorm):
        return (
            _batchnorm_step(layer, batch, mutable),
            _SCRATCH if not mutable else provenance,
        )
    if isinstance(layer, Activation):
        if layer.function == "linear":
            return lambda x: x, provenance
        if layer.function == "relu":
            return (
                _activation_step(layer, batch, mutable),
                _SCRATCH if not mutable else provenance,
            )
        return _activation_step(layer, batch, False), _FRESH
    if isinstance(layer, _Pool2D) and layer.window_reduce in ("max", "mean"):
        return _pool_step(layer, batch), _SCRATCH
    if isinstance(layer, Flatten):
        # A reshape is a view: the result keeps its source's provenance.
        return lambda x: x.reshape(batch, -1), provenance
    if isinstance(layer, ZeroPadding2D):
        # The padding buffer's zero borders persist across calls; an in-place
        # elementwise step downstream would corrupt them.
        return _zeropad_step(layer, batch), _PINNED
    if layer.is_passthrough:
        return lambda x: x, provenance
    # Unknown layer type: fall back to the layer's own inference forward.
    # Bit-identical by definition, just without the fast-path savings.  The
    # conservative "input" provenance forbids in-place mutation downstream
    # (the layer might return its input, or a view of it, unchanged).
    return lambda x: layer.forward(x, training=False), _INPUT


def _fusable(layer: Layer, following: Optional[Layer]) -> bool:
    return isinstance(layer, (Conv2D, DepthwiseConv2D, Dense)) and isinstance(
        following, (Bias, BatchNorm)
    )


def compile_plan(model, batch_size: int, fused: bool = False) -> ForwardPlan:
    """Compile one :class:`ForwardPlan` for ``model`` at ``batch_size``.

    ``model`` must be built.  With ``fused=True`` each Conv2D /
    DepthwiseConv2D / Dense layer immediately followed by a Bias or BatchNorm
    consumes that affine into its own matmul step (tolerance-equivalent, not
    bit-identical).
    """
    if batch_size < 0:
        raise ShapeError(f"batch size must be non-negative, got {batch_size}")
    steps: list[PlanStep] = []
    captured: list[tuple[Layer, int, bytes]] = []
    layers = list(model.layers)
    index = 0
    provenance = _INPUT
    while index < len(layers):
        layer = layers[index]
        following = layers[index + 1] if index + 1 < len(layers) else None
        affine = following if fused and _fusable(layer, following) else None
        step, provenance = _build_step(layer, batch_size, affine, provenance)
        steps.append(step)
        consumed = (layer, affine) if affine is not None else (layer,)
        for member in consumed:
            if member.has_parameters:
                captured.append(
                    (
                        member,
                        member.weights_version,
                        plan_weight_fingerprint(member.get_weights()),
                    )
                )
        index += 2 if affine is not None else 1
    return ForwardPlan(batch_size, fused, steps, captured, provenance)
