"""Compiled forward execution plans -- the inference fast path.

A :class:`ForwardPlan` is compiled per ``(layer stack, input shape, batch
size)`` and replays exactly the same numpy operations as the layers' own
``forward`` methods -- same operand values, dtypes and memory layouts, so the
planned forward is **bit-identical** to the seed forward -- while skipping
everything that makes the per-call path slow:

* im2col / pooling gather indices and padding geometry are precomputed once
  and shared process-wide (:mod:`repro.nn.tensor_utils` caches them per
  geometry, so every batch size and every model with the same layer geometry
  reuses the same index arrays),
* stride-1 convolutions skip the windowed im2col copy entirely: a width-only
  patch buffer (``F2*C`` copied elements per position instead of ``F1*F2*C``)
  is consumed through an overlapping strided view by ``np.matmul`` directly
  (:func:`~repro.nn.tensor_utils.direct_patch_view`).  Exact plans only adopt
  this formulation after a compile-time *probe* proves the strided GEMM is
  byte-identical to the reference im2col GEMM at that geometry (BLAS kernel
  dispatch is shape-dependent, not value-dependent, so probe equality
  certifies the algorithm); geometries that fail the probe keep the im2col
  formulation, preserving the bit-identity guarantee unconditionally,
* conv→(bias)→ReLU→maxpool chains compile into one scratch pass: the affine
  add, the ReLU and the pooling fold all run on the conv's own output buffer,
  so intermediate activations never round-trip through extra full-size
  buffers,
* every intermediate is written into a preallocated scratch buffer reused
  across calls -- the steady state allocates nothing except the final output
  copy handed to the caller,
* training-only bookkeeping (``_last_patches``, padded-shape capture,
  activation caching) is never touched; the solver/inversion paths keep using
  ``layer.forward(..., training=True)`` when they need those captures.

Weight coherence: a plan captures each parameterized layer's
``weights_version`` epoch together with the weight arrays themselves.
:class:`~repro.nn.model.Sequential` checks the epochs with cheap integer
compares on every planned call and recompiles when any layer was mutated
(fault injection, repair, quarantine lift, a training step).  The service
runtime additionally revalidates plans against blake2b weight fingerprints
when quarantine is lifted (:meth:`ForwardPlan.fingerprints_match`): a
bit-exact repair restores the exact golden bytes, so a plan compiled on the
golden weights stays valid and is kept -- together with its fusion
certificate.

Fused mode (``fused=True``) folds Bias adds and BatchNorm affines into the
adjacent Conv2D / DepthwiseConv2D / Dense matmul (BatchNorm scales are folded
into the kernel itself) and always uses the direct strided-view conv
formulation.  Fused outputs are *not* bit-identical; they are certified
per ``(network weight fingerprint, batch size)`` by
:func:`certify_fusion` -- a seeded calibration batch through the fused and
exact plans with the max ULP divergence bounded -- before the service serves
them by default.  Uncertified networks silently fall back to the bit-exact
plan; ``use_plan=False`` stays the oracle.

For large batches (``>= 256``) a fused plan splits the batch across a
plan-owned thread pool (numpy's BLAS kernels release the GIL) and merges the
disjoint slice results in index order, so planned outputs stay byte-stable
regardless of thread scheduling.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.layers.activation import Activation
from repro.nn.layers.base import Layer
from repro.nn.layers.batchnorm import BatchNorm
from repro.nn.layers.bias import Bias
from repro.nn.layers.conv2d import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.depthwise import DepthwiseConv2D
from repro.nn.layers.pooling import _Pool2D
from repro.nn.layers.structural import Flatten, ZeroPadding2D
from repro.nn.tensor_utils import (
    direct_patch_view,
    im2col_into,
    im2col_width_into,
    pad_same_amounts,
)
from repro.types import FLOAT_DTYPE

__all__ = [
    "PlanStats",
    "ScratchGuard",
    "ForwardPlan",
    "SlicedForwardPlan",
    "FusionCertificate",
    "compile_plan",
    "certify_fusion",
    "ulp_distance",
    "plan_weight_fingerprint",
    "DEFAULT_ULP_BOUND",
]

#: A compiled per-layer step: reads the previous activation, returns the next
#: one (usually a plan-owned scratch buffer).
PlanStep = Callable[[np.ndarray], np.ndarray]

#: Default max ULP divergence tolerated between fused and exact outputs for a
#: network to be certified for fused serving.  Affine folds and the reblocked
#: direct GEMMs perturb the arithmetic by a relative ~1e-7 per layer, which
#: lands at a few hundred ULP after the softmax head (small probabilities
#: amplify lattice distance); a flipped high-order weight bit moves outputs
#: by *millions* of ULP, so 1024 separates the two regimes by several orders
#: of magnitude while rejecting any genuinely divergent fold.
DEFAULT_ULP_BOUND = 1024

#: Smallest batch the fused path will split across the slice thread pool.
SLICE_MIN_BATCH = 256

#: Seed for the compile-time GEMM bit-identity probes.
_PROBE_SEED = 0x9E3779B9
#: Seed base for the fusion-certification calibration batches.
_CALIBRATION_SEED = 0xC417


@dataclass
class ScratchGuard:
    """Canary over a pinned scratch buffer's zero border.

    Padding buffers (conv/depthwise ``pad_buf``, zero-padding ``out_buf``)
    rely on a cross-call invariant: everything outside the interior window
    stays exactly zero.  A memory fault in that border silently corrupts every
    subsequent planned forward -- and lives outside the weights, so
    :class:`CheckpointStore` detection cannot see it.  The guard makes the
    invariant checkable in O(border) with no stored golden copy: the border
    decomposes into per-axis hyperslabs, each of which must be all-zero.
    """

    layer_name: str
    buffer: np.ndarray
    interior: tuple[slice, ...]

    def _border_slabs(self) -> list[tuple[slice, ...]]:
        """Disjoint slab views that exactly cover the complement of the
        interior: for each axis, everything before/after the interior range,
        restricted to the interior of the preceding axes."""
        slabs: list[tuple[slice, ...]] = []
        pre: list[slice] = []
        for axis, window in enumerate(self.interior):
            start, stop, _ = window.indices(self.buffer.shape[axis])
            if start > 0:
                slabs.append(tuple(pre) + (slice(0, start),))
            if stop < self.buffer.shape[axis]:
                slabs.append(tuple(pre) + (slice(stop, None),))
            pre.append(window)
        return slabs

    def is_clean(self) -> bool:
        """Whether the border invariant holds (no nonzeros outside interior)."""
        return not any(self.buffer[slab].any() for slab in self._border_slabs())

    def scrub(self) -> None:
        """Re-establish the invariant.  Zeroing the whole buffer is safe: the
        interior is fully rewritten at the start of every planned call."""
        self.buffer.fill(0.0)

    def border_indices(self) -> np.ndarray:
        """Flat indices (into ``buffer.ravel()``) of the guarded border."""
        mask = np.ones(self.buffer.shape, dtype=bool)
        mask[self.interior] = False
        return np.flatnonzero(mask)


def plan_weight_fingerprint(weights: np.ndarray) -> bytes:
    """Blake2b digest of a weight array's raw bytes.

    Byte-for-byte the same digest as
    :func:`repro.core.checkpoint.weight_fingerprint` (redeclared here so the
    ``nn`` substrate does not depend on the MILR core): two arrays share a
    fingerprint exactly when their bit patterns are identical, which is what
    lets a plan survive a bit-exact repair unchanged.
    """
    return hashlib.blake2b(
        np.ascontiguousarray(weights).tobytes(), digest_size=16
    ).digest()


@dataclass
class PlanStats:
    """Counters of the per-model plan cache (observable in tests/service)."""

    #: Plans compiled from scratch (cold key or after an invalidation).
    compiles: int = 0
    #: Planned calls served by a cached, weight-coherent *fused* plan.
    fused_hits: int = 0
    #: Planned calls served by a cached, weight-coherent bit-exact plan.
    exact_hits: int = 0
    #: Fused serves that fell back to the bit-exact plan because the network
    #: failed (or lost) its ULP certification at that batch size.
    fallbacks: int = 0
    #: Cached plans discarded because weights changed under them (stale epoch
    #: on lookup, or a failed fingerprint revalidation sweep).
    invalidations: int = 0
    #: Dirty scratch-buffer borders caught (and healed) by the per-serve
    #: canary check before they could corrupt a planned forward.
    scratch_detections: int = 0
    #: Calibration runs performed by :func:`certify_fusion` (cache misses in
    #: the per-``(weights fingerprint, batch)`` certificate memo).
    certifications: int = 0

    @property
    def hits(self) -> int:
        """Planned calls served by any cached plan (fused + exact)."""
        return self.fused_hits + self.exact_hits


# ---------------------------------------------------------------------- #
# ULP distance and fusion certification
# ---------------------------------------------------------------------- #
#: Absolute floor of :func:`ulp_distance`: element pairs closer than this are
#: 0 ULP apart regardless of their lattice distance.  Small softmax
#: probabilities amplify lattice distance (an absolute error of 5e-6 on a
#: 1e-4 probability spans tens of thousands of lattice steps while never
#: moving an argmax); the certification contract is therefore "within the
#: ULP bound *or* within this absolute epsilon".  A genuinely wrong fold
#: (mis-scaled kernel, mixed-up channel) moves outputs at normal magnitudes
#: by percents -- orders of magnitude above both thresholds.
ULP_ABSOLUTE_FLOOR = 2e-5


def ulp_distance(
    reference: np.ndarray,
    candidate: np.ndarray,
    absolute_floor: float = ULP_ABSOLUTE_FLOOR,
) -> float:
    """Max elementwise float32 ULP distance between two arrays.

    Bit patterns are mapped onto the monotonic integer lattice of float32
    (negative floats mirror below zero), so the distance counts representable
    values between the two operands.  ``+0.0`` and ``-0.0`` are 0 apart;
    NaN/NaN pairs are 0 apart; a NaN paired with a non-NaN is infinitely far;
    pairs within ``absolute_floor`` of each other are 0 apart (see
    :data:`ULP_ABSOLUTE_FLOOR`).
    """
    a = np.ascontiguousarray(reference, dtype=FLOAT_DTYPE)
    b = np.ascontiguousarray(candidate, dtype=FLOAT_DTYPE)
    if a.shape != b.shape:
        raise ShapeError(f"shape mismatch {a.shape} vs {b.shape} in ulp_distance")
    if a.size == 0:
        return 0.0
    au = a.view(np.uint32).astype(np.int64)
    bu = b.view(np.uint32).astype(np.int64)
    half = np.int64(1) << 31
    au = np.where(au >= half, half - au, au)
    bu = np.where(bu >= half, half - bu, bu)
    diff = np.abs(au - bu).astype(np.float64)
    with np.errstate(invalid="ignore"):
        negligible = np.abs(a - b) <= absolute_floor
    both_nan = np.isnan(a) & np.isnan(b)
    either_nan = np.isnan(a) | np.isnan(b)
    diff = np.where(
        both_nan | negligible, 0.0, np.where(either_nan, np.inf, diff)
    )
    return float(diff.max())


@dataclass(frozen=True)
class FusionCertificate:
    """Outcome of one fused-vs-exact calibration run.

    Cached per ``(network weight fingerprint, batch size, ULP bound)`` by
    :class:`~repro.nn.model.Sequential`, and pinned onto the fused plan it
    certified -- a plan that survives fingerprint revalidation (bit-exact
    repair) keeps its certificate without re-running calibration.
    """

    batch_size: int
    weights_digest: bytes
    max_ulp: float
    ulp_bound: int
    certified: bool
    calibration_seconds: float


def calibration_batch(input_shape: tuple[int, ...], batch_size: int) -> np.ndarray:
    """Deterministic calibration inputs for :func:`certify_fusion`.

    Standard-normal draws exercise both ReLU regimes (positive and clipped)
    and every sign path through the affine folds; the seed is fixed per batch
    size so certification is reproducible across processes.
    """
    rng = np.random.default_rng(_CALIBRATION_SEED + batch_size)
    return rng.standard_normal((batch_size,) + tuple(input_shape)).astype(FLOAT_DTYPE)


def certify_fusion(
    model,
    fused_plan: "PlanLike",
    exact_plan: "PlanLike",
    ulp_bound: int = DEFAULT_ULP_BOUND,
) -> FusionCertificate:
    """Run the seeded calibration batch through both plans and bound the ULP.

    The exact plan is bit-identical to the seed forward by construction, so
    comparing against it is comparing against the seed path.  The certificate
    is tied to the fused plan's weight digest: any non-byte-identical weight
    change produces a different digest and therefore a fresh certification.
    """
    started = time.perf_counter()
    calibration = calibration_batch(model.input_shape, fused_plan.batch_size)
    exact_out = exact_plan.execute(calibration)
    fused_out = fused_plan.execute(calibration)
    max_ulp = ulp_distance(exact_out, fused_out)
    return FusionCertificate(
        batch_size=fused_plan.batch_size,
        weights_digest=fused_plan.weights_digest,
        max_ulp=max_ulp,
        ulp_bound=int(ulp_bound),
        certified=bool(max_ulp <= ulp_bound),
        calibration_seconds=time.perf_counter() - started,
    )


class ForwardPlan:
    """One compiled forward pass for a fixed batch size.

    Created by :func:`compile_plan`; executed (and cached, invalidated,
    revalidated) by :class:`~repro.nn.model.Sequential`.
    """

    __slots__ = (
        "batch_size",
        "fused",
        "certificate",
        "folded_affines",
        "weights_digest",
        "_steps",
        "_captured",
        "_result_provenance",
        "_guards",
    )

    def __init__(
        self,
        batch_size: int,
        fused: bool,
        steps: list[PlanStep],
        captured: list[tuple[Layer, int, bytes]],
        result_provenance: str = "scratch",
        folded_affines: tuple[str, ...] = (),
    ):
        self.batch_size = batch_size
        self.fused = fused
        #: The :class:`FusionCertificate` backing fused serving through this
        #: plan, attached lazily by the model; ``None`` until certified.
        self.certificate: Optional[FusionCertificate] = None
        #: Names of affine layers folded into an adjacent matmul kernel.
        self.folded_affines = folded_affines
        self._steps = steps
        #: ``(layer, weights_version at compile, blake2b fingerprint at
        #: compile)`` for every parameterized layer the plan touched.
        self._captured = captured
        #: Digest over every captured layer fingerprint, in layer order --
        #: the network-level weight state this plan (and its certificate)
        #: was compiled against.
        self.weights_digest = hashlib.blake2b(
            b"".join(digest for _layer, _version, digest in captured),
            digest_size=16,
        ).digest()
        self._result_provenance = result_provenance
        self._guards = tuple(
            step.scratch_guard for step in steps if hasattr(step, "scratch_guard")
        )

    @property
    def scratch_guards(self) -> tuple[ScratchGuard, ...]:
        """Canaries over every pinned padding buffer the plan owns."""
        return self._guards

    def verify_scratch(self) -> int:
        """Check every scratch canary, healing dirty borders.

        Returns the number of dirty buffers found (0 on the clean fast path,
        which costs one ``count_nonzero`` pass per pinned buffer).
        """
        dirty = 0
        for guard in self._guards:
            if not guard.is_clean():
                guard.scrub()
                dirty += 1
        return dirty

    # ------------------------------------------------------------------ #
    def execute(self, inputs: np.ndarray) -> np.ndarray:
        """Run the compiled steps; returns a caller-owned output array."""
        if inputs.shape[0] != self.batch_size:
            raise ShapeError(
                f"plan compiled for batch size {self.batch_size}, "
                f"got {inputs.shape[0]}"
            )
        current = inputs
        for step in self._steps:
            current = step(current)
        if self._result_provenance == "fresh":
            # The last step allocated its result (e.g. softmax): hand it out.
            return current
        # Detach the result from the plan's scratch buffers (or the caller's
        # own input, for all-passthrough stacks): the caller may keep it
        # across the next planned call.
        return np.array(current)

    # ------------------------------------------------------------------ #
    def epochs_current(self) -> bool:
        """Cheap per-call weight-coherence check (integer compares only)."""
        for layer, version, _digest in self._captured:
            if layer.weights_version != version:
                return False
        return True

    def fingerprints_match(self) -> bool:
        """Whether every captured layer's weights are byte-identical to the
        bytes the plan was compiled from (blake2b comparison)."""
        for layer, _version, digest in self._captured:
            if plan_weight_fingerprint(layer.get_weights()) != digest:
                return False
        return True

    def refresh_epochs(self) -> None:
        """Re-arm :meth:`epochs_current` after fingerprints confirmed the
        weights are byte-identical (e.g. following a bit-exact repair)."""
        self._captured = [
            (layer, layer.weights_version, digest)
            for layer, _version, digest in self._captured
        ]


# ---------------------------------------------------------------------- #
# Batch-slice parallelism
# ---------------------------------------------------------------------- #
def slice_worker_count() -> int:
    """Workers available to the batch-slice pool.

    Defaults to the CPU count; the ``REPRO_PLAN_THREADS`` environment variable
    overrides it (``1`` disables slicing, higher values force it -- used by
    the byte-stability tests on single-core machines).
    """
    override = os.environ.get("REPRO_PLAN_THREADS")
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return os.cpu_count() or 1


_SLICE_POOL_LOCK = threading.Lock()
_SLICE_POOLS: dict[int, ThreadPoolExecutor] = {}


def _slice_pool(workers: int) -> ThreadPoolExecutor:
    """Process-wide slice executor per worker count (plans share threads)."""
    with _SLICE_POOL_LOCK:
        pool = _SLICE_POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="plan-slice"
            )
            _SLICE_POOLS[workers] = pool
        return pool


class SlicedForwardPlan:
    """A fused plan split into disjoint batch slices run on a thread pool.

    Each slice owns an independent sub-plan (its own scratch), so slices
    execute concurrently without sharing buffers; numpy's BLAS kernels release
    the GIL, so on multi-core hosts the slices overlap in wall-clock time.
    The merge concatenates slice outputs in index order -- completion order
    never affects the result, so outputs are byte-stable across calls and
    across thread schedules.  Only fused plans slice: slicing changes the GEMM
    shapes, and the certification step (which runs *through this class*)
    bounds the resulting divergence, whereas exact plans must stay
    unconditionally bit-identical to the seed forward.
    """

    __slots__ = ("batch_size", "fused", "certificate", "folded_affines", "_slices", "_workers")

    def __init__(
        self,
        batch_size: int,
        slices: list[tuple[int, int, ForwardPlan]],
        workers: int,
    ):
        self.batch_size = batch_size
        self.fused = True
        self.certificate: Optional[FusionCertificate] = None
        self.folded_affines = slices[0][2].folded_affines if slices else ()
        self._slices = slices
        self._workers = workers

    @property
    def slice_sizes(self) -> tuple[int, ...]:
        return tuple(stop - start for start, stop, _plan in self._slices)

    @property
    def weights_digest(self) -> bytes:
        return self._slices[0][2].weights_digest

    @property
    def scratch_guards(self) -> tuple[ScratchGuard, ...]:
        return tuple(
            guard for _s, _e, plan in self._slices for guard in plan.scratch_guards
        )

    def verify_scratch(self) -> int:
        return sum(plan.verify_scratch() for _s, _e, plan in self._slices)

    def execute(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.shape[0] != self.batch_size:
            raise ShapeError(
                f"plan compiled for batch size {self.batch_size}, "
                f"got {inputs.shape[0]}"
            )
        pool = _slice_pool(self._workers)
        futures = [
            pool.submit(plan.execute, inputs[start:stop])
            for start, stop, plan in self._slices
        ]
        # Deterministic merge: gather in slice order, not completion order.
        return np.concatenate([future.result() for future in futures], axis=0)

    def epochs_current(self) -> bool:
        return all(plan.epochs_current() for _s, _e, plan in self._slices)

    def fingerprints_match(self) -> bool:
        return all(plan.fingerprints_match() for _s, _e, plan in self._slices)

    def refresh_epochs(self) -> None:
        for _start, _stop, plan in self._slices:
            plan.refresh_epochs()


#: Anything the model can cache and execute as a compiled plan.
PlanLike = Union[ForwardPlan, SlicedForwardPlan]


# ---------------------------------------------------------------------- #
# Direct-GEMM bit-identity probes
# ---------------------------------------------------------------------- #
#: Probe verdicts per conv geometry: whether the strided-view stacked GEMM is
#: byte-identical to the reference flat im2col GEMM at that shape.  BLAS
#: kernel/blocking selection depends on shapes and strides, never on operand
#: values, so one seeded probe per geometry settles the question for the
#: process lifetime.
_DIRECT_GEMM_VERDICTS: dict[tuple, bool] = {}


def _direct_conv_verdict(
    batch: int,
    out_h: int,
    out_w: int,
    padded_h: int,
    f1: int,
    f2: int,
    channels: int,
    filters: int,
) -> bool:
    """Probe whether the direct strided conv GEMM is bit-exact here.

    Builds the exact buffer/view layout the direct step would use (same
    shapes, same strides) with seeded random operands, and byte-compares the
    strided 4-D ``np.matmul`` against the reference flat ``(B*P, taps)`` GEMM
    the im2col formulation performs.  The only difference between the two
    formulations is the GEMM decomposition (per-row ``M = G2`` panels vs one
    ``M = B*G1*G2`` product); patch extraction itself is a pure copy.
    """
    key = (batch, out_h, out_w, padded_h, f1, f2, channels, filters)
    cached = _DIRECT_GEMM_VERDICTS.get(key)
    if cached is not None:
        return cached
    rng = np.random.default_rng(_PROBE_SEED)
    taps_w = f2 * channels
    taps = f1 * taps_w
    width_buf = np.ascontiguousarray(
        rng.standard_normal((batch, out_w, padded_h, taps_w)), dtype=FLOAT_DTYPE
    )
    kernel = np.ascontiguousarray(
        rng.standard_normal((taps, filters)), dtype=FLOAT_DTYPE
    )
    patch_view = direct_patch_view(width_buf, f1, out_h)
    direct_out = np.empty((batch, out_h, out_w, filters), dtype=FLOAT_DTYPE)
    np.matmul(patch_view, kernel, out=direct_out)
    reference_mat = np.ascontiguousarray(patch_view).reshape(-1, taps)
    reference_out = np.empty((reference_mat.shape[0], filters), dtype=FLOAT_DTYPE)
    np.matmul(reference_mat, kernel, out=reference_out)
    verdict = direct_out.tobytes() == reference_out.tobytes()
    _DIRECT_GEMM_VERDICTS[key] = verdict
    return verdict


# ---------------------------------------------------------------------- #
# Step builders
# ---------------------------------------------------------------------- #
def _conv_geometry(layer) -> tuple[int, int, int, int, Optional[tuple[int, int]]]:
    """Padded spatial dims and the interior origin for a conv-like layer."""
    height, width, channels = layer.input_shape
    if layer.padding == "same":
        pad_h = pad_same_amounts(height, layer.kernel_size[0], layer.stride[0])
        pad_w = pad_same_amounts(width, layer.kernel_size[1], layer.stride[1])
        return (
            height + pad_h[0] + pad_h[1],
            width + pad_w[0] + pad_w[1],
            channels,
            height,
            (pad_h[0], pad_w[0]),
        )
    return height, width, channels, height, None


def _affine_fold(
    kernel_matrix: np.ndarray, affine: Optional[Layer]
) -> tuple[np.ndarray, Optional[np.ndarray]]:
    """Fold a following Bias/BatchNorm into ``(kernel_matrix, add_vector)``.

    A Bias fold leaves the kernel untouched (the epilogue ``np.add`` is the
    same operation the standalone bias step performs in place, so consuming a
    Bias stays bit-identical); only a BatchNorm fold rescales the kernel,
    which is why exact plans never consume BatchNorm layers.
    """
    if affine is None:
        return kernel_matrix, None
    if isinstance(affine, Bias):
        return kernel_matrix, affine.values
    assert isinstance(affine, BatchNorm)
    folded = np.ascontiguousarray(
        kernel_matrix * affine.gamma[None, :], dtype=FLOAT_DTYPE
    )
    return folded, affine.beta


#: batch-chunk size for the strided pooling fold: the strided offset reads
#: revisit the same cache lines, so folding a chunk at a time keeps the
#: source slab resident instead of streaming the full activation four times.
_POOL_CHUNK = 32


def _maxpool_fold(layer: _Pool2D, batch: int):
    """(out_buf, apply) folding np.maximum over strided window offsets.

    A left fold in row-major window order is bit-identical to the seed's
    windowed ``max(axis=3)`` for every input: np.maximum keeps the first
    operand on ties (so the leftmost maximal element wins in both
    formulations, signed zeros included) and NaN propagates under any order.
    """
    out_h, out_w, channels = layer.output_shape
    p1, p2 = layer.pool_size
    s1, s2 = layer.stride
    out_buf = np.empty((batch, out_h, out_w, channels), dtype=FLOAT_DTYPE)
    offsets = [(a, b) for a in range(p1) for b in range(p2)]

    def apply(x: np.ndarray) -> np.ndarray:
        for c0 in range(0, batch, _POOL_CHUNK):
            chunk = slice(c0, min(c0 + _POOL_CHUNK, batch))
            xc = x[chunk]
            oc = out_buf[chunk]
            np.copyto(oc, xc[:, 0 : out_h * s1 : s1, 0 : out_w * s2 : s2, :])
            for a, b in offsets[1:]:
                np.maximum(
                    oc,
                    xc[:, a : a + out_h * s1 : s1, b : b + out_w * s2 : s2, :],
                    out=oc,
                )
        return out_buf

    return out_buf, apply


#: batch-chunk size for the direct conv block: pad/width/pre-pool scratch is
#: allocated at this many images and the whole conv -> pool -> epilogue chain
#: runs per chunk, so intermediates stay cache-resident instead of streaming
#: full-batch activations through memory between stages.
_CONV_CHUNK = 32


def _conv_block_step(
    layer: Conv2D,
    batch: int,
    affine: Optional[Layer],
    relu: bool,
    pool: Optional[_Pool2D],
    direct: bool,
) -> PlanStep:
    """One scratch pass over conv → (affine) → (ReLU) → (maxpool).

    ``direct=True`` compiles the im2col-free formulation: a width-only patch
    buffer plus an overlapping strided view consumed by ``np.matmul``
    directly.  Everything downstream of the matmul operates on the conv's own
    output buffer in place, so a fused chain never materializes intermediate
    activations in separate full-size buffers.

    The epilogue runs pool-first (conv -> maxpool -> affine add -> ReLU) even
    though the source network orders it conv -> affine -> ReLU -> maxpool:
    adding a per-channel constant is monotone and maps the window maximum to
    the maximum of the sums (rounding is monotone, and an addition only
    produces -0.0 when both operands carry it, so the commuted result is
    bit-identical, signed zeros and NaN included), and ReLU is itself a
    maximum so it distributes over the window fold the same way.  Pooling
    first shrinks the affine/ReLU passes by the pool area, which is most of
    the epilogue's memory traffic at batch 256.

    The direct path additionally tiles the whole block over batch chunks of
    :data:`_CONV_CHUNK`: the padding buffer, width buffer, and pre-pool
    activation are chunk-sized scratch that stays cache-resident from the
    patch gather through the epilogue.  Chunking is bit-neutral because the
    strided matmul dispatches one GEMM per ``(image, row)`` panel regardless
    of how many images share a buffer, and every other stage is elementwise.
    """
    padded_h, padded_w, channels, height, origin = _conv_geometry(layer)
    width = layer.input_shape[1]
    out_h, out_w, filters = layer.output_shape
    f1, f2 = layer.kernel_size
    stride = layer.stride
    kernel_matrix, add_values = _affine_fold(layer.kernel_matrix(), affine)
    top, left = origin if origin is not None else (0, 0)
    interior = (
        slice(None),
        slice(top, top + height),
        slice(left, left + width),
        slice(None),
    )
    if pool is not None:
        p_h, p_w, _ = pool.output_shape
        p1, p2 = pool.pool_size
        ps1, ps2 = pool.stride
        offsets = [(a, b) for a in range(p1) for b in range(p2)]

    if direct:
        final_buf = np.empty(
            (batch, p_h, p_w, filters) if pool is not None else (batch, out_h, out_w, filters),
            dtype=FLOAT_DTYPE,
        )
        chunk = min(_CONV_CHUNK, batch)
        taps_w = f2 * channels
        pad_buf = (
            np.zeros((chunk, padded_h, padded_w, channels), dtype=FLOAT_DTYPE)
            if origin is not None
            else None
        )
        width_buf = np.empty((chunk, out_w, padded_h, taps_w), dtype=FLOAT_DTYPE)
        width_view = width_buf.reshape(chunk, out_w, padded_h, f2, channels)
        patch_view = direct_patch_view(width_buf, f1, out_h)
        conv_chunk = (
            np.empty((chunk, out_h, out_w, filters), dtype=FLOAT_DTYPE)
            if pool is not None
            else None
        )

        def run(x: np.ndarray) -> np.ndarray:
            for c0 in range(0, batch, chunk):
                c1 = min(c0 + chunk, batch)
                n = c1 - c0
                if pad_buf is not None:
                    pad_buf[:n, top : top + height, left : left + width, :] = x[c0:c1]
                    source = pad_buf[:n]
                else:
                    source = x[c0:c1]
                im2col_width_into(source, f2, width_view[:n])
                target = final_buf[c0:c1]
                if pool is not None:
                    cc = conv_chunk[:n]
                    np.matmul(patch_view[:n], kernel_matrix, out=cc)
                    np.copyto(target, cc[:, 0 : p_h * ps1 : ps1, 0 : p_w * ps2 : ps2, :])
                    for a, b in offsets[1:]:
                        np.maximum(
                            target,
                            cc[:, a : a + p_h * ps1 : ps1, b : b + p_w * ps2 : ps2, :],
                            out=target,
                        )
                else:
                    np.matmul(patch_view[:n], kernel_matrix, out=target)
                if add_values is not None:
                    np.add(target, add_values, out=target)
                if relu:
                    np.maximum(target, 0.0, out=target)
            return final_buf

    else:
        out_buf = np.empty((batch, out_h, out_w, filters), dtype=FLOAT_DTYPE)
        pad_buf = (
            np.zeros((batch, padded_h, padded_w, channels), dtype=FLOAT_DTYPE)
            if origin is not None
            else None
        )
        positions = out_h * out_w
        taps = f1 * f2 * channels
        patch_buf = np.empty((batch, positions, taps), dtype=FLOAT_DTYPE)
        patch_mat = patch_buf.reshape(batch * positions, taps)
        patch_split = patch_buf.reshape(batch, out_h, out_w, f1, f2, channels)
        out_mat = out_buf.reshape(batch * positions, filters)

        pool_apply = None
        if pool is not None:
            _pool_buf, pool_apply = _maxpool_fold(pool, batch)

        def run(x: np.ndarray) -> np.ndarray:
            if pad_buf is not None:
                pad_buf[:, top : top + height, left : left + width, :] = x
                source = pad_buf
            else:
                source = x
            im2col_into(source, (f1, f2), stride, patch_split)
            np.matmul(patch_mat, kernel_matrix, out=out_mat)
            target = pool_apply(out_buf) if pool_apply is not None else out_buf
            if add_values is not None:
                np.add(target, add_values, out=target)
            if relu:
                np.maximum(target, 0.0, out=target)
            return target

    if pad_buf is not None:
        run.scratch_guard = ScratchGuard(layer.name, pad_buf, interior)
    return run


#: batch-chunk size for the depthwise tap loop, sized so one chunk of the
#: padded input plus the accumulator stays cache-resident across all taps.
_DEPTHWISE_CHUNK = 32


def _depthwise_block_step(
    layer: DepthwiseConv2D,
    batch: int,
    affine: Optional[Layer],
    relu: bool,
    pool: Optional[_Pool2D],
    direct: bool,
) -> PlanStep:
    """One scratch pass over depthwise conv -> (affine) -> (ReLU) -> (maxpool).

    ``direct=True`` (fused plans, stride 1 only) replaces the windowed einsum
    with a block-diagonal width GEMM: the width windows of the padded input
    are a zero-copy strided view (each ``f2*C`` tap run is contiguous in
    memory), and one matmul against a ``(f2*C, f1*C)`` block-diagonal kernel
    produces every per-``f1`` partial sum in a single BLAS call; ``f1``
    shifted adds then fold the partials into the conv output.  The GEMM
    spends ``f1``-fold redundant multiplies on the zero blocks but replaces
    the memory-bound per-tap sweeps with compute the BLAS kernels are fast
    at, and its reduction order differs from the einsum's, so it is not
    bit-identical to the seed — fused certification covers the difference.
    Exact plans keep the einsum, which matches the seed forward byte for
    byte.  The epilogue runs pool-first like ``_conv_block_step`` (see there
    for the bit-exactness argument), and the direct path is batch-chunked the
    same way.
    """
    padded_h, padded_w, channels, height, origin = _conv_geometry(layer)
    width = layer.input_shape[1]
    out_h, out_w, _ = layer.output_shape
    f1, f2 = layer.kernel_size
    stride = layer.stride
    top, left = origin if origin is not None else (0, 0)
    interior = (
        slice(None),
        slice(top, top + height),
        slice(left, left + width),
        slice(None),
    )
    kernel_matrix, add_values = _affine_fold(layer.kernel_matrix(), affine)
    if pool is not None:
        p_h, p_w, _ = pool.output_shape
        p1, p2 = pool.pool_size
        ps1, ps2 = pool.stride
        offsets = [(a, b) for a in range(p1) for b in range(p2)]

    direct = direct and stride == (1, 1)
    if direct:
        final_buf = np.empty(
            (batch, p_h, p_w, channels) if pool is not None else (batch, out_h, out_w, channels),
            dtype=FLOAT_DTYPE,
        )
        tap_kernel = kernel_matrix.reshape(f1, f2, channels)
        block_diag = np.zeros((f2 * channels, f1 * channels), dtype=FLOAT_DTYPE)
        lanes = np.arange(channels)
        for a in range(f1):
            for b in range(f2):
                block_diag[b * channels + lanes, a * channels + lanes] = tap_kernel[a, b]
        chunk = min(_DEPTHWISE_CHUNK, batch)
        pad_buf = (
            np.zeros((chunk, padded_h, padded_w, channels), dtype=FLOAT_DTYPE)
            if origin is not None
            else None
        )
        partial = np.empty(
            (chunk, padded_h, out_w, f1 * channels), dtype=FLOAT_DTYPE
        )
        partial_split = partial.reshape(chunk, padded_h, out_w, f1, channels)
        conv_chunk = (
            np.empty((chunk, out_h, out_w, channels), dtype=FLOAT_DTYPE)
            if pool is not None
            else None
        )

        def run(x: np.ndarray) -> np.ndarray:
            for c0 in range(0, batch, chunk):
                c1 = min(c0 + chunk, batch)
                n = c1 - c0
                if pad_buf is not None:
                    pad_buf[:n, top : top + height, left : left + width, :] = x[c0:c1]
                    pc = pad_buf[:n]
                else:
                    pc = x[c0:c1]
                s0, s1, s2, s3 = pc.strides
                windows = np.lib.stride_tricks.as_strided(
                    pc,
                    shape=(n, padded_h, out_w, f2 * channels),
                    strides=(s0, s1, s2, s3),
                    writeable=False,
                )
                np.matmul(windows, block_diag, out=partial[:n])
                oc = conv_chunk[:n] if pool is not None else final_buf[c0:c1]
                np.copyto(oc, partial_split[:n, 0:out_h, :, 0, :])
                for a in range(1, f1):
                    np.add(oc, partial_split[:n, a : a + out_h, :, a, :], out=oc)
                target = final_buf[c0:c1]
                if pool is not None:
                    np.copyto(target, oc[:, 0 : p_h * ps1 : ps1, 0 : p_w * ps2 : ps2, :])
                    for a, b in offsets[1:]:
                        np.maximum(
                            target,
                            oc[:, a : a + p_h * ps1 : ps1, b : b + p_w * ps2 : ps2, :],
                            out=target,
                        )
                if add_values is not None:
                    np.add(target, add_values, out=target)
                if relu:
                    np.maximum(target, 0.0, out=target)
            return final_buf

    else:
        out_buf = np.empty((batch, out_h, out_w, channels), dtype=FLOAT_DTYPE)
        pad_buf = (
            np.zeros((batch, padded_h, padded_w, channels), dtype=FLOAT_DTYPE)
            if origin is not None
            else None
        )
        positions = out_h * out_w
        taps = layer.taps_per_channel
        patch_buf = np.empty((batch, positions, taps * channels), dtype=FLOAT_DTYPE)
        patch_split = patch_buf.reshape(batch, out_h, out_w, f1, f2, channels)
        split = patch_buf.reshape(batch, out_h, out_w, taps, channels)

        pool_apply = None
        if pool is not None:
            _pool_buf, pool_apply = _maxpool_fold(pool, batch)

        def run(x: np.ndarray) -> np.ndarray:
            if pad_buf is not None:
                pad_buf[:, top : top + height, left : left + width, :] = x
                source = pad_buf
            else:
                source = x
            im2col_into(source, (f1, f2), stride, patch_split)
            np.einsum("bhwkc,kc->bhwc", split, kernel_matrix, out=out_buf)
            target = pool_apply(out_buf) if pool_apply is not None else out_buf
            if add_values is not None:
                np.add(target, add_values, out=target)
            if relu:
                np.maximum(target, 0.0, out=target)
            return target

    if pad_buf is not None:
        run.scratch_guard = ScratchGuard(layer.name, pad_buf, interior)
    return run


def _dense_block_step(
    layer: Dense, batch: int, affine: Optional[Layer], relu: bool
) -> PlanStep:
    out_buf = np.empty((batch, layer.units), dtype=FLOAT_DTYPE)
    weights, add_values = _affine_fold(layer.weights, affine)

    def run(x: np.ndarray) -> np.ndarray:
        np.matmul(x, weights, out=out_buf)
        if add_values is not None:
            np.add(out_buf, add_values, out=out_buf)
        if relu:
            np.maximum(out_buf, 0.0, out=out_buf)
        return out_buf

    return run


def _bias_step(layer: Bias, batch: int, inplace: bool) -> PlanStep:
    values = layer.values
    if inplace:
        # The incoming activation is plan-owned scratch: add into it directly,
        # keeping the block's working set to one hot buffer.  Same values as
        # the out-of-place add, so still bit-identical.
        def run(x: np.ndarray) -> np.ndarray:
            np.add(x, values, out=x)
            return x

        return run
    out_buf = np.empty((batch,) + layer.output_shape, dtype=FLOAT_DTYPE)

    def run(x: np.ndarray) -> np.ndarray:
        np.add(x, values, out=out_buf)
        return out_buf

    return run


def _batchnorm_step(layer: BatchNorm, batch: int, inplace: bool) -> PlanStep:
    gamma, beta = layer.gamma, layer.beta
    if inplace:

        def run(x: np.ndarray) -> np.ndarray:
            np.multiply(x, gamma, out=x)
            np.add(x, beta, out=x)
            return x

        return run
    out_buf = np.empty((batch,) + layer.output_shape, dtype=FLOAT_DTYPE)

    def run(x: np.ndarray) -> np.ndarray:
        np.multiply(x, gamma, out=out_buf)
        np.add(out_buf, beta, out=out_buf)
        return out_buf

    return run


def _activation_step(layer: Activation, batch: int, inplace: bool) -> PlanStep:
    if layer.function == "linear":
        return lambda x: x
    if layer.function == "relu":
        if inplace:

            def run(x: np.ndarray) -> np.ndarray:
                np.maximum(x, 0.0, out=x)
                return x

            return run
        out_buf = np.empty((batch,) + layer.output_shape, dtype=FLOAT_DTYPE)

        def run(x: np.ndarray) -> np.ndarray:
            np.maximum(x, 0.0, out=out_buf)
            return out_buf

        return run
    # Softmax / sigmoid / tanh allocate internally (they upcast through
    # float64 exactly like the seed path); they sit on tiny head tensors.
    return layer.forward_function


def _pool_step(layer: _Pool2D, batch: int) -> PlanStep:
    out_h, out_w, channels = layer.output_shape
    p1, p2 = layer.pool_size

    if layer.window_reduce == "max":
        _out_buf, apply = _maxpool_fold(layer, batch)
        return apply

    out_buf = np.empty((batch, out_h, out_w, channels), dtype=FLOAT_DTYPE)
    win_buf = np.empty((batch, out_h, out_w, p1 * p2, channels), dtype=FLOAT_DTYPE)
    win_split = win_buf.reshape(batch, out_h, out_w, p1, p2, channels)

    def run(x: np.ndarray) -> np.ndarray:
        # Mean pooling keeps the windowed form: np.mean's reduction order over
        # the window axis is part of the bit pattern, so the seed's window
        # tensor is reproduced (allocation-free -- the window buffer is the
        # same memory layout as an im2col patch buffer).
        im2col_into(x, (p1, p2), layer.stride, win_split)
        np.mean(win_buf, axis=3, out=out_buf)
        return out_buf

    return run


def _zeropad_step(layer: ZeroPadding2D, batch: int) -> PlanStep:
    height, width, _ = layer.input_shape
    out_buf = np.zeros((batch,) + layer.output_shape, dtype=FLOAT_DTYPE)
    pad_h, pad_w = layer.pad_h, layer.pad_w

    def run(x: np.ndarray) -> np.ndarray:
        out_buf[:, pad_h : pad_h + height, pad_w : pad_w + width, :] = x
        return out_buf

    run.scratch_guard = ScratchGuard(
        layer.name,
        out_buf,
        (slice(None), slice(pad_h, pad_h + height), slice(pad_w, pad_w + width), slice(None)),
    )
    return run


#: Provenance of the current activation while compiling, deciding whether an
#: elementwise step may mutate it in place and whether the final result must
#: be copied out of plan scratch:
#:   "input"   -- the caller's array (or a view of it): never mutate.
#:   "scratch" -- a plan-owned reusable buffer: mutable, copy before return.
#:   "pinned"  -- plan-owned scratch with a cross-call invariant (e.g. the
#:                pre-zeroed borders of a padding buffer): never mutate.
#:   "fresh"   -- allocated anew on every call: mutable, returnable as-is.
_INPUT, _SCRATCH, _PINNED, _FRESH = "input", "scratch", "pinned", "fresh"


def _build_step(
    layer: Layer, batch: int, provenance: str
) -> tuple[PlanStep, str]:
    """Compile one standalone (non-block) layer step."""
    mutable = provenance in (_SCRATCH, _FRESH)
    assert not isinstance(layer, (Conv2D, DepthwiseConv2D, Dense))
    if isinstance(layer, Bias):
        return _bias_step(layer, batch, mutable), _SCRATCH if not mutable else provenance
    if isinstance(layer, BatchNorm):
        return (
            _batchnorm_step(layer, batch, mutable),
            _SCRATCH if not mutable else provenance,
        )
    if isinstance(layer, Activation):
        if layer.function == "linear":
            return lambda x: x, provenance
        if layer.function == "relu":
            return (
                _activation_step(layer, batch, mutable),
                _SCRATCH if not mutable else provenance,
            )
        return _activation_step(layer, batch, False), _FRESH
    if isinstance(layer, _Pool2D) and layer.window_reduce in ("max", "mean"):
        return _pool_step(layer, batch), _SCRATCH
    if isinstance(layer, Flatten):
        # A reshape is a view: the result keeps its source's provenance.
        return lambda x: x.reshape(batch, -1), provenance
    if isinstance(layer, ZeroPadding2D):
        # The padding buffer's zero borders persist across calls; an in-place
        # elementwise step downstream would corrupt them.
        return _zeropad_step(layer, batch), _PINNED
    if layer.is_passthrough:
        return lambda x: x, provenance
    # Unknown layer type: fall back to the layer's own inference forward.
    # Bit-identical by definition, just without the fast-path savings.  The
    # conservative "input" provenance forbids in-place mutation downstream
    # (the layer might return its input, or a view of it, unchanged).
    return lambda x: layer.forward(x, training=False), _INPUT


def _fusion_blocked(model, *layers: Layer) -> bool:
    """Whether any of ``layers`` is on the model's fusion blocklist.

    The blocklist holds the names of quarantined layers (maintained by the
    service registry under the model lock) and is re-read here at every
    consumption decision during compilation, so a layer quarantined mid-compile
    is never folded into a matmul kernel or consumed into a block.
    """
    blocklist = getattr(model, "fusion_blocklist", None)
    if not blocklist:
        return False
    return any(layer.name in blocklist for layer in layers)


def _fusable(layer: Layer, following: Optional[Layer]) -> bool:
    """Structural check: can ``following`` fold into ``layer``'s matmul?"""
    return isinstance(layer, (Conv2D, DepthwiseConv2D, Dense)) and isinstance(
        following, (Bias, BatchNorm)
    )


def _collect_block(
    model, layers: list[Layer], index: int, fused: bool
) -> tuple[Optional[Layer], bool, Optional[_Pool2D], int]:
    """Greedy chain collection starting after the matmul layer at ``index``.

    Returns ``(affine, relu, pool, next_index)``.  Exact plans only consume
    what stays bit-identical: a Bias (epilogue add), a ReLU (in-place max) and
    a max-pool (strided fold) -- BatchNorm stops the chain because folding it
    rescales the kernel.  Fused plans consume BatchNorm too.  Every
    consumption decision re-checks the live quarantine blocklist.
    """
    layer = layers[index]
    affine: Optional[Layer] = None
    relu = False
    pool: Optional[_Pool2D] = None
    j = index + 1

    nxt = layers[j] if j < len(layers) else None
    if (
        _fusable(layer, nxt)
        and (fused or isinstance(nxt, Bias))
        and not _fusion_blocked(model, layer, nxt)
    ):
        affine = nxt
        j += 1

    nxt = layers[j] if j < len(layers) else None
    if (
        isinstance(nxt, Activation)
        and nxt.function == "relu"
        and not _fusion_blocked(model, nxt)
    ):
        relu = True
        j += 1
        if isinstance(layer, (Conv2D, DepthwiseConv2D)):
            nxt = layers[j] if j < len(layers) else None
            if (
                isinstance(nxt, _Pool2D)
                and nxt.window_reduce == "max"
                and not _fusion_blocked(model, nxt)
            ):
                pool = nxt
                j += 1
    return affine, relu, pool, j


def _compile_monolithic(model, batch_size: int, fused: bool) -> ForwardPlan:
    steps: list[PlanStep] = []
    captured: list[tuple[Layer, int, bytes]] = []
    folded: list[str] = []
    layers = list(model.layers)
    index = 0
    provenance = _INPUT
    while index < len(layers):
        layer = layers[index]
        if isinstance(layer, (Conv2D, DepthwiseConv2D, Dense)):
            affine, relu, pool, next_index = _collect_block(
                model, layers, index, fused
            )
            if isinstance(layer, Conv2D):
                direct = (
                    batch_size > 0
                    and layer.stride == (1, 1)
                    and (
                        fused
                        or _direct_conv_verdict(
                            batch_size,
                            layer.output_shape[0],
                            layer.output_shape[1],
                            _conv_geometry(layer)[0],
                            layer.kernel_size[0],
                            layer.kernel_size[1],
                            layer.input_shape[2],
                            layer.output_shape[2],
                        )
                    )
                )
                step = _conv_block_step(layer, batch_size, affine, relu, pool, direct)
            elif isinstance(layer, DepthwiseConv2D):
                step = _depthwise_block_step(
                    layer, batch_size, affine, relu, pool, fused
                )
            else:
                step = _dense_block_step(layer, batch_size, affine, relu)
            steps.append(step)
            provenance = _SCRATCH
            consumed = [layer] + ([affine] if affine is not None else [])
            if affine is not None and isinstance(affine, BatchNorm):
                folded.append(affine.name)
            for member in consumed:
                if member.has_parameters:
                    captured.append(
                        (
                            member,
                            member.weights_version,
                            plan_weight_fingerprint(member.get_weights()),
                        )
                    )
            index = next_index
        else:
            step, provenance = _build_step(layer, batch_size, provenance)
            steps.append(step)
            if layer.has_parameters:
                captured.append(
                    (
                        layer,
                        layer.weights_version,
                        plan_weight_fingerprint(layer.get_weights()),
                    )
                )
            index += 1
    return ForwardPlan(
        batch_size, fused, steps, captured, provenance, tuple(folded)
    )


def compile_plan(
    model,
    batch_size: int,
    fused: bool = False,
    slice_workers: Optional[int] = None,
) -> PlanLike:
    """Compile one plan for ``model`` at ``batch_size``.

    ``model`` must be built.  With ``fused=True`` each Conv2D /
    DepthwiseConv2D / Dense layer immediately followed by a Bias or BatchNorm
    consumes that affine into its own matmul step (BatchNorm folds rescale the
    kernel: tolerance-equivalent, certified by :func:`certify_fusion` before
    the service serves them); fused plans for batches of
    :data:`SLICE_MIN_BATCH` or more additionally split across the slice
    thread pool when more than one worker is available
    (``slice_workers=None`` uses :func:`slice_worker_count`).

    Exact plans (``fused=False``) stay unconditionally bit-identical to the
    seed forward: they consume only bit-preserving chain members (Bias
    epilogue, in-place ReLU, max-pool fold) and adopt the im2col-free conv
    formulation only where the compile-time GEMM probe proved byte-identity.
    """
    if batch_size < 0:
        raise ShapeError(f"batch size must be non-negative, got {batch_size}")
    workers = slice_workers if slice_workers is not None else slice_worker_count()
    if (
        fused
        and workers > 1
        and batch_size >= SLICE_MIN_BATCH
        and batch_size >= 2 * workers
        and model.layers
    ):
        base, remainder = divmod(batch_size, workers)
        slices: list[tuple[int, int, ForwardPlan]] = []
        start = 0
        for worker in range(workers):
            size = base + (1 if worker < remainder else 0)
            slices.append(
                (start, start + size, _compile_monolithic(model, size, fused=True))
            )
            start += size
        return SlicedForwardPlan(batch_size, slices, workers)
    return _compile_monolithic(model, batch_size, fused)
