"""Model weight (de)serialization.

Weights are stored with :func:`numpy.savez_compressed` keyed by layer name.
This is used by experiments to cache trained networks so the expensive training
step runs only once per configuration.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.exceptions import SerializationError
from repro.nn.model import Sequential

__all__ = ["save_model_weights", "load_model_weights"]

PathLike = Union[str, os.PathLike]


def save_model_weights(model: Sequential, path: PathLike) -> None:
    """Save all parameterized layers of ``model`` to ``path`` (.npz)."""
    weights = model.get_weights()
    if not weights:
        raise SerializationError(f"model {model.name!r} has no parameters to save")
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(os.fspath(path), **weights)


def load_model_weights(model: Sequential, path: PathLike) -> None:
    """Load weights saved by :func:`save_model_weights` into ``model``.

    Every parameterized layer of the model must be present in the archive and
    have a matching shape; otherwise a :class:`SerializationError` is raised.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        raise SerializationError(f"weight file not found: {path}")
    with np.load(path) as archive:
        stored = {key: archive[key] for key in archive.files}
    for layer in model.layers:
        if not layer.has_parameters:
            continue
        if layer.name not in stored:
            raise SerializationError(
                f"weight archive {path} is missing parameters for layer {layer.name!r}"
            )
        expected = layer.get_weights().shape
        if stored[layer.name].shape != expected:
            raise SerializationError(
                f"layer {layer.name!r} expects weights of shape {expected}, archive has "
                f"{stored[layer.name].shape}"
            )
    model.set_weights(stored)
