"""Layer implementations for the NumPy CNN framework."""

from repro.nn.layers.activation import Activation, ReLU, Softmax
from repro.nn.layers.base import Layer
from repro.nn.layers.batchnorm import BatchNorm
from repro.nn.layers.bias import Bias
from repro.nn.layers.conv2d import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.depthwise import DepthwiseConv2D
from repro.nn.layers.pooling import AvgPool2D, MaxPool2D
from repro.nn.layers.structural import Dropout, Flatten, InputLayer, ZeroPadding2D

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "DepthwiseConv2D",
    "Bias",
    "BatchNorm",
    "Activation",
    "ReLU",
    "Softmax",
    "MaxPool2D",
    "AvgPool2D",
    "Flatten",
    "Dropout",
    "InputLayer",
    "ZeroPadding2D",
]
