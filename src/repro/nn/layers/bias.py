"""Bias layer.

The paper (Sec. IV-E) treats the bias of convolution and dense layers as its
own layer with the relationship ``output = input + parameters``.  The bias is
a 1-D tensor broadcast along the last axis of the input: for a convolution the
same bias value is added to every spatial position of a filter's output, for a
dense layer each output column has its own bias value.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.layers.base import Layer
from repro.types import FLOAT_DTYPE, Shape

__all__ = ["Bias"]


class Bias(Layer):
    """Adds a per-channel (last axis) bias: ``Y = X + b``."""

    has_parameters = True
    structurally_invertible = True

    def __init__(self, name: Optional[str] = None, seed: Optional[int] = None):
        super().__init__(name=name)
        self.seed = seed
        self.values: Optional[np.ndarray] = None

    def compute_output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) < 1:
            raise ShapeError("Bias requires at least a 1-D per-sample input")
        return input_shape

    def _build(self, input_shape: Shape) -> None:
        channels = input_shape[-1]
        # Real networks initialize biases to zero; a tiny random component keeps
        # recovery tests from trivially passing on all-zero parameters.
        rng = np.random.default_rng(self.seed)
        self.values = (rng.uniform(-0.01, 0.01, size=(channels,))).astype(FLOAT_DTYPE)

    @property
    def channels(self) -> int:
        """Number of bias values (size of the last input axis)."""
        return self.input_shape[-1]

    @property
    def replication_factor(self) -> int:
        """How many times each bias value appears in one sample's output."""
        count = 1
        for dim in self.input_shape[:-1]:
            count *= dim
        return count

    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = self._check_input(inputs)
        assert self.values is not None
        return (inputs + self.values).astype(FLOAT_DTYPE)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        axes = tuple(range(grad_output.ndim - 1))
        self.grad_weights = grad_output.sum(axis=axes).astype(FLOAT_DTYPE)
        return grad_output

    # ------------------------------------------------------------------ #
    def get_weights(self) -> np.ndarray:
        self._require_built()
        assert self.values is not None
        return self.values.copy()

    def set_weights(self, weights: np.ndarray) -> None:
        self._require_built()
        weights = np.asarray(weights, dtype=FLOAT_DTYPE)
        assert self.values is not None
        if weights.shape != self.values.shape:
            raise ShapeError(
                f"Bias {self.name!r} expected weights of shape {self.values.shape}, "
                f"got {weights.shape}"
            )
        self.values = weights.copy()
        self.weights_version += 1
