"""2-D convolution layer (no bias; bias is modelled as a separate layer).

The filter tensor has shape ``(F1, F2, Z, Y)`` -- filter height, filter width,
input channels, output filters -- matching the paper's notation.  The forward
pass is computed with im2col + matrix multiplication, which is also exactly the
formulation MILR's parameter solving and inversion use.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import LayerConfigurationError, ShapeError
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer
from repro.nn.tensor_utils import (
    col2im,
    conv_output_length,
    im2col,
    pad_input,
)
from repro.types import FLOAT_DTYPE, Shape

__all__ = ["Conv2D"]


def _pair(value: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(value, tuple):
        if len(value) != 2:
            raise LayerConfigurationError(f"expected a pair, got {value!r}")
        return (int(value[0]), int(value[1]))
    return (int(value), int(value))


class Conv2D(Layer):
    """2-D convolution ``(B, M, M, Z) -> (B, G, G, Y)``.

    Args:
        filters: Number of output filters ``Y``.
        kernel_size: Filter spatial size ``F`` (int or pair).
        stride: Convolution stride (int or pair).
        padding: ``"valid"`` or ``"same"``.
        initializer: Weight initializer name.
        seed: Seed for deterministic initialization.
        name: Optional layer name.
    """

    has_parameters = True
    # Conv inversion needs Y >= F^2 Z or dummy filters; the MILR planner makes
    # that decision, so structurally the layer is considered invertible.
    structurally_invertible = True

    def __init__(
        self,
        filters: int,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: str = "valid",
        initializer: str = "he_normal",
        seed: Optional[int] = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if filters <= 0:
            raise LayerConfigurationError(f"filters must be positive, got {filters}")
        if padding not in ("valid", "same"):
            raise LayerConfigurationError(f"padding must be 'valid' or 'same', got {padding!r}")
        self.filters = int(filters)
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        if self.stride[0] <= 0 or self.stride[1] <= 0:
            raise LayerConfigurationError(f"stride must be positive, got {self.stride}")
        self.padding = padding
        self.initializer = initializer
        self.seed = seed
        self.kernel: Optional[np.ndarray] = None
        self._last_patches: Optional[np.ndarray] = None
        self._last_padded_shape: Optional[tuple[int, int, int, int]] = None
        self._last_pad_amounts: Optional[tuple[tuple[int, int], tuple[int, int]]] = None

    # ------------------------------------------------------------------ #
    def compute_output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 3:
            raise ShapeError(f"Conv2D expects (H, W, C) inputs, got {input_shape}")
        height, width, _ = input_shape
        out_h = conv_output_length(height, self.kernel_size[0], self.stride[0], self.padding)
        out_w = conv_output_length(width, self.kernel_size[1], self.stride[1], self.padding)
        return (out_h, out_w, self.filters)

    def _build(self, input_shape: Shape) -> None:
        channels = input_shape[2]
        f1, f2 = self.kernel_size
        fan_in = f1 * f2 * channels
        fan_out = f1 * f2 * self.filters
        rng = np.random.default_rng(self.seed)
        init = get_initializer(self.initializer)
        self.kernel = init((f1, f2, channels, self.filters), rng, fan_in=fan_in, fan_out=fan_out)

    # ------------------------------------------------------------------ #
    @property
    def input_channels(self) -> int:
        """Number of input channels ``Z``."""
        return self.input_shape[2]

    @property
    def receptive_field_size(self) -> int:
        """``F1 * F2 * Z`` -- unknowns per output pixel during inversion."""
        f1, f2 = self.kernel_size
        return f1 * f2 * self.input_channels

    @property
    def output_positions(self) -> int:
        """``G1 * G2`` -- equations per filter during parameter solving."""
        out_h, out_w, _ = self.output_shape
        return out_h * out_w

    def kernel_matrix(self) -> np.ndarray:
        """Return the kernel reshaped to ``(F1*F2*Z, Y)`` for matmul form."""
        self._require_built()
        assert self.kernel is not None
        return self.kernel.reshape(self.receptive_field_size, self.filters)

    def extract_patches(self, inputs: np.ndarray) -> np.ndarray:
        """Return the im2col patch tensor ``(B, G1, G2, F1*F2*Z)`` for ``inputs``."""
        inputs = self._check_input(inputs)
        padded, _ = pad_input(inputs, self.kernel_size, self.stride, self.padding)
        return im2col(padded, self.kernel_size, self.stride)

    def padded_input_shape(self, batch: int) -> tuple[int, int, int, int]:
        """Return the shape of the padded input for a batch of ``batch`` samples."""
        height, width, channels = self.input_shape
        if self.padding == "valid":
            return (batch, height, width, channels)
        dummy = np.zeros((1, height, width, channels), dtype=FLOAT_DTYPE)
        padded, _ = pad_input(dummy, self.kernel_size, self.stride, self.padding)
        return (batch, padded.shape[1], padded.shape[2], channels)

    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = self._check_input(inputs)
        assert self.kernel is not None
        padded, pad_amounts = pad_input(inputs, self.kernel_size, self.stride, self.padding)
        patches = im2col(padded, self.kernel_size, self.stride)
        if training:
            self._last_patches = patches
            self._last_padded_shape = padded.shape
            self._last_pad_amounts = pad_amounts
        batch, out_h, out_w, _ = patches.shape
        flat = patches.reshape(batch * out_h * out_w, -1)
        out = flat @ self.kernel_matrix()
        return out.reshape(batch, out_h, out_w, self.filters).astype(FLOAT_DTYPE)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_patches is None or self._last_padded_shape is None:
            raise ShapeError("backward() called before a training-mode forward()")
        assert self.kernel is not None
        batch, out_h, out_w, _ = grad_output.shape
        grad_flat = grad_output.reshape(batch * out_h * out_w, self.filters)
        patches_flat = self._last_patches.reshape(batch * out_h * out_w, -1)
        grad_kernel_matrix = patches_flat.T @ grad_flat
        self.grad_weights = grad_kernel_matrix.reshape(self.kernel.shape).astype(FLOAT_DTYPE)
        grad_patches_flat = grad_flat @ self.kernel_matrix().T
        grad_patches = grad_patches_flat.reshape(batch, out_h, out_w, -1)
        grad_padded = col2im(
            grad_patches,
            self._last_padded_shape,
            self.kernel_size,
            self.stride,
            reduce="sum",
        )
        assert self._last_pad_amounts is not None
        (top, bottom), (left, right) = self._last_pad_amounts
        height = grad_padded.shape[1]
        width = grad_padded.shape[2]
        grad_input = grad_padded[
            :, top : height - bottom if bottom else height, left : width - right if right else width, :
        ]
        return grad_input.astype(FLOAT_DTYPE)

    # ------------------------------------------------------------------ #
    def get_weights(self) -> np.ndarray:
        self._require_built()
        assert self.kernel is not None
        return self.kernel.copy()

    def set_weights(self, weights: np.ndarray) -> None:
        self._require_built()
        weights = np.asarray(weights, dtype=FLOAT_DTYPE)
        assert self.kernel is not None
        if weights.shape != self.kernel.shape:
            raise ShapeError(
                f"Conv2D {self.name!r} expected weights of shape {self.kernel.shape}, "
                f"got {weights.shape}"
            )
        self.kernel = weights.copy()
        self.weights_version += 1
