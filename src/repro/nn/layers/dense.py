"""Fully connected (dense) layer without bias.

The paper treats the bias term of a dense layer as a separate :class:`Bias`
layer with its own input/output/parameter relationship, so this layer is a
pure matrix multiplication ``Y = X @ W`` with ``X (M, N)``, ``W (N, P)`` and
``Y (M, P)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer
from repro.types import FLOAT_DTYPE, Shape

__all__ = ["Dense"]


class Dense(Layer):
    """Dense layer ``Y = X @ W``.

    Args:
        units: Output feature count ``P``.
        initializer: Name of the weight initializer.
        seed: Seed for parameter initialization (deterministic builds).
        name: Optional layer name.
    """

    has_parameters = True
    structurally_invertible = True

    def __init__(
        self,
        units: int,
        initializer: str = "glorot_uniform",
        seed: Optional[int] = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if units <= 0:
            raise ShapeError(f"units must be positive, got {units}")
        self.units = int(units)
        self.initializer = initializer
        self.seed = seed
        self.weights: Optional[np.ndarray] = None
        self._last_input: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def compute_output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 1:
            raise ShapeError(
                f"Dense expects a flat per-sample input, got shape {input_shape}"
            )
        return (self.units,)

    def _build(self, input_shape: Shape) -> None:
        features = input_shape[0]
        rng = np.random.default_rng(self.seed)
        init = get_initializer(self.initializer)
        self.weights = init((features, self.units), rng, fan_in=features, fan_out=self.units)

    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = self._check_input(inputs)
        assert self.weights is not None
        if training:
            self._last_input = inputs
        return inputs @ self.weights

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise ShapeError("backward() called before a training-mode forward()")
        assert self.weights is not None
        self.grad_weights = (self._last_input.T @ grad_output).astype(FLOAT_DTYPE)
        return (grad_output @ self.weights.T).astype(FLOAT_DTYPE)

    # ------------------------------------------------------------------ #
    def get_weights(self) -> np.ndarray:
        self._require_built()
        assert self.weights is not None
        return self.weights.copy()

    def set_weights(self, weights: np.ndarray) -> None:
        self._require_built()
        weights = np.asarray(weights, dtype=FLOAT_DTYPE)
        assert self.weights is not None
        if weights.shape != self.weights.shape:
            raise ShapeError(
                f"Dense {self.name!r} expected weights of shape {self.weights.shape}, "
                f"got {weights.shape}"
            )
        self.weights = weights.copy()
        self.weights_version += 1

    @property
    def features_in(self) -> int:
        """Input feature count ``N``."""
        return self.input_shape[0]

    @property
    def features_out(self) -> int:
        """Output feature count ``P``."""
        return self.units
