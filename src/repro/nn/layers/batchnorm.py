"""Batch-normalization layer, folded to its inference-time affine form.

At inference a trained batch-normalization layer is a per-channel affine
transform: ``y = gamma * x + beta`` along the last axis, where ``gamma``
absorbs the learned scale and the running variance and ``beta`` the learned
shift and the running mean.  That folded form is what a deployed network's
weight memory actually holds, so it is also what the MILR fault model
corrupts and what the protection handler recovers.

Parameters are exposed as one ``(2, C)`` array -- row 0 the scales, row 1 the
shifts -- so the fault-injection, fingerprinting and recovery machinery sees a
single weight tensor like every other layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.layers.base import Layer
from repro.types import FLOAT_DTYPE, Shape

__all__ = ["BatchNorm"]


class BatchNorm(Layer):
    """Per-channel affine (folded batch norm): ``Y = X * gamma + beta``."""

    has_parameters = True
    structurally_invertible = True

    def __init__(self, name: Optional[str] = None, seed: Optional[int] = None):
        super().__init__(name=name)
        self.seed = seed
        self.gamma: Optional[np.ndarray] = None
        self.beta: Optional[np.ndarray] = None
        self._last_input: Optional[np.ndarray] = None

    def compute_output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) < 1:
            raise ShapeError("BatchNorm requires at least a 1-D per-sample input")
        return input_shape

    def _build(self, input_shape: Shape) -> None:
        channels = input_shape[-1]
        # Folded inference parameters sit near (scale=1, shift=0); the small
        # random component keeps recovery tests from trivially passing on
        # degenerate all-equal parameters.
        rng = np.random.default_rng(self.seed)
        self.gamma = (1.0 + rng.uniform(-0.1, 0.1, size=(channels,))).astype(FLOAT_DTYPE)
        self.beta = rng.uniform(-0.05, 0.05, size=(channels,)).astype(FLOAT_DTYPE)

    @property
    def channels(self) -> int:
        """Number of normalized channels (size of the last input axis)."""
        return self.input_shape[-1]

    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = self._check_input(inputs)
        assert self.gamma is not None and self.beta is not None
        if training:
            self._last_input = inputs
        return (inputs * self.gamma + self.beta).astype(FLOAT_DTYPE)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise ShapeError("backward() called before a training-mode forward()")
        assert self.gamma is not None
        axes = tuple(range(grad_output.ndim - 1))
        grad_gamma = (grad_output * self._last_input).sum(axis=axes)
        grad_beta = grad_output.sum(axis=axes)
        self.grad_weights = np.stack([grad_gamma, grad_beta]).astype(FLOAT_DTYPE)
        return (grad_output * self.gamma).astype(FLOAT_DTYPE)

    def invert(self, outputs: np.ndarray) -> np.ndarray:
        """Exact inverse of the affine: ``x = (y - beta) / gamma``.

        Corrupted scales can be zero (or non-finite) mid-recovery; the
        division is allowed to produce inf/nan rather than raise, matching
        how inversion through other corrupted layers degrades.
        """
        outputs = np.asarray(outputs, dtype=FLOAT_DTYPE)
        assert self.gamma is not None and self.beta is not None
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            return ((outputs - self.beta) / self.gamma).astype(FLOAT_DTYPE)

    # ------------------------------------------------------------------ #
    def get_weights(self) -> np.ndarray:
        self._require_built()
        assert self.gamma is not None and self.beta is not None
        return np.stack([self.gamma, self.beta])

    def set_weights(self, weights: np.ndarray) -> None:
        self._require_built()
        weights = np.asarray(weights, dtype=FLOAT_DTYPE)
        assert self.gamma is not None and self.beta is not None
        expected = (2, self.gamma.shape[0])
        if weights.shape != expected:
            raise ShapeError(
                f"BatchNorm {self.name!r} expected weights of shape {expected}, "
                f"got {weights.shape}"
            )
        self.gamma = weights[0].copy()
        self.beta = weights[1].copy()
        self.weights_version += 1
