"""Structural layers: flatten, dropout, explicit input and zero padding.

The paper groups these as "other layers" (Sec. IV-E-d): they carry no
parameters.  Flatten and padding only reshape data, so a backward pass simply
restores the original shape; dropout is a pure pass-through at inference time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import LayerConfigurationError, ShapeError
from repro.nn.layers.base import Layer
from repro.types import FLOAT_DTYPE, Shape

__all__ = ["Flatten", "Dropout", "InputLayer", "ZeroPadding2D"]


class Flatten(Layer):
    """Reshape ``(B, *dims)`` to ``(B, prod(dims))`` without losing data."""

    has_parameters = False
    structurally_invertible = True

    def compute_output_shape(self, input_shape: Shape) -> Shape:
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = self._check_input(inputs)
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape((grad_output.shape[0],) + self.input_shape)

    def invert(self, outputs: np.ndarray) -> np.ndarray:
        """Restore the original per-sample shape (exact inverse)."""
        outputs = np.asarray(outputs, dtype=FLOAT_DTYPE)
        return outputs.reshape((outputs.shape[0],) + self.input_shape)


class Dropout(Layer):
    """Standard inverted dropout; identity at inference time."""

    has_parameters = False
    structurally_invertible = True
    is_passthrough = True

    def __init__(self, rate: float = 0.5, seed: Optional[int] = None, name: Optional[str] = None):
        super().__init__(name=name)
        if not 0.0 <= rate < 1.0:
            raise LayerConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = np.random.default_rng(seed)
        self._last_mask: Optional[np.ndarray] = None

    def compute_output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = self._check_input(inputs)
        if not training or self.rate == 0.0:
            return inputs
        keep = 1.0 - self.rate
        mask = (self._rng.random(inputs.shape) < keep).astype(FLOAT_DTYPE) / keep
        self._last_mask = mask
        return (inputs * mask).astype(FLOAT_DTYPE)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_mask is None:
            return grad_output
        return (grad_output * self._last_mask).astype(FLOAT_DTYPE)


class InputLayer(Layer):
    """Explicit input layer; validates shape and passes data through."""

    has_parameters = False
    structurally_invertible = True
    is_passthrough = True

    def __init__(self, shape: Shape, name: Optional[str] = None):
        super().__init__(name=name)
        self.declared_shape = tuple(int(dim) for dim in shape)

    def compute_output_shape(self, input_shape: Shape) -> Shape:
        if tuple(input_shape) != self.declared_shape:
            raise ShapeError(
                f"InputLayer declared shape {self.declared_shape}, got {tuple(input_shape)}"
            )
        return input_shape

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        return self._check_input(inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


class ZeroPadding2D(Layer):
    """Pad the spatial axes of a ``(B, H, W, C)`` tensor with zeros."""

    has_parameters = False
    structurally_invertible = True

    def __init__(self, padding: int | tuple[int, int] = 1, name: Optional[str] = None):
        super().__init__(name=name)
        if isinstance(padding, tuple):
            self.pad_h, self.pad_w = int(padding[0]), int(padding[1])
        else:
            self.pad_h = self.pad_w = int(padding)
        if self.pad_h < 0 or self.pad_w < 0:
            raise LayerConfigurationError("padding amounts must be non-negative")

    def compute_output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 3:
            raise ShapeError(f"ZeroPadding2D expects (H, W, C) inputs, got {input_shape}")
        height, width, channels = input_shape
        return (height + 2 * self.pad_h, width + 2 * self.pad_w, channels)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = self._check_input(inputs)
        return np.pad(
            inputs,
            ((0, 0), (self.pad_h, self.pad_h), (self.pad_w, self.pad_w), (0, 0)),
            mode="constant",
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.invert(grad_output)

    def invert(self, outputs: np.ndarray) -> np.ndarray:
        """Strip the padding (exact inverse for the interior region)."""
        outputs = np.asarray(outputs, dtype=FLOAT_DTYPE)
        height = outputs.shape[1]
        width = outputs.shape[2]
        return outputs[
            :,
            self.pad_h : height - self.pad_h if self.pad_h else height,
            self.pad_w : width - self.pad_w if self.pad_w else width,
            :,
        ]
