"""Abstract base class for all layers."""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.exceptions import NotBuiltError, ShapeError
from repro.types import FLOAT_DTYPE, LayerSignature, Shape, ShapeLike, as_shape

__all__ = ["Layer"]

_NAME_COUNTERS: dict[str, itertools.count] = {}


def _auto_name(kind: str) -> str:
    counter = _NAME_COUNTERS.setdefault(kind, itertools.count())
    return f"{kind.lower()}_{next(counter)}"


class Layer(ABC):
    """Base class for every layer in the framework.

    A layer is *built* once it knows its per-sample input shape; building
    allocates parameters.  Shapes never include the batch dimension.

    Subclasses implement :meth:`build`, :meth:`forward` and, if they are
    trainable or sit on a training path, :meth:`backward`.
    """

    #: Whether the layer owns trainable parameters.
    has_parameters: bool = False
    #: Whether the layer can be inverted exactly with no extra stored data
    #: (structure-level property; data-dependent requirements are handled by
    #: the MILR planner).
    structurally_invertible: bool = False
    #: Whether the layer changes values as data passes through during
    #: inference (layers like Dropout/InputLayer are pass-through).
    is_passthrough: bool = False

    def __init__(self, name: Optional[str] = None):
        self.name = name or _auto_name(type(self).__name__)
        self.built = False
        self._input_shape: Optional[Shape] = None
        self._output_shape: Optional[Shape] = None
        #: Gradient of the loss w.r.t. this layer's parameters, populated by
        #: :meth:`backward` during training.
        self.grad_weights: Optional[np.ndarray] = None
        #: Monotonic weight epoch, bumped by every :meth:`set_weights` (and by
        #: :meth:`build`).  Compiled forward plans (:mod:`repro.nn.plan`)
        #: capture the epoch of every parameterized layer and use a cheap
        #: integer comparison per call to notice that weights were mutated
        #: (fault injection, repair, training) since the plan was compiled.
        self.weights_version: int = 0

    # ------------------------------------------------------------------ #
    # Shape handling
    # ------------------------------------------------------------------ #
    @property
    def input_shape(self) -> Shape:
        """Per-sample input shape (raises if the layer is not built)."""
        self._require_built()
        assert self._input_shape is not None
        return self._input_shape

    @property
    def output_shape(self) -> Shape:
        """Per-sample output shape (raises if the layer is not built)."""
        self._require_built()
        assert self._output_shape is not None
        return self._output_shape

    def build(self, input_shape: ShapeLike) -> None:
        """Bind the layer to ``input_shape`` and allocate parameters."""
        input_shape = as_shape(input_shape)
        self._input_shape = input_shape
        self._output_shape = self.compute_output_shape(input_shape)
        self._build(input_shape)
        self.built = True
        self.weights_version += 1

    def _build(self, input_shape: Shape) -> None:
        """Hook for subclasses that allocate parameters.  Default: nothing."""

    @abstractmethod
    def compute_output_shape(self, input_shape: Shape) -> Shape:
        """Return the per-sample output shape for ``input_shape``."""

    def _require_built(self) -> None:
        if not self.built:
            raise NotBuiltError(f"layer {self.name!r} has not been built")

    def _check_input(self, inputs: np.ndarray) -> np.ndarray:
        """Validate and coerce a batched input tensor."""
        self._require_built()
        inputs = np.asarray(inputs, dtype=FLOAT_DTYPE)
        expected = self.input_shape
        if inputs.shape[1:] != expected:
            raise ShapeError(
                f"layer {self.name!r} expected per-sample shape {expected}, "
                f"got {inputs.shape[1:]}"
            )
        return inputs

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    @abstractmethod
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer on a batched input tensor."""

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` through the layer.

        Returns the gradient w.r.t. the layer input and stores the gradient
        w.r.t. the parameters in :attr:`grad_weights`.  Layers that are never
        trained may leave this unimplemented.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support backward()")

    def __call__(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(inputs, training=training)

    # ------------------------------------------------------------------ #
    # Parameter access
    # ------------------------------------------------------------------ #
    def get_weights(self) -> np.ndarray:
        """Return a copy of the layer parameters (empty array if none)."""
        return np.zeros((0,), dtype=FLOAT_DTYPE)

    def set_weights(self, weights: np.ndarray) -> None:
        """Overwrite the layer parameters with ``weights`` (same shape)."""
        if np.asarray(weights).size != 0:
            raise ShapeError(f"layer {self.name!r} has no parameters to set")

    @property
    def parameter_count(self) -> int:
        """Number of trainable parameters owned by this layer."""
        return int(self.get_weights().size) if self.has_parameters else 0

    @property
    def parameter_bytes(self) -> int:
        """Size of the parameters in bytes (float32 words)."""
        return self.parameter_count * 4

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def signature(self) -> LayerSignature:
        """Return a static description of this (built) layer."""
        self._require_built()
        return LayerSignature(
            name=self.name,
            kind=type(self).__name__,
            input_shape=self.input_shape,
            output_shape=self.output_shape,
            parameter_count=self.parameter_count,
        )

    def __repr__(self) -> str:
        if self.built:
            return (
                f"{type(self).__name__}(name={self.name!r}, "
                f"input_shape={self._input_shape}, output_shape={self._output_shape})"
            )
        return f"{type(self).__name__}(name={self.name!r}, unbuilt)"
