"""Pooling layers.

Pooling layers are the canonical example of a non-invertible, parameter-free
layer in the paper: they lose information, so MILR must store a full input
checkpoint before them (Sec. IV-C).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import LayerConfigurationError, ShapeError
from repro.nn.layers.base import Layer
from repro.nn.tensor_utils import pool_patches
from repro.types import FLOAT_DTYPE, Shape

__all__ = ["MaxPool2D", "AvgPool2D"]


def _pair(value: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(value, tuple):
        if len(value) != 2:
            raise LayerConfigurationError(f"expected a pair, got {value!r}")
        return (int(value[0]), int(value[1]))
    return (int(value), int(value))


class _Pool2D(Layer):
    """Shared machinery for max and average pooling."""

    has_parameters = False
    structurally_invertible = False
    #: Reduction applied over the window axis (``"max"`` or ``"mean"``);
    #: compiled forward plans dispatch on this instead of the subclass type.
    window_reduce: str = ""

    def __init__(
        self,
        pool_size: int | tuple[int, int] = 2,
        stride: Optional[int | tuple[int, int]] = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        self.pool_size = _pair(pool_size)
        self.stride = _pair(stride) if stride is not None else self.pool_size
        if min(self.pool_size) <= 0 or min(self.stride) <= 0:
            raise LayerConfigurationError("pool_size and stride must be positive")
        self._last_input: Optional[np.ndarray] = None
        self._last_argmax: Optional[np.ndarray] = None

    def compute_output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 3:
            raise ShapeError(f"pooling expects (H, W, C) inputs, got {input_shape}")
        height, width, channels = input_shape
        p1, p2 = self.pool_size
        s1, s2 = self.stride
        if height < p1 or width < p2:
            raise ShapeError(
                f"input ({height},{width}) smaller than pool window ({p1},{p2})"
            )
        out_h = (height - p1) // s1 + 1
        out_w = (width - p2) // s2 + 1
        return (out_h, out_w, channels)

    def _windows(self, inputs: np.ndarray) -> np.ndarray:
        return pool_patches(inputs, self.pool_size, self.stride)


class MaxPool2D(_Pool2D):
    """Max pooling over non-overlapping (by default) spatial windows."""

    window_reduce = "max"

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = self._check_input(inputs)
        windows = self._windows(inputs)
        if training:
            self._last_input = inputs
            self._last_argmax = windows.argmax(axis=3)
        return windows.max(axis=3).astype(FLOAT_DTYPE)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None or self._last_argmax is None:
            raise ShapeError("backward() called before a training-mode forward()")
        batch, out_h, out_w, channels = grad_output.shape
        p1, p2 = self.pool_size
        s1, s2 = self.stride
        grad_input = np.zeros_like(self._last_input, dtype=np.float64)
        argmax = self._last_argmax
        for i in range(out_h):
            for j in range(out_w):
                flat_idx = argmax[:, i, j, :]  # (batch, channels)
                rows = flat_idx // p2 + i * s1
                cols = flat_idx % p2 + j * s2
                for b in range(batch):
                    for c in range(channels):
                        grad_input[b, rows[b, c], cols[b, c], c] += grad_output[b, i, j, c]
        return grad_input.astype(FLOAT_DTYPE)


class AvgPool2D(_Pool2D):
    """Average pooling over spatial windows."""

    window_reduce = "mean"

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = self._check_input(inputs)
        windows = self._windows(inputs)
        if training:
            self._last_input = inputs
        return windows.mean(axis=3).astype(FLOAT_DTYPE)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise ShapeError("backward() called before a training-mode forward()")
        batch, out_h, out_w, channels = grad_output.shape
        p1, p2 = self.pool_size
        s1, s2 = self.stride
        grad_input = np.zeros_like(self._last_input, dtype=np.float64)
        share = 1.0 / (p1 * p2)
        for i in range(out_h):
            for j in range(out_w):
                grad_input[:, i * s1 : i * s1 + p1, j * s2 : j * s2 + p2, :] += (
                    grad_output[:, i : i + 1, j : j + 1, :] * share
                )
        return grad_input.astype(FLOAT_DTYPE)
