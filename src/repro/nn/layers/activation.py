"""Activation layers.

The paper treats activations as parameter-free layers; during MILR's detection
and recovery passes all activations are treated as the identity function
(Sec. IV-D), which the MILR core implements by calling the layer's forward only
during normal inference and skipping it during recovery passes.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.exceptions import LayerConfigurationError, ShapeError
from repro.nn.layers.base import Layer
from repro.types import FLOAT_DTYPE, Shape

__all__ = ["Activation", "ReLU", "Softmax"]


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0).astype(FLOAT_DTYPE)


def _relu_grad(x: np.ndarray, y: np.ndarray, grad: np.ndarray) -> np.ndarray:
    del y
    return (grad * (x > 0)).astype(FLOAT_DTYPE)


def _linear(x: np.ndarray) -> np.ndarray:
    return x.astype(FLOAT_DTYPE)


def _linear_grad(x: np.ndarray, y: np.ndarray, grad: np.ndarray) -> np.ndarray:
    del x, y
    return grad.astype(FLOAT_DTYPE)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return (1.0 / (1.0 + np.exp(-x.astype(np.float64)))).astype(FLOAT_DTYPE)


def _sigmoid_grad(x: np.ndarray, y: np.ndarray, grad: np.ndarray) -> np.ndarray:
    del x
    return (grad * y * (1.0 - y)).astype(FLOAT_DTYPE)


def _tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x).astype(FLOAT_DTYPE)


def _tanh_grad(x: np.ndarray, y: np.ndarray, grad: np.ndarray) -> np.ndarray:
    del x
    return (grad * (1.0 - y * y)).astype(FLOAT_DTYPE)


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted.astype(np.float64))
    return (exp / exp.sum(axis=-1, keepdims=True)).astype(FLOAT_DTYPE)


def _softmax_grad(x: np.ndarray, y: np.ndarray, grad: np.ndarray) -> np.ndarray:
    del x
    dot = np.sum(grad * y, axis=-1, keepdims=True)
    return (y * (grad - dot)).astype(FLOAT_DTYPE)


_ACTIVATIONS: dict[str, tuple[Callable, Callable]] = {
    "relu": (_relu, _relu_grad),
    "linear": (_linear, _linear_grad),
    "sigmoid": (_sigmoid, _sigmoid_grad),
    "tanh": (_tanh, _tanh_grad),
    "softmax": (_softmax, _softmax_grad),
}


class Activation(Layer):
    """Parameter-free element-wise (or row-wise, for softmax) activation."""

    has_parameters = False
    #: Treated as identity during MILR recovery passes, so for planning
    #: purposes the layer never forces a checkpoint.
    structurally_invertible = True

    def __init__(self, function: str = "relu", name: Optional[str] = None):
        super().__init__(name=name)
        if function not in _ACTIVATIONS:
            raise LayerConfigurationError(
                f"unknown activation {function!r}; available: {sorted(_ACTIVATIONS)}"
            )
        self.function = function
        self._forward_fn, self._grad_fn = _ACTIVATIONS[function]
        self._last_input: Optional[np.ndarray] = None
        self._last_output: Optional[np.ndarray] = None

    def compute_output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    @property
    def forward_function(self) -> Callable[[np.ndarray], np.ndarray]:
        """The pure element-wise (or row-wise) function this layer applies.

        Exposed for the compiled forward plans (:mod:`repro.nn.plan`), which
        execute the function directly without the training-capture branch.
        """
        return self._forward_fn

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = self._check_input(inputs)
        outputs = self._forward_fn(inputs)
        if training:
            self._last_input = inputs
            self._last_output = outputs
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None or self._last_output is None:
            raise ShapeError("backward() called before a training-mode forward()")
        return self._grad_fn(self._last_input, self._last_output, grad_output)


class ReLU(Activation):
    """Convenience subclass for the most common CNN activation."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(function="relu", name=name)


class Softmax(Activation):
    """Row-wise softmax, typically the last layer of a classifier."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(function="softmax", name=name)
