"""Depthwise 2-D convolution (depth multiplier 1, no bias).

Each input channel is convolved with its own single ``(F1, F2)`` filter, so
the kernel tensor is ``(F1, F2, C)`` and the output keeps the channel count.
The forward pass reuses the im2col machinery: the patch tensor is reshaped to
``(B, G1, G2, F1*F2, C)`` and contracted against the kernel per channel, which
is also exactly the per-channel matmul formulation MILR's parameter solving
operates on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import LayerConfigurationError, ShapeError
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer
from repro.nn.tensor_utils import col2im, conv_output_length, im2col, pad_input
from repro.types import FLOAT_DTYPE, Shape

__all__ = ["DepthwiseConv2D"]


def _pair(value: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(value, tuple):
        if len(value) != 2:
            raise LayerConfigurationError(f"expected a pair, got {value!r}")
        return (int(value[0]), int(value[1]))
    return (int(value), int(value))


class DepthwiseConv2D(Layer):
    """Depthwise convolution ``(B, M, M, C) -> (B, G, G, C)``.

    Args:
        kernel_size: Filter spatial size ``F`` (int or pair).
        stride: Convolution stride (int or pair).
        padding: ``"valid"`` or ``"same"``.
        initializer: Weight initializer name.
        seed: Seed for deterministic initialization.
        name: Optional layer name.
    """

    has_parameters = True
    # Each output pixel carries one equation per channel against F^2 unknowns
    # per channel, so the layer loses information; MILR recovery relies on a
    # stored input checkpoint instead of inversion.
    structurally_invertible = False

    def __init__(
        self,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: str = "valid",
        initializer: str = "he_normal",
        seed: Optional[int] = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if padding not in ("valid", "same"):
            raise LayerConfigurationError(f"padding must be 'valid' or 'same', got {padding!r}")
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        if self.stride[0] <= 0 or self.stride[1] <= 0:
            raise LayerConfigurationError(f"stride must be positive, got {self.stride}")
        self.padding = padding
        self.initializer = initializer
        self.seed = seed
        self.kernel: Optional[np.ndarray] = None
        self._last_patches: Optional[np.ndarray] = None
        self._last_padded_shape: Optional[tuple[int, int, int, int]] = None
        self._last_pad_amounts: Optional[tuple[tuple[int, int], tuple[int, int]]] = None

    # ------------------------------------------------------------------ #
    def compute_output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 3:
            raise ShapeError(f"DepthwiseConv2D expects (H, W, C) inputs, got {input_shape}")
        height, width, channels = input_shape
        out_h = conv_output_length(height, self.kernel_size[0], self.stride[0], self.padding)
        out_w = conv_output_length(width, self.kernel_size[1], self.stride[1], self.padding)
        return (out_h, out_w, channels)

    def _build(self, input_shape: Shape) -> None:
        channels = input_shape[2]
        f1, f2 = self.kernel_size
        rng = np.random.default_rng(self.seed)
        init = get_initializer(self.initializer)
        self.kernel = init((f1, f2, channels), rng, fan_in=f1 * f2, fan_out=f1 * f2)

    # ------------------------------------------------------------------ #
    @property
    def channels(self) -> int:
        """Number of channels ``C`` (input and output)."""
        return self.input_shape[2]

    @property
    def taps_per_channel(self) -> int:
        """``F1 * F2`` -- unknowns per channel during parameter solving."""
        f1, f2 = self.kernel_size
        return f1 * f2

    @property
    def output_positions(self) -> int:
        """``G1 * G2`` -- equations per channel during parameter solving."""
        out_h, out_w, _ = self.output_shape
        return out_h * out_w

    def kernel_matrix(self) -> np.ndarray:
        """Return the kernel reshaped to ``(F1*F2, C)`` for per-channel matmul."""
        self._require_built()
        assert self.kernel is not None
        return self.kernel.reshape(self.taps_per_channel, self.channels)

    def channel_patches(self, inputs: np.ndarray) -> np.ndarray:
        """Return im2col patches split per channel: ``(B, G1, G2, F1*F2, C)``."""
        inputs = self._check_input(inputs)
        padded, _ = pad_input(inputs, self.kernel_size, self.stride, self.padding)
        patches = im2col(padded, self.kernel_size, self.stride)
        batch, out_h, out_w, _ = patches.shape
        # im2col orders the last axis (f1, f2, channel) row-major, so the
        # reshape groups the F1*F2 taps of each channel together.
        return patches.reshape(batch, out_h, out_w, self.taps_per_channel, self.channels)

    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = self._check_input(inputs)
        assert self.kernel is not None
        padded, pad_amounts = pad_input(inputs, self.kernel_size, self.stride, self.padding)
        patches = im2col(padded, self.kernel_size, self.stride)
        if training:
            self._last_patches = patches
            self._last_padded_shape = padded.shape
            self._last_pad_amounts = pad_amounts
        batch, out_h, out_w, _ = patches.shape
        split = patches.reshape(batch, out_h, out_w, self.taps_per_channel, self.channels)
        out = np.einsum("bhwkc,kc->bhwc", split, self.kernel_matrix())
        return out.astype(FLOAT_DTYPE)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_patches is None or self._last_padded_shape is None:
            raise ShapeError("backward() called before a training-mode forward()")
        assert self.kernel is not None
        batch, out_h, out_w, _ = grad_output.shape
        split = self._last_patches.reshape(
            batch, out_h, out_w, self.taps_per_channel, self.channels
        )
        grad_kernel = np.einsum("bhwkc,bhwc->kc", split, grad_output)
        self.grad_weights = grad_kernel.reshape(self.kernel.shape).astype(FLOAT_DTYPE)
        grad_split = np.einsum("bhwc,kc->bhwkc", grad_output, self.kernel_matrix())
        grad_patches = grad_split.reshape(batch, out_h, out_w, -1)
        grad_padded = col2im(
            grad_patches,
            self._last_padded_shape,
            self.kernel_size,
            self.stride,
            reduce="sum",
        )
        assert self._last_pad_amounts is not None
        (top, bottom), (left, right) = self._last_pad_amounts
        height = grad_padded.shape[1]
        width = grad_padded.shape[2]
        grad_input = grad_padded[
            :,
            top : height - bottom if bottom else height,
            left : width - right if right else width,
            :,
        ]
        return grad_input.astype(FLOAT_DTYPE)

    # ------------------------------------------------------------------ #
    def get_weights(self) -> np.ndarray:
        self._require_built()
        assert self.kernel is not None
        return self.kernel.copy()

    def set_weights(self, weights: np.ndarray) -> None:
        self._require_built()
        weights = np.asarray(weights, dtype=FLOAT_DTYPE)
        assert self.kernel is not None
        if weights.shape != self.kernel.shape:
            raise ShapeError(
                f"DepthwiseConv2D {self.name!r} expected weights of shape "
                f"{self.kernel.shape}, got {weights.shape}"
            )
        self.kernel = weights.copy()
        self.weights_version += 1
