"""Gradient-descent optimizers."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.types import FLOAT_DTYPE

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer(ABC):
    """Base optimizer: applies parameter updates keyed by a stable slot name."""

    def __init__(self, learning_rate: float = 0.01):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)

    @abstractmethod
    def update(self, slot: str, weights: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """Return the new value of ``weights`` given ``gradient``."""

    def reset(self) -> None:
        """Clear any per-slot optimizer state (momentum, moments, ...)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: dict[str, np.ndarray] = {}

    def update(self, slot: str, weights: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        gradient = gradient.astype(np.float64)
        if self.momentum > 0.0:
            velocity = self._velocity.get(slot)
            if velocity is None:
                velocity = np.zeros_like(gradient)
            velocity = self.momentum * velocity - self.learning_rate * gradient
            self._velocity[slot] = velocity
            return (weights.astype(np.float64) + velocity).astype(FLOAT_DTYPE)
        return (weights.astype(np.float64) - self.learning_rate * gradient).astype(FLOAT_DTYPE)

    def reset(self) -> None:
        self._velocity.clear()


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._first_moment: dict[str, np.ndarray] = {}
        self._second_moment: dict[str, np.ndarray] = {}
        self._steps: dict[str, int] = {}

    def update(self, slot: str, weights: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        gradient = gradient.astype(np.float64)
        m = self._first_moment.get(slot)
        v = self._second_moment.get(slot)
        if m is None or v is None:
            m = np.zeros_like(gradient)
            v = np.zeros_like(gradient)
        step = self._steps.get(slot, 0) + 1
        m = self.beta1 * m + (1.0 - self.beta1) * gradient
        v = self.beta2 * v + (1.0 - self.beta2) * gradient * gradient
        m_hat = m / (1.0 - self.beta1**step)
        v_hat = v / (1.0 - self.beta2**step)
        update = self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
        self._first_moment[slot] = m
        self._second_moment[slot] = v
        self._steps[slot] = step
        return (weights.astype(np.float64) - update).astype(FLOAT_DTYPE)

    def reset(self) -> None:
        self._first_moment.clear()
        self._second_moment.clear()
        self._steps.clear()
