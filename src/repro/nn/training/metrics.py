"""Evaluation metrics."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError

__all__ = ["accuracy_score", "top_k_accuracy", "confusion_matrix"]


def accuracy_score(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of samples whose argmax prediction matches the label.

    ``predictions`` may be class indices (1-D) or per-class scores (2-D).
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels).reshape(-1)
    if predictions.ndim == 2:
        predictions = np.argmax(predictions, axis=-1)
    if predictions.shape[0] != labels.shape[0]:
        raise ShapeError(
            f"predictions ({predictions.shape[0]}) and labels ({labels.shape[0]}) differ in length"
        )
    if labels.size == 0:
        return 0.0
    return float(np.mean(predictions == labels))


def top_k_accuracy(scores: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose label is within the top-``k`` scored classes."""
    scores = np.asarray(scores)
    labels = np.asarray(labels).reshape(-1)
    if scores.ndim != 2:
        raise ShapeError(f"scores must be 2-D (batch, classes), got shape {scores.shape}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(k, scores.shape[1])
    top_k = np.argsort(scores, axis=-1)[:, -k:]
    hits = np.any(top_k == labels[:, None], axis=-1)
    if labels.size == 0:
        return 0.0
    return float(np.mean(hits))


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return the ``(num_classes, num_classes)`` confusion matrix (rows = truth)."""
    predictions = np.asarray(predictions)
    if predictions.ndim == 2:
        predictions = np.argmax(predictions, axis=-1)
    labels = np.asarray(labels).reshape(-1)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for truth, predicted in zip(labels, predictions):
        matrix[int(truth), int(predicted)] += 1
    return matrix
