"""Mini-batch training loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.model import Sequential
from repro.nn.training.losses import Loss, SoftmaxCrossEntropy
from repro.nn.training.metrics import accuracy_score
from repro.nn.training.optimizers import Adam, Optimizer

__all__ = ["Trainer", "TrainingHistory"]


@dataclass
class TrainingHistory:
    """Per-epoch loss/accuracy curves produced by :class:`Trainer.fit`."""

    loss: list[float] = field(default_factory=list)
    accuracy: list[float] = field(default_factory=list)
    validation_accuracy: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.loss)

    def final_accuracy(self) -> float:
        """Accuracy of the last epoch (validation if available, else training)."""
        if self.validation_accuracy:
            return self.validation_accuracy[-1]
        if self.accuracy:
            return self.accuracy[-1]
        return 0.0


class Trainer:
    """Trains a :class:`Sequential` model with mini-batch gradient descent.

    Args:
        model: The model to train (must already be built).
        loss: Loss function; defaults to softmax cross entropy on logits.
        optimizer: Parameter update rule; defaults to Adam.
        shuffle_seed: Seed for the per-epoch shuffling, for reproducible runs.
    """

    def __init__(
        self,
        model: Sequential,
        loss: Optional[Loss] = None,
        optimizer: Optional[Optimizer] = None,
        shuffle_seed: Optional[int] = 0,
    ):
        self.model = model
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        self.optimizer = optimizer if optimizer is not None else Adam()
        self._rng = np.random.default_rng(shuffle_seed)

    # ------------------------------------------------------------------ #
    def train_batch(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Run one forward/backward/update step and return the batch loss."""
        predictions = self.model.predict(inputs, training=True)
        loss_value = self.loss.value(predictions, labels)
        gradient = self.loss.gradient(predictions, labels)
        for layer in reversed(self.model.layers):
            gradient = layer.backward(gradient)
            if layer.has_parameters and layer.grad_weights is not None:
                new_weights = self.optimizer.update(
                    layer.name, layer.get_weights(), layer.grad_weights
                )
                layer.set_weights(new_weights)
        return loss_value

    def fit(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        epochs: int = 1,
        batch_size: int = 32,
        validation_data: Optional[tuple[np.ndarray, np.ndarray]] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes over ``(inputs, labels)``."""
        inputs = np.asarray(inputs)
        labels = np.asarray(labels)
        if inputs.shape[0] != labels.shape[0]:
            raise ShapeError(
                f"inputs ({inputs.shape[0]}) and labels ({labels.shape[0]}) differ in length"
            )
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        history = TrainingHistory()
        sample_count = inputs.shape[0]
        for _ in range(epochs):
            order = self._rng.permutation(sample_count)
            epoch_losses: list[float] = []
            for start in range(0, sample_count, batch_size):
                batch_idx = order[start : start + batch_size]
                epoch_losses.append(self.train_batch(inputs[batch_idx], labels[batch_idx]))
            train_accuracy = accuracy_score(self.model.predict(inputs), labels)
            history.loss.append(float(np.mean(epoch_losses)))
            history.accuracy.append(train_accuracy)
            if validation_data is not None:
                val_inputs, val_labels = validation_data
                history.validation_accuracy.append(
                    accuracy_score(self.model.predict(val_inputs), val_labels)
                )
            if verbose:  # pragma: no cover - console convenience only
                message = (
                    f"epoch {history.epochs}: loss={history.loss[-1]:.4f} "
                    f"acc={train_accuracy:.4f}"
                )
                if history.validation_accuracy:
                    message += f" val_acc={history.validation_accuracy[-1]:.4f}"
                print(message)
        return history
