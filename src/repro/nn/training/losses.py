"""Loss functions with analytic gradients."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ShapeError
from repro.types import FLOAT_DTYPE

__all__ = ["Loss", "MeanSquaredError", "CategoricalCrossEntropy", "SoftmaxCrossEntropy"]

_EPSILON = 1e-7


def _one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    labels = np.asarray(labels).astype(np.int64).reshape(-1)
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= num_classes:
        raise ShapeError(
            f"labels must be in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=FLOAT_DTYPE)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


class Loss(ABC):
    """Base class: a loss returns a scalar value and a gradient w.r.t. predictions."""

    @abstractmethod
    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss over the batch."""

    @abstractmethod
    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the mean loss w.r.t. ``predictions``."""

    def _targets_like(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Coerce integer class labels into one-hot targets matching predictions."""
        targets = np.asarray(targets)
        if targets.ndim == predictions.ndim and targets.shape == predictions.shape:
            return targets.astype(FLOAT_DTYPE)
        if targets.ndim == 1 and predictions.ndim == 2:
            return _one_hot(targets, predictions.shape[1])
        raise ShapeError(
            f"cannot align targets of shape {targets.shape} with predictions "
            f"of shape {predictions.shape}"
        )


class MeanSquaredError(Loss):
    """Mean squared error over all elements."""

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = self._targets_like(predictions, targets)
        diff = predictions.astype(np.float64) - targets.astype(np.float64)
        return float(np.mean(diff * diff))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        targets = self._targets_like(predictions, targets)
        scale = 2.0 / predictions.size
        return (scale * (predictions - targets)).astype(FLOAT_DTYPE)


class CategoricalCrossEntropy(Loss):
    """Cross entropy on probability predictions (model ends in a Softmax layer)."""

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = self._targets_like(predictions, targets)
        clipped = np.clip(predictions.astype(np.float64), _EPSILON, 1.0)
        return float(-np.mean(np.sum(targets * np.log(clipped), axis=-1)))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        targets = self._targets_like(predictions, targets)
        clipped = np.clip(predictions.astype(np.float64), _EPSILON, 1.0)
        batch = predictions.shape[0]
        return (-(targets / clipped) / batch).astype(FLOAT_DTYPE)


class SoftmaxCrossEntropy(Loss):
    """Numerically stable softmax + cross entropy on raw logits.

    Use this when the model does *not* end in a Softmax layer; the combined
    gradient ``softmax(logits) - targets`` avoids the poorly conditioned
    separate softmax gradient.
    """

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits.astype(np.float64) - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = self._targets_like(predictions, targets)
        probabilities = np.clip(self._softmax(predictions), _EPSILON, 1.0)
        return float(-np.mean(np.sum(targets * np.log(probabilities), axis=-1)))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        targets = self._targets_like(predictions, targets)
        probabilities = self._softmax(predictions)
        batch = predictions.shape[0]
        return ((probabilities - targets) / batch).astype(FLOAT_DTYPE)
