"""Training machinery: losses, optimizers, metrics and the trainer loop."""

from repro.nn.training.losses import (
    CategoricalCrossEntropy,
    Loss,
    MeanSquaredError,
    SoftmaxCrossEntropy,
)
from repro.nn.training.metrics import accuracy_score, confusion_matrix, top_k_accuracy
from repro.nn.training.optimizers import SGD, Adam, Optimizer
from repro.nn.training.trainer import Trainer, TrainingHistory

__all__ = [
    "Loss",
    "MeanSquaredError",
    "CategoricalCrossEntropy",
    "SoftmaxCrossEntropy",
    "Optimizer",
    "SGD",
    "Adam",
    "Trainer",
    "TrainingHistory",
    "accuracy_score",
    "top_k_accuracy",
    "confusion_matrix",
]
