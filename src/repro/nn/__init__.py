"""A minimal-but-complete NumPy CNN framework.

This package is the substrate the MILR core operates on.  It provides the four
layer families the paper analyses (convolution, dense, pooling, activation),
the auxiliary layers found in real CNNs (bias, flatten, dropout, padding,
softmax), a :class:`~repro.nn.model.Sequential` container, and enough training
machinery (losses, optimizers, a trainer loop) to produce trained networks for
the error-injection experiments.

Data layout is channels-last: images are ``(batch, height, width, channels)``
and dense activations are ``(batch, features)``.  All parameters and
activations are float32, matching the 32-bit weight words the paper's fault
model flips.
"""

from repro.nn.layers import (
    Activation,
    AvgPool2D,
    BatchNorm,
    Bias,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    InputLayer,
    Layer,
    MaxPool2D,
    ReLU,
    Softmax,
    ZeroPadding2D,
)
from repro.nn.model import Sequential
from repro.nn.plan import ForwardPlan, PlanStats, compile_plan
from repro.nn.serialization import load_model_weights, save_model_weights

__all__ = [
    "Activation",
    "AvgPool2D",
    "BatchNorm",
    "Bias",
    "Conv2D",
    "Dense",
    "DepthwiseConv2D",
    "Dropout",
    "Flatten",
    "InputLayer",
    "Layer",
    "MaxPool2D",
    "ReLU",
    "Softmax",
    "ZeroPadding2D",
    "Sequential",
    "ForwardPlan",
    "PlanStats",
    "compile_plan",
    "save_model_weights",
    "load_model_weights",
]
